//! Minimal, API-compatible stand-in for the subset of `parking_lot` used by
//! this workspace, backed by `std::sync` primitives.
//!
//! The build image has no network access to crates.io, so the workspace
//! vendors the handful of external crates it depends on (wired up through
//! `[patch.crates-io]` in the workspace `Cargo.toml`). Only the surface the
//! workspace actually uses is provided. Semantic differences from the real
//! crate are limited to performance; like `parking_lot`, lock poisoning is
//! absorbed rather than propagated.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion primitive (wrapper over [`std::sync::Mutex`]).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Reader-writer lock (wrapper over [`std::sync::RwLock`]).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }
}

/// Result of a timed wait: whether the timeout elapsed.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(10));
        }
        drop(done);
        t.join().unwrap();
    }
}
