//! Minimal, API-compatible stand-in for the subset of `crossbeam` used by
//! this workspace (vendored because the build image has no crates.io access;
//! see `[patch.crates-io]` in the workspace `Cargo.toml`).
//!
//! Provides `channel` (MPMC unbounded), `deque` (Worker/Stealer/Injector),
//! and `utils::CachePadded`. The implementations favor simplicity over raw
//! speed (mutex-backed queues rather than lock-free ones) but preserve the
//! observable semantics the workspace relies on: disconnect-on-last-sender,
//! timeout-aware receive, LIFO worker pop with FIFO steal.

pub mod channel;
pub mod deque;
pub mod utils;
