//! Utility types: cache-line padding.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) a cache line to prevent false
/// sharing between adjacent slots.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 64);
        assert_eq!(p.into_inner(), 7);
    }
}
