//! Unbounded MPMC channel with disconnect detection and timed receive.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    cv: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Creates an unbounded channel, returning the (sender, receiver) pair.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        cv: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent value.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut g = self.shared.lock();
        if g.receivers == 0 {
            return Err(SendError(value));
        }
        g.queue.push_back(value);
        drop(g);
        self.shared.cv.notify_all();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut g = self.shared.lock();
        g.senders -= 1;
        let last = g.senders == 0;
        drop(g);
        if last {
            self.shared.cv.notify_all();
        }
    }
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut g = self.shared.lock();
        loop {
            if let Some(v) = g.queue.pop_front() {
                return Ok(v);
            }
            if g.senders == 0 {
                return Err(RecvError);
            }
            g = self
                .shared
                .cv
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut g = self.shared.lock();
        match g.queue.pop_front() {
            Some(v) => Ok(v),
            None if g.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut g = self.shared.lock();
        loop {
            if let Some(v) = g.queue.pop_front() {
                return Ok(v);
            }
            if g.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            g = guard;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.shared.lock().queue.is_empty()
    }

    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.lock().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_last_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn timeout_then_delivery() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        let t = thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        t.join().unwrap();
    }

    #[test]
    fn cross_thread_fanin() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for j in 0..100 {
                        tx.send(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
    }
}
