//! Work-stealing deque: owner pops LIFO (or FIFO), thieves steal FIFO from
//! the opposite end, plus a shared FIFO `Injector`.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    Empty,
    Success(T),
    Retry,
}

#[derive(Clone, Copy)]
enum Flavor {
    Lifo,
    Fifo,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Owner end of a work-stealing deque.
pub struct Worker<T> {
    shared: Arc<Shared<T>>,
    flavor: Flavor,
}

impl<T> Worker<T> {
    pub fn new_lifo() -> Self {
        Worker {
            shared: Arc::new(Shared { queue: Mutex::new(VecDeque::new()) }),
            flavor: Flavor::Lifo,
        }
    }

    pub fn new_fifo() -> Self {
        Worker {
            shared: Arc::new(Shared { queue: Mutex::new(VecDeque::new()) }),
            flavor: Flavor::Fifo,
        }
    }

    pub fn push(&self, value: T) {
        self.shared.lock().push_back(value);
    }

    pub fn pop(&self) -> Option<T> {
        let mut q = self.shared.lock();
        match self.flavor {
            Flavor::Lifo => q.pop_back(),
            Flavor::Fifo => q.pop_front(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer { shared: Arc::clone(&self.shared) }
    }
}

/// Thief end of a work-stealing deque; steals from the front.
pub struct Stealer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Stealer<T> {
    pub fn steal(&self) -> Steal<T> {
        match self.shared.lock().pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { shared: Arc::clone(&self.shared) }
    }
}

/// Shared FIFO injection queue.
pub struct Injector<T> {
    shared: Shared<T>,
}

impl<T> Injector<T> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Injector { shared: Shared { queue: Mutex::new(VecDeque::new()) } }
    }

    pub fn push(&self, value: T) {
        self.shared.lock().push_back(value);
    }

    pub fn steal(&self) -> Steal<T> {
        match self.shared.lock().pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_pop_fifo_steal() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn fifo_worker_pops_front() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push('a');
        inj.push('b');
        assert_eq!(inj.steal(), Steal::Success('a'));
        assert_eq!(inj.steal(), Steal::Success('b'));
        assert_eq!(inj.steal(), Steal::Empty);
    }

    #[test]
    fn steal_across_threads() {
        let w = Worker::new_lifo();
        for i in 0..1000 {
            w.push(i);
        }
        let stealers: Vec<_> = (0..4).map(|_| w.stealer()).collect();
        let handles: Vec<_> = stealers
            .into_iter()
            .map(|s| {
                std::thread::spawn(move || {
                    let mut n = 0u32;
                    while let Steal::Success(_) = s.steal() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        let stolen: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let mut local = 0;
        while w.pop().is_some() {
            local += 1;
        }
        assert_eq!(stolen + local, 1000);
    }
}
