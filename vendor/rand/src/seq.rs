//! Sequence-related extensions: in-place shuffling.

use crate::{RngCore, SampleUniform};

/// Extension methods on slices.
pub trait SliceRandom {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        // Fisher-Yates.
        for i in (1..self.len()).rev() {
            let j = usize::sample_in(rng, 0, i + 1);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left order unchanged");
    }
}
