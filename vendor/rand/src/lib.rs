//! Minimal, API-compatible stand-in for the subset of `rand` 0.9 used by
//! this workspace (vendored because the build image has no crates.io access;
//! see `[patch.crates-io]` in the workspace `Cargo.toml`).
//!
//! `StdRng` here is xoshiro256++ seeded via splitmix64 — deterministic for a
//! given seed, but a *different stream* than upstream `StdRng` (ChaCha12).
//! Tests in this workspace assert structural properties of generated graphs,
//! never exact sequences, so the stream change is observable only as
//! different (still deterministic) synthetic graphs.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Core RNG interface: a source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the type's "standard" distribution
/// (`f64` in `[0, 1)`, integers over their full range).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased-enough bounded sample via 128-bit widening multiply.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                lo + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

/// User-facing extension trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_in(self, range.start, range.end)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(3usize..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range reachable");
    }

    #[test]
    fn signed_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }
}
