//! Minimal, API-compatible stand-in for the subset of `criterion` used by
//! this workspace (vendored because the build image has no crates.io access;
//! see `[patch.crates-io]` in the workspace `Cargo.toml`).
//!
//! It keeps the `criterion_group!`/`criterion_main!`/`BenchmarkGroup` shape
//! and performs a real warmup + calibrated timed run per benchmark, printing
//! mean time per iteration and (when a [`Throughput`] is set) bytes- or
//! elements-per-second. There is no statistical analysis, HTML report, or
//! result persistence — numbers land on stdout.

use std::fmt;
use std::hint::black_box as bb;
use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    bb(x)
}

/// Throughput basis for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion into a benchmark id string (implemented for `&str`, `String`,
/// and [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, retaining the total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            bb(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        run_one("", &id.into_id(), None, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub calibrates iteration counts
    /// itself and does not use a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into_id(), self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into_id(), self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Runs one benchmark: single-iteration warmup to estimate cost, then a
/// calibrated timed run targeting ~80ms of wall clock.
fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, thrpt: Option<Throughput>, mut f: F) {
    let full = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };

    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let est = b.elapsed.max(Duration::from_nanos(1));

    const TARGET: Duration = Duration::from_millis(80);
    let iters = (TARGET.as_nanos() / est.as_nanos()).clamp(1, 50_000_000) as u64;
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);

    let per_iter_ns = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
    let mut line = format!("{full:<50} time: {}", fmt_time(per_iter_ns));
    if let Some(t) = thrpt {
        line.push_str(&match t {
            Throughput::Bytes(n) => {
                let gib = n as f64 / per_iter_ns * 1e9 / (1u64 << 30) as f64;
                format!("   thrpt: {gib:>10.3} GiB/s")
            }
            Throughput::Elements(n) => {
                let melem = n as f64 / per_iter_ns * 1e9 / 1e6;
                format!("   thrpt: {melem:>10.3} Melem/s")
            }
        });
    }
    println!("{line}");
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:>9.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:>9.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:>9.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:>9.3} s ", ns / 1_000_000_000.0)
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Bytes(64));
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 8).into_id(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").into_id(), "p");
    }
}
