//! Case runner: deterministic RNG, config, the pass/fail/reject loop, and
//! draw-stream shrinking.
//!
//! Shrinking works at the level of the raw `u64` draw stream (the way
//! Hypothesis does): every `next_u64` a case consumes is recorded, and on
//! failure the runner replays the closure against mutated copies of that
//! stream — truncating the tail (replays past the end of the tape draw 0)
//! and minimizing each element (try 0, else binary search between the
//! largest passing and smallest failing value). Because every derived
//! sampler (`u64_in`, `usize_below`, ...) is monotone in the raw word,
//! minimal words give minimal drawn values, so a property failing for
//! `v >= 100` shrinks to exactly `v == 100`. Panics inside the property
//! are caught and treated as failures, both live and during shrinking.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[derive(Clone, Debug)]
enum Mode {
    /// Generate fresh values from the xoshiro state.
    Random,
    /// Replay a prescribed draw tape; draws past the end return 0.
    Replay { tape: Vec<u64>, pos: usize },
}

/// Deterministic RNG driving value generation (xoshiro256++), recording
/// every draw so a failing case can be shrunk by stream mutation.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
    mode: Mode,
    record: Vec<u64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
            mode: Mode::Random,
            record: Vec::new(),
        }
    }

    /// An RNG that replays `tape` verbatim and draws 0 once it runs out —
    /// the shrinker's candidate-execution mode.
    pub fn replaying(tape: &[u64]) -> Self {
        TestRng {
            s: [0; 4],
            mode: Mode::Replay { tape: tape.to_vec(), pos: 0 },
            record: Vec::new(),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = match &mut self.mode {
            Mode::Random => {
                let s = &mut self.s;
                let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
                let t = s[1] << 17;
                s[2] ^= s[0];
                s[3] ^= s[1];
                s[1] ^= s[2];
                s[0] ^= s[3];
                s[2] ^= t;
                s[3] = s[3].rotate_left(45);
                result
            }
            Mode::Replay { tape, pos } => {
                let v = tape.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        };
        self.record.push(result);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample from empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform value in the half-open range `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a test case did not pass: a real failure or a filtered case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. All fields public so struct-update syntax
/// (`..ProptestConfig::default()`) works as with the real crate.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Cap on property executions spent minimizing a failing case.
    pub max_shrink_iters: u32,
    /// Cap on `prop_assume` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 1024, max_global_rejects: 65536 }
    }
}

/// Alias matching `proptest::test_runner::Config`.
pub use ProptestConfig as Config;

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Runs one candidate against the recorded tape. `Some(msg)` means the
/// case still fails (assertion failure or panic); `None` means it passes
/// or no longer reproduces (a reject counts as not reproducing).
fn replay<F>(f: &mut F, tape: &[u64]) -> Option<String>
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::replaying(tape);
    match catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
        Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => None,
        Ok(Err(TestCaseError::Fail(m))) => Some(m),
        Err(p) => Some(panic_message(p.as_ref())),
    }
}

/// Minimizes a failing draw tape, bounded by `budget` property executions.
/// Returns the minimal tape, its failure message, and executions spent.
fn shrink<F>(
    f: &mut F,
    mut best: Vec<u64>,
    mut best_msg: String,
    budget: u32,
) -> (Vec<u64>, String, u32)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut iters: u32 = 0;
    loop {
        let mut changed = false;
        // Tail truncation: draws past the tape replay as 0, so popping the
        // last element both shortens and zeroes the suffix.
        while !best.is_empty() && iters < budget {
            iters += 1;
            match replay(f, &best[..best.len() - 1]) {
                Some(m) => {
                    best.pop();
                    best_msg = m;
                    changed = true;
                }
                None => break,
            }
        }
        // Per-element minimization: try 0, else binary-search the smallest
        // still-failing word between the largest passing and the current
        // failing value. Derived samplers are monotone in the raw word, so
        // this lands on the boundary drawn value exactly.
        for i in 0..best.len() {
            let orig = best[i];
            if orig == 0 || iters >= budget {
                continue;
            }
            best[i] = 0;
            iters += 1;
            if let Some(m) = replay(f, &best) {
                best_msg = m;
                changed = true;
                continue;
            }
            let (mut lo, mut hi) = (0u64, orig); // lo passes, hi fails
            while hi - lo > 1 && iters < budget {
                let mid = lo + (hi - lo) / 2;
                best[i] = mid;
                iters += 1;
                match replay(f, &best) {
                    Some(m) => {
                        hi = mid;
                        best_msg = m;
                    }
                    None => lo = mid,
                }
            }
            best[i] = hi;
            if hi != orig {
                changed = true;
            }
        }
        if !changed || iters >= budget {
            return (best, best_msg, iters);
        }
    }
}

/// Drives `f` until `config.cases` cases pass. On the first failure
/// (assertion or panic) the recorded draw stream is shrunk to a minimal
/// counterexample and the runner panics with the minimized failure, the
/// seed, and a `PROPTEST_STUB_SEED` reproduction hint. The seed is derived
/// from the test name (offset with `PROPTEST_STUB_SEED`), so runs are
/// reproducible.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // FNV-1a over the test name for a stable per-test seed.
    let mut name_seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        name_seed ^= b as u64;
        name_seed = name_seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut seed = name_seed;
    if let Ok(s) = std::env::var("PROPTEST_STUB_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            seed = seed.wrapping_add(v);
        }
    }
    let mut rng = TestRng::from_seed(seed);

    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut case: u32 = 0;
    while passed < config.cases {
        case += 1;
        rng.record.clear();
        let outcome = match catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            Ok(r) => r,
            Err(p) => Err(TestCaseError::Fail(panic_message(p.as_ref()))),
        };
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                let tape = std::mem::take(&mut rng.record);
                let (min_tape, min_msg, iters) =
                    shrink(&mut f, tape, msg, config.max_shrink_iters);
                panic!(
                    "proptest '{name}' failed at case {case} (seed {seed}):\n{min_msg}\n\
                     minimal counterexample after {iters} shrink executions \
                     ({} raw draws: {min_tape:?})\n\
                     reproduce with PROPTEST_STUB_SEED={}",
                    min_tape.len(),
                    seed.wrapping_sub(name_seed),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(1);
        let mut b = TestRng::from_seed(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn replay_rng_returns_tape_then_zero() {
        let mut r = TestRng::replaying(&[5, 7]);
        assert_eq!(r.next_u64(), 5);
        assert_eq!(r.next_u64(), 7);
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 0);
    }

    #[test]
    fn runner_counts_passes() {
        let mut n = 0;
        run_proptest(&ProptestConfig { cases: 10, ..ProptestConfig::default() }, "t", |_rng| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn runner_panics_on_failure() {
        run_proptest(&ProptestConfig::default(), "t", |_rng| {
            Err(TestCaseError::Fail("boom".into()))
        });
    }

    #[test]
    fn rejects_are_skipped() {
        let mut calls = 0;
        run_proptest(&ProptestConfig { cases: 5, ..ProptestConfig::default() }, "t", |_rng| {
            calls += 1;
            if calls % 2 == 0 {
                Err(TestCaseError::Reject("skip".into()))
            } else {
                Ok(())
            }
        });
        assert!(calls >= 9);
    }

    fn failure_message(body: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let payload = catch_unwind(body).expect_err("property should fail");
        panic_message(payload.as_ref())
    }

    #[test]
    fn shrinks_to_minimal_counterexample() {
        // Fails for v >= 100 drawn from [0, 1000): must minimize to exactly
        // v == 100, and the report must carry the reproduction hint.
        let msg = failure_message(|| {
            run_proptest(&ProptestConfig::default(), "shrink_min", |rng| {
                let v = rng.u64_in(0, 1000);
                if v >= 100 {
                    Err(TestCaseError::fail(format!("v={v}")))
                } else {
                    Ok(())
                }
            });
        });
        assert!(msg.contains("v=100"), "not minimized: {msg}");
        assert!(!msg.contains("v=101"), "overshot: {msg}");
        assert!(msg.contains("PROPTEST_STUB_SEED="), "no repro hint: {msg}");
        assert!(msg.contains("seed "), "no seed: {msg}");
    }

    #[test]
    fn shrinks_panicking_properties_too() {
        let msg = failure_message(|| {
            run_proptest(&ProptestConfig::default(), "shrink_panic", |rng| {
                let v = rng.u64_in(0, 1000);
                assert!(v < 100, "exploded at v={v}");
                Ok(())
            });
        });
        assert!(msg.contains("exploded at v=100"), "not minimized: {msg}");
    }

    #[test]
    fn shrinking_truncates_irrelevant_tail_draws() {
        // Fails when any of 8 draws is odd; the minimal tape is all-zero
        // except a single trailing 1 (zeros past the tape are free).
        let msg = failure_message(|| {
            run_proptest(&ProptestConfig::default(), "shrink_trunc", |rng| {
                let bits: Vec<u64> = (0..8).map(|_| rng.next_u64() & 1).collect();
                let odd: u64 = bits.iter().sum();
                if odd >= 1 {
                    Err(TestCaseError::fail(format!("odd={odd} bits={bits:?}")))
                } else {
                    Ok(())
                }
            });
        });
        assert!(msg.contains("odd=1 "), "not minimized: {msg}");
    }

    #[test]
    fn shrinking_respects_iteration_budget() {
        let mut executions = 0u32;
        let cfg = ProptestConfig { max_shrink_iters: 3, ..ProptestConfig::default() };
        let msg = failure_message(AssertUnwindSafe(|| {
            run_proptest(&cfg, "shrink_budget", |rng| {
                executions += 1;
                let v = rng.u64_in(0, 1_000_000);
                if v >= 100 {
                    Err(TestCaseError::fail(format!("v={v}")))
                } else {
                    Ok(())
                }
            });
        }));
        // 1 live failing case + at most 3 shrink executions.
        assert!(executions <= 4, "budget ignored: {executions} executions");
        assert!(msg.contains("shrink executions"), "{msg}");
    }
}
