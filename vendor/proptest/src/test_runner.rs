//! Case runner: deterministic RNG, config, and the pass/fail/reject loop.

use std::fmt;

/// Deterministic RNG driving value generation (xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample from empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform value in the half-open range `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a test case did not pass: a real failure or a filtered case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. All fields public so struct-update syntax
/// (`..ProptestConfig::default()`) works as with the real crate.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Accepted for compatibility; this stub does not shrink.
    pub max_shrink_iters: u32,
    /// Cap on `prop_assume` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 1024, max_global_rejects: 65536 }
    }
}

/// Alias matching `proptest::test_runner::Config`.
pub use ProptestConfig as Config;

/// Drives `f` until `config.cases` cases pass, panicking on the first
/// failure. The seed is derived from the test name (override with
/// `PROPTEST_STUB_SEED`), so runs are reproducible.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // FNV-1a over the test name for a stable per-test seed.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    if let Ok(s) = std::env::var("PROPTEST_STUB_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            seed = seed.wrapping_add(v);
        }
    }
    let mut rng = TestRng::from_seed(seed);

    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut case: u32 = 0;
    while passed < config.cases {
        case += 1;
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {case} (seed {seed}):\n{msg}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(1);
        let mut b = TestRng::from_seed(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn runner_counts_passes() {
        let mut n = 0;
        run_proptest(&ProptestConfig { cases: 10, ..ProptestConfig::default() }, "t", |_rng| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn runner_panics_on_failure() {
        run_proptest(&ProptestConfig::default(), "t", |_rng| {
            Err(TestCaseError::Fail("boom".into()))
        });
    }

    #[test]
    fn rejects_are_skipped() {
        let mut calls = 0;
        run_proptest(&ProptestConfig { cases: 5, ..ProptestConfig::default() }, "t", |_rng| {
            calls += 1;
            if calls % 2 == 0 {
                Err(TestCaseError::Reject("skip".into()))
            } else {
                Ok(())
            }
        });
        assert!(calls >= 9);
    }
}
