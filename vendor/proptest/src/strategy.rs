//! The `Strategy` trait and combinators: ranges, tuples, `Just`, `Union`,
//! `prop_map`/`prop_flat_map`, and boxing.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces one concrete value per call.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

#[doc(hidden)]
pub trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy producing a clone of a fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_below(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Integer types usable as range-strategy endpoints.
pub trait RangeValue: Copy {
    fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_value_uint {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                lo + rng.u64_in(0, (hi - lo) as u64) as $t
            }
        }
    )*};
}

impl_range_value_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                lo.wrapping_add(rng.u64_in(0, hi.wrapping_sub(lo) as u64) as $t)
            }
        }
    )*};
}

impl_range_value_int!(i8, i16, i32, i64, isize);

impl<T: RangeValue> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn range_and_tuple() {
        let mut r = rng();
        for _ in 0..200 {
            let (a, b) = (3u32..9, 0usize..2).generate(&mut r);
            assert!((3..9).contains(&a));
            assert!(b < 2);
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let mut r = rng();
        let s = (1usize..5).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..100 {
            let (n, v) = s.generate(&mut r);
            assert!(v < n);
        }
    }

    #[test]
    fn union_hits_all_arms() {
        let mut r = rng();
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn map_transforms() {
        let mut r = rng();
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }
}
