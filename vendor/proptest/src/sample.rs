//! Sampling helpers: `Index` for picking positions in runtime-sized
//! collections.

use crate::arbitrary::ArbValue;
use crate::test_runner::TestRng;

/// A size-independent index: scale against any collection length at use
/// time via [`Index::index`].
#[derive(Clone, Copy, Debug)]
pub struct Index {
    unit: f64,
}

impl Index {
    /// Projects this index onto `0..size`; `size` must be nonzero.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "cannot index an empty collection");
        ((self.unit * size as f64) as usize).min(size - 1)
    }
}

impl ArbValue for Index {
    fn arb(rng: &mut TestRng) -> Self {
        Index { unit: rng.unit_f64() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use crate::strategy::Strategy;

    #[test]
    fn index_in_bounds_for_any_size() {
        let mut rng = TestRng::from_seed(8);
        let s = any::<Index>();
        for _ in 0..500 {
            let ix = s.generate(&mut rng);
            for size in [1usize, 2, 7, 100] {
                assert!(ix.index(size) < size);
            }
        }
    }
}
