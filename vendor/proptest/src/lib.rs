//! Minimal, API-compatible stand-in for the subset of `proptest` used by
//! this workspace (vendored because the build image has no crates.io access;
//! see `[patch.crates-io]` in the workspace `Cargo.toml`).
//!
//! Supports the `proptest!` macro (with `#![proptest_config]`), the
//! `prop_assert*`/`prop_assume`/`prop_oneof` macros, `Strategy` with
//! `prop_map`/`prop_flat_map`/`boxed`, range/tuple/`Just`/`any` strategies,
//! `collection::vec`, and `sample::Index`. Each test runs `cases` random
//! cases from a per-test deterministic seed. Failures (assertions or
//! panics) are shrunk at the raw draw-stream level — tail truncation plus
//! per-draw binary-search minimization, bounded by `max_shrink_iters` — and
//! the report carries the minimized failure, the seed, and a
//! `PROPTEST_STUB_SEED` reproduction hint.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
    pub use crate as prop;
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __proptest_config = $cfg;
            $crate::test_runner::run_proptest(
                &__proptest_config,
                stringify!($name),
                |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    let __proptest_body = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __proptest_body()
                },
            );
        }
    )*};
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __pa_left = $left;
        let __pa_right = $right;
        $crate::prop_assert!(
            __pa_left == __pa_right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __pa_left,
            __pa_right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __pa_left = $left;
        let __pa_right = $right;
        $crate::prop_assert!(
            __pa_left == __pa_right,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            __pa_left,
            __pa_right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __pa_left = $left;
        let __pa_right = $right;
        $crate::prop_assert!(
            __pa_left != __pa_right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __pa_left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __pa_left = $left;
        let __pa_right = $right;
        $crate::prop_assert!(
            __pa_left != __pa_right,
            "{}\n  both: `{:?}`",
            format!($($fmt)+),
            __pa_left
        );
    }};
}

/// Rejects (skips) the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
