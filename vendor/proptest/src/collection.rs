//! Collection strategies: `vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for collection strategies (half-open).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.lo + rng.usize_below(self.size.hi - self.size.lo);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Creates a strategy producing vectors of `element` values.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::from_seed(5);
        let s = vec(0u32..100, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn fixed_size() {
        let mut rng = TestRng::from_seed(6);
        let s = vec(0u8..2, 4usize);
        assert_eq!(s.generate(&mut rng).len(), 4);
    }

    #[test]
    fn zero_length_possible() {
        let mut rng = TestRng::from_seed(7);
        let s = vec(0u32..10, 0..2);
        let mut saw_empty = false;
        for _ in 0..100 {
            if s.generate(&mut rng).is_empty() {
                saw_empty = true;
            }
        }
        assert!(saw_empty);
    }
}
