//! `any::<T>()`: full-range generation for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "arbitrary" distribution (full value range).
pub trait ArbValue {
    fn arb(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arb_uint {
    ($($t:ty),*) => {$(
        impl ArbValue for $t {
            fn arb(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbValue for bool {
    fn arb(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbValue for f64 {
    fn arb(rng: &mut TestRng) -> Self {
        // Arbitrary bit pattern: exercises subnormals, infinities, and NaNs
        // like the real crate's special-value generator.
        f64::from_bits(rng.next_u64())
    }
}

impl ArbValue for f32 {
    fn arb(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl ArbValue for char {
    fn arb(rng: &mut TestRng) -> Self {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: ArbValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arb(rng)
    }
}

/// Creates a strategy generating arbitrary values of `T`.
pub fn any<T: ArbValue>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::from_seed(3);
        let s = any::<u32>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        let c = s.generate(&mut rng);
        assert!(a != b || b != c);
    }

    #[test]
    fn any_f64_hits_special_values_eventually() {
        let mut rng = TestRng::from_seed(4);
        let s = any::<f64>();
        let mut saw_nonfinite = false;
        for _ in 0..10_000 {
            if !s.generate(&mut rng).is_finite() {
                saw_nonfinite = true;
            }
        }
        assert!(saw_nonfinite);
    }
}
