//! Minimal, API-compatible stand-in for the subset of the `bytes` crate used
//! by this workspace (vendored because the build image has no crates.io
//! access; see `[patch.crates-io]` in the workspace `Cargo.toml`).
//!
//! `Bytes` is a cheaply-cloneable shared byte buffer (`Arc<[u8]>` plus a
//! window); `BytesMut` is a growable write buffer that freezes into `Bytes`.
//! Both are contiguous, so the `Buf` default methods read straight off
//! `chunk()`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read-side cursor over a contiguous byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    /// The unread bytes. Contiguous in this implementation.
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Buf underrun");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side sink for little-endian scalar and raw byte writes.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Cheaply cloneable, immutable shared byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]), start: 0, end: 0 }
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a view of `self` for the given subrange (of the current view).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && self.start + hi <= self.end, "slice out of range");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::from(v), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "Bytes::advance past end");
        self.start += cnt;
    }
}

/// Growable write buffer; `freeze()` converts the filled bytes to [`Bytes`].
#[derive(Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.vec.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Resizes the filled region to `new_len`, filling any newly exposed
    /// bytes with `value` (same semantics as the real crate).
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.vec.resize(new_len, value);
    }

    /// Splits off all filled bytes, leaving `self` empty (capacity is not
    /// preserved, unlike the real crate — callers here don't rely on that).
    pub fn split(&mut self) -> BytesMut {
        BytesMut { vec: std::mem::take(&mut self.vec) }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BytesMut").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_f64_le(1.5);
        let mut b = w.freeze();
        assert_eq!(b.len(), 1 + 4 + 8 + 8);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_f64_le(), 1.5);
        assert!(!b.has_remaining());
    }

    #[test]
    fn split_drains_writer() {
        let mut w = BytesMut::new();
        w.put_slice(b"abc");
        let first = w.split().freeze();
        assert_eq!(&*first, b"abc");
        assert!(w.is_empty());
        w.put_slice(b"d");
        assert_eq!(&*w.split().freeze(), b"d");
    }

    #[test]
    fn resize_exposes_writable_tail() {
        let mut w = BytesMut::with_capacity(8);
        w.put_slice(b"ab");
        w.resize(6, 0);
        w[2..6].copy_from_slice(b"cdef");
        assert_eq!(&*w, b"abcdef");
        w.resize(3, 0);
        assert_eq!(&*w.split().freeze(), b"abc");
    }

    #[test]
    fn bytes_clone_shares_and_slices() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        let s = b.slice(1..3);
        assert_eq!(&*s, &[2, 3]);
        let mut cur = s;
        cur.advance(1);
        assert_eq!(cur.chunk(), &[3]);
    }
}
