//! Quickstart: partition a graph with a paper policy in ~20 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use cusp::{metrics, partition_with_policy, CuspConfig, GraphSource, PolicyKind};
use cusp_graph::gen::{powerlaw, PowerLawConfig};
use cusp_net::Cluster;

fn main() {
    // A 50k-vertex web-crawl-like graph (heavy in-degree tail).
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(50_000, 20.0, 42)));
    println!(
        "input: {} vertices, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Partition it with Cartesian Vertex-Cut on 4 simulated hosts.
    let hosts = 4;
    let g = Arc::clone(&graph);
    let out = Cluster::run(hosts, move |comm| {
        partition_with_policy(
            comm,
            GraphSource::Memory(g.clone()),
            PolicyKind::Cvc,
            &CuspConfig::default(),
        )
    });

    let mut parts = Vec::new();
    for r in out.results {
        println!(
            "host {}: {:>6} masters, {:>6} mirrors, {:>8} edges  ({:.0?} total)",
            r.dist_graph.part_id,
            r.dist_graph.num_masters,
            r.dist_graph.num_mirrors(),
            r.dist_graph.num_local_edges(),
            r.times.total(),
        );
        parts.push(r.dist_graph);
    }

    // Check it is a correct partitioning and report quality.
    metrics::validate_partitioning(&graph, &parts).expect("partitioning invalid");
    let q = metrics::quality(&parts);
    println!(
        "replication factor {:.3}, edge balance {:.3}, node balance {:.3}",
        q.replication_factor, q.edge_balance, q.node_balance
    );
    println!(
        "bytes moved while partitioning: {:.2} MB in {} messages",
        out.stats.grand_total_bytes() as f64 / 1e6,
        out.stats.grand_total_messages()
    );
}
