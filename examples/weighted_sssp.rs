//! Weighted graphs end to end: store per-edge data in a version-2 `.bgr`
//! file, partition it (the data follows each edge through construction),
//! and run single-source shortest paths over the *stored* weights — plus
//! the k-core extension app on the symmetrized graph.
//!
//! ```text
//! cargo run --release --example weighted_sssp
//! ```

use std::sync::Arc;

use cusp::{metrics, partition_with_policy, CuspConfig, GraphSource, PolicyKind};
use cusp_dgalois::{kcore, kcore_ref, reference, sssp_weighted, SyncPlan};
use cusp_galois::ThreadPool;
use cusp_graph::gen::{powerlaw, PowerLawConfig};
use cusp_net::Cluster;

fn main() {
    // Build a weighted "road-ish" network: web-crawl topology with
    // deterministic per-edge costs in 1..=100.
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(25_000, 10.0, 77)));
    let weights: Arc<Vec<u32>> = Arc::new(
        graph
            .iter_edges()
            .map(|(u, v)| cusp_dgalois::edge_weight(u, v) as u32)
            .collect(),
    );
    println!(
        "weighted input: {} vertices, {} edges, weights 1..=100",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Persist as a version-2 (weighted) .bgr and reload, proving the
    // format round-trips.
    let path = std::env::temp_dir().join("cusp-weighted-example.bgr");
    cusp_graph::write_bgr_weighted(&path, &graph, &weights).unwrap();
    let (reloaded, wback) = cusp_graph::read_bgr_weighted(&path).unwrap();
    assert_eq!(reloaded, *graph);
    assert_eq!(wback, **weights);
    println!("round-tripped {} ({} MB)", path.display(), std::fs::metadata(&path).unwrap().len() / 1_000_000);

    // Partition from disk with HVC; weights ride along with their edges.
    let source = graph.max_out_degree_node().unwrap();
    let p = path.clone();
    let out = Cluster::run(8, move |comm| {
        let part = partition_with_policy(
            comm,
            GraphSource::File(p.clone()),
            PolicyKind::Hvc,
            &CuspConfig::default(),
        );
        let pool = ThreadPool::new(2);
        let plan = SyncPlan::build(comm, &part.dist_graph);
        let run = sssp_weighted(comm, &pool, &part.dist_graph, &plan, source);
        (part.dist_graph, run)
    });

    let mut parts = Vec::new();
    let mut dist = vec![u64::MAX; graph.num_nodes()];
    let mut rounds = 0;
    for (dg, run) in out.results {
        for (gid, v) in &run.master_values {
            dist[*gid as usize] = *v;
        }
        rounds = run.rounds;
        parts.push(dg);
    }
    metrics::validate_partitioning_weighted(&graph, &weights, &parts)
        .expect("weights must follow their edges");

    // Check against the sequential Dijkstra oracle.
    let expect = reference::sssp_ref(&graph, source);
    assert_eq!(dist, expect, "distributed weighted sssp diverged");
    let reached = dist.iter().filter(|&&d| d != u64::MAX).count();
    println!(
        "sssp from hub {source}: {reached} vertices reached in {rounds} rounds — matches Dijkstra"
    );

    // Bonus: k-core peeling on the symmetrized graph.
    let sym = Arc::new(graph.symmetrize());
    let k_threshold = 8u64;
    let expect_core = kcore_ref(&sym, k_threshold);
    let s = Arc::clone(&sym);
    let core_out = Cluster::run(8, move |comm| {
        let part = partition_with_policy(
            comm,
            GraphSource::Memory(s.clone()),
            PolicyKind::Cvc,
            &CuspConfig::default(),
        );
        let pool = ThreadPool::new(2);
        let plan = SyncPlan::build(comm, &part.dist_graph);
        kcore(comm, &pool, &part.dist_graph, &plan, k_threshold).master_values
    });
    let mut in_core = vec![0u64; sym.num_nodes()];
    for host in core_out.results {
        for (gid, v) in host {
            in_core[gid as usize] = v;
        }
    }
    assert_eq!(in_core, expect_core);
    let survivors = in_core.iter().filter(|&&a| a == 1).count();
    println!(
        "{k_threshold}-core: {survivors} of {} vertices survive — matches sequential peeling",
        sym.num_nodes()
    );

    std::fs::remove_file(&path).ok();
}
