//! Writing a *new* partitioning policy — the paper's headline feature
//! (§III: "the user can implement any streaming edge-cut or vertex-cut
//! policy using only a few lines of code").
//!
//! This example implements two rules that are **not** in the built-in
//! catalog and composes them:
//!
//! * `Ldg` — Linear Deterministic Greedy [Stanton & Kliot, KDD'12], a
//!   streaming master rule the paper cites in Table I (the library also
//!   ships one as `cusp::policies::Ldg`; writing it here from scratch is
//!   the point of the example):
//!   `score(p) = |neighbors already in p| · (1 − size(p)/capacity)`;
//! * `DestinationEdge` — an *incoming* edge-cut: every edge follows its
//!   destination's master (the CSC-flavored mirror of `Source`).
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use std::sync::Arc;

use cusp::policy::{EdgeRule, MasterRule, MasterView};
use cusp::props::LocalProps;
use cusp::state::LoadState;
use cusp::{metrics, CuspConfig, GraphSource, PartId, PartitionClass};
use cusp_graph::gen::{powerlaw, PowerLawConfig};
use cusp_graph::Node;
use cusp_net::Cluster;

/// Linear Deterministic Greedy master placement.
#[derive(Clone)]
struct Ldg {
    capacity: f64,
}

impl MasterRule for Ldg {
    // LDG tracks how many nodes each partition holds — CuSP synchronizes
    // this LoadState across hosts automatically.
    type State = LoadState;

    // LDG scores partitions by already-placed neighbors.
    fn uses_neighbor_masters(&self) -> bool {
        true
    }

    fn get_master(
        &self,
        prop: &LocalProps,
        node: Node,
        state: &LoadState,
        masters: &MasterView,
    ) -> PartId {
        let k = prop.num_partitions();
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for p in 0..k {
            let mut neighbors = 0u64;
            for &n in prop.out_neighbors(node) {
                if masters.get(n) == Some(p) {
                    neighbors += 1;
                }
            }
            let fill = state.nodes(p) as f64 / self.capacity;
            let score = neighbors as f64 * (1.0 - fill);
            if score > best_score {
                best_score = score;
                best = p;
            }
        }
        state.add_assignment(best, 0);
        best
    }
}

/// Incoming edge-cut: the edge lives with its destination's master.
#[derive(Clone, Copy)]
struct DestinationEdge;

impl EdgeRule for DestinationEdge {
    type State = ();

    fn get_edge_owner(
        &self,
        _prop: &LocalProps,
        _src: Node,
        _dst: Node,
        _src_master: PartId,
        dst_master: PartId,
        _state: &(),
    ) -> PartId {
        dst_master
    }
}

fn main() {
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(20_000, 15.0, 7)));
    let hosts = 4;
    println!(
        "partitioning {} vertices / {} edges with LDG + DestinationEdge on {hosts} hosts",
        graph.num_nodes(),
        graph.num_edges()
    );

    let g = Arc::clone(&graph);
    let out = Cluster::run(hosts, move |comm| {
        // The policy is just the pair of rules; `cusp::partition` does the
        // five-phase pipeline, state sync, and construction.
        cusp::partition(
            comm,
            GraphSource::Memory(g.clone()),
            &CuspConfig {
                sync_rounds: 32, // LDG benefits from fresher neighbor info
                ..CuspConfig::default()
            },
            // Destination-cut: all *in*-edges of a vertex are co-located,
            // which is an edge-cut on the transposed graph — i.e. a
            // general vertex-cut from the out-edge perspective.
            PartitionClass::GeneralVertexCut,
            |setup| {
                (
                    Ldg {
                        capacity: setup.num_nodes as f64 / setup.parts as f64,
                    },
                    DestinationEdge,
                )
            },
        )
    });

    let parts: Vec<_> = out.results.into_iter().map(|r| r.dist_graph).collect();
    metrics::validate_partitioning(&graph, &parts).expect("custom policy must still be valid");
    let q = metrics::quality(&parts);
    for p in &parts {
        println!(
            "host {}: {} masters, {} mirrors, {} edges",
            p.part_id,
            p.num_masters,
            p.num_mirrors(),
            p.num_local_edges()
        );
    }
    println!(
        "replication factor {:.3}, edge balance {:.3}, node balance {:.3}",
        q.replication_factor, q.edge_balance, q.node_balance
    );
    // The destination-cut invariant: every in-edge of a vertex is on its
    // master's host, i.e. a vertex's local in-degree elsewhere is 0.
    for p in &parts {
        let t = p.graph.transpose();
        for l in p.num_masters as u32..p.num_local() as u32 {
            assert_eq!(t.out_degree(l), 0, "mirror with in-edges under destination cut");
        }
    }
    println!("destination-cut invariant verified: mirrors hold no in-edges");
}
