//! Distributed analytics end to end: partition a graph, run the paper's
//! four applications over the partitions, and verify every result against
//! the single-host reference implementations.
//!
//! ```text
//! cargo run --release --example analytics_suite
//! ```

use std::sync::Arc;

use cusp::{partition_with_policy, CuspConfig, GraphSource, PolicyKind};
use cusp_dgalois::{bfs, cc, pagerank, reference, sssp, PageRankConfig, SyncPlan};
use cusp_galois::ThreadPool;
use cusp_graph::gen::{powerlaw, PowerLawConfig};
use cusp_graph::Csr;
use cusp_net::Cluster;

fn run_suite(graph: &Arc<Csr>, sym: &Arc<Csr>, kind: PolicyKind, hosts: usize) {
    let source = graph.max_out_degree_node().expect("non-empty graph");

    // bfs / sssp / pagerank over the directed graph.
    let g = Arc::clone(graph);
    let out = Cluster::run(hosts, move |comm| {
        let part = partition_with_policy(
            comm,
            GraphSource::Memory(g.clone()),
            kind,
            &CuspConfig::default(),
        );
        let dg = part.dist_graph;
        let pool = ThreadPool::new(2);
        let plan = SyncPlan::build(comm, &dg);
        let b = bfs(comm, &pool, &dg, &plan, source);
        let s = sssp(comm, &pool, &dg, &plan, source);
        let p = pagerank(comm, &pool, &dg, &plan, PageRankConfig::default());
        (b, s, p)
    });

    // cc over the symmetrized graph (paper §V-A).
    let gs = Arc::clone(sym);
    let cc_out = Cluster::run(hosts, move |comm| {
        let part = partition_with_policy(
            comm,
            GraphSource::Memory(gs.clone()),
            kind,
            &CuspConfig::default(),
        );
        let pool = ThreadPool::new(2);
        let plan = SyncPlan::build(comm, &part.dist_graph);
        cc(comm, &pool, &part.dist_graph, &plan)
    });

    // Assemble and verify against the oracles.
    let n = graph.num_nodes();
    let assemble = |collect: &dyn Fn(usize) -> Vec<(u32, u64)>| -> Vec<u64> {
        let mut v = vec![u64::MAX; n];
        for h in 0..hosts {
            for (gid, val) in collect(h) {
                v[gid as usize] = val;
            }
        }
        v
    };
    let bfs_vals = assemble(&|h| out.results[h].0.master_values.clone());
    let sssp_vals = assemble(&|h| out.results[h].1.master_values.clone());
    let cc_vals = assemble(&|h| cc_out.results[h].master_values.clone());

    assert_eq!(bfs_vals, reference::bfs_ref(graph, source), "{kind}: bfs diverged");
    assert_eq!(sssp_vals, reference::sssp_ref(graph, source), "{kind}: sssp diverged");
    assert_eq!(cc_vals, reference::cc_ref(sym), "{kind}: cc diverged");

    let pr_ref = reference::pagerank_ref(graph, 0.85, 1e-6, 100);
    let mut max_err = 0.0f64;
    for h in 0..hosts {
        for &(gid, rank) in &out.results[h].2.master_ranks {
            max_err = max_err.max((rank - pr_ref[gid as usize]).abs());
        }
    }
    assert!(max_err < 1e-6, "{kind}: pagerank err {max_err}");

    let reached = bfs_vals.iter().filter(|&&d| d != u64::MAX).count();
    let components = {
        let mut roots: Vec<u64> = cc_vals.clone();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    };
    println!(
        "{:<5} bfs {:>3} rounds ({} reached) | sssp {:>3} rounds | cc {:>3} rounds ({} comps) | pr {:>3} iters (max err {:.1e})",
        kind.name(),
        out.results[0].0.rounds,
        reached,
        out.results[0].1.rounds,
        cc_out.results[0].rounds,
        components,
        out.results[0].2.rounds,
        max_err,
    );
}

fn main() {
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(30_000, 12.0, 99)));
    let sym = Arc::new(graph.symmetrize());
    println!(
        "analytics over {} vertices / {} edges on 8 hosts — all results checked against sequential oracles\n",
        graph.num_nodes(),
        graph.num_edges()
    );
    for kind in [
        PolicyKind::Eec,
        PolicyKind::Hvc,
        PolicyKind::Cvc,
        PolicyKind::Svc,
    ] {
        run_suite(&graph, &sym, kind, 8);
    }
    println!("\nall distributed results match the references ✓");
}
