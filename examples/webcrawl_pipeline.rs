//! The full offline pipeline on a disk-resident web crawl: generate →
//! convert → store as `.bgr` → partition from disk with several policies →
//! compare partitioning time, communication, and quality.
//!
//! ```text
//! cargo run --release --example webcrawl_pipeline
//! ```

use std::sync::Arc;
use std::time::Duration;

use cusp::{metrics, partition_with_policy, CuspConfig, GraphSource, PolicyKind};
use cusp_graph::gen::{powerlaw, PowerLawConfig};
use cusp_graph::{read_bgr, write_bgr, GraphProps};
use cusp_net::Cluster;

fn main() {
    // 1. "Crawl": generate a web-graph and store it in the on-disk format.
    let crawl = powerlaw(PowerLawConfig::webcrawl(60_000, 30.0, 2024));
    let dir = std::env::temp_dir().join("cusp-webcrawl-example");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("crawl.bgr");
    write_bgr(&path, &crawl).expect("write failed");
    let props = GraphProps::compute(&crawl);
    println!("{}", props.row("crawl"));

    // 2. Round-trip sanity: the file reads back identically.
    let reloaded = read_bgr(&path).expect("read failed");
    assert_eq!(reloaded, crawl);
    let crawl = Arc::new(crawl);

    // 3. Partition from disk with four policies; each host range-reads
    //    only its slice of the file (paper §IV-B1).
    let hosts = 8;
    println!("\npartitioning from {} on {hosts} hosts:", path.display());
    println!(
        "{:<6} {:>9} {:>12} {:>10} {:>10} {:>10}",
        "policy", "time", "comm (MB)", "repl", "edge-bal", "mirrors"
    );
    for kind in [
        PolicyKind::Eec,
        PolicyKind::Hvc,
        PolicyKind::Cvc,
        PolicyKind::Svc,
    ] {
        let p = path.clone();
        let out = Cluster::run(hosts, move |comm| {
            partition_with_policy(
                comm,
                GraphSource::File(p.clone()),
                kind,
                &CuspConfig::default(),
            )
        });
        let mut total = Duration::ZERO;
        let mut parts = Vec::new();
        for r in out.results {
            total = total.max(r.times.total());
            parts.push(r.dist_graph);
        }
        metrics::validate_partitioning(&crawl, &parts).expect("invalid partitioning");
        let q = metrics::quality(&parts);
        println!(
            "{:<6} {:>8.3}s {:>12.2} {:>10.3} {:>10.3} {:>10}",
            kind.name(),
            total.as_secs_f64(),
            out.stats.grand_total_bytes() as f64 / 1e6,
            q.replication_factor,
            q.edge_balance,
            q.total_mirrors
        );
    }

    std::fs::remove_file(&path).ok();
    println!("\ndone; partitions validated against the original graph");
}
