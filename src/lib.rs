//! Umbrella crate re-exporting the CuSP reproduction workspace.
pub use cusp;
pub use cusp_dgalois as dgalois;
pub use cusp_galois as galois;
pub use cusp_graph as graph;
pub use cusp_net as net;
pub use cusp_xtrapulp as xtrapulp;
