//! `cusp-part` — the stand-alone partitioning tool.
//!
//! ```text
//! cusp-part gen       --kind kron|webcrawl|uniform --nodes N [--degree D] [--seed S] --out G.bgr
//! cusp-part convert   --edgelist IN.txt --out G.bgr
//! cusp-part convert   --metis IN.graph --out G.bgr
//! cusp-part props     G.bgr
//! cusp-part partition --graph G.bgr --policy EEC|HVC|CVC|FEC|GVC|SVC|CEC|FNC|HDRF|XTRAPULP
//!                     --hosts K [--out-dir DIR] [--sync-rounds N] [--buffer BYTES]
//!                     [--threads T] [--csc] [--chunk-edges E] [--trace OUT.json]
//!                     [--crash-seed S] [--heartbeat-ms MS] [--checkpoint-dir DIR]
//! cusp-part launch    --hosts K --graph G.bgr --policy NAME [--out-dir DIR]
//!                     [--sync-rounds N] [--buffer BYTES] [--chunk-edges E] [--csc]
//! cusp-part worker    --host-id H --hosts K --graph G.bgr --policy NAME
//!                     --nonce N --out-dir DIR [--det] [tuning flags as above]
//! cusp-part inspect   PART.part [PART.part ...]
//! cusp-part validate  --graph G.bgr --parts DIR
//! cusp-part trace-check OUT.json
//! cusp-part apply     --graph G.bgr (--batch B.txt | --events N [--seed S])
//!                     [--out G2.bgr] [--wal W.wal]
//! cusp-part wal-replay --graph G.bgr --wal W.wal [--out G2.bgr]
//!                     [--policy NAME --hosts K]
//! cusp-part client    upload|partition|quality|apply|stats|list|server-stats ...
//! ```
//!
//! `partition` runs the full five-phase pipeline on a simulated K-host
//! cluster, prints per-phase timings, communication volume, and quality
//! metrics, and (with `--out-dir`) writes one `.part` file per host. With
//! `--trace`, the run records spans, counters, and per-message events on
//! every host, writes a Chrome trace-event JSON (open it at
//! <https://ui.perfetto.dev>), and prints the per-phase critical-path
//! summary (measured compute vs. α–β modeled network time per host).
//! `trace-check` validates such a JSON file (used by the CI smoke job).
//!
//! With `--crash-seed`, a seeded [`cusp_net::CrashPlan`] kills simulated
//! hosts mid-phase and the supervisor restarts them (heartbeat detection
//! tunable via `--heartbeat-ms`); `--checkpoint-dir` lets restarted hosts
//! resume from the last completed phase instead of re-running everything.
//! Crash runs force the determinism contract (`deterministic_sync`, one
//! worker thread) so the recovered partition is bit-identical to a
//! crash-free run. A host that exhausts its restart budget terminates the
//! run with a one-line diagnostic and a non-zero exit code.
//!
//! `apply` mutates a graph with a batch of edge events — from a text
//! file (`add src dst [w]` / `remove src dst` / `setw src dst w`, one
//! per line, `#` comments) or a seeded generator — prints the dirty
//! vertex count and the old → new graph fingerprint, and optionally
//! journals the batch to a CRC-framed WAL (`--wal`) and writes the
//! mutated graph (`--out`). `wal-replay` re-applies every batch in a
//! WAL in append order; with `--policy`/`--hosts` it additionally runs
//! the *delta* repartition path against the previous generation's
//! partition after each batch and checks it fingerprint-matches a full
//! from-scratch run (the incremental-equivalence oracle).
//!
//! `launch` runs the same five-phase pipeline across **real OS
//! processes**: it forks `--hosts` copies of this binary as `worker`
//! subprocesses, hands each the full list of peer listen addresses, and
//! the workers mesh up over loopback TCP (`cusp_net::TcpTransport`) and
//! partition cooperatively, each writing its own `part-XXXX.part`. The
//! launcher then (i) joins every worker's send rows against the
//! receivers' recv rows — a cross-process conservation check no single
//! process could fake — and (ii) re-runs the identical configuration on
//! the in-process simulator and asserts the merged
//! [`cusp::partition_fingerprint`]s are bit-identical (workers are forced
//! onto the determinism contract via `--det`). Exit status is non-zero on
//! any worker failure, conservation violation, or fingerprint mismatch;
//! the final line `fingerprint tcp=... sim=... MATCH` is the CI grep
//! target. `worker` is the per-host half of that protocol and is also
//! usable standalone for multi-machine experiments: it prints
//! `CUSP-WORKER-LISTEN <addr>`, waits for `PEERS a,b,...` on stdin, and
//! reports `CUSP-WORKER-SENT/RECV/DONE` lines when finished.
//!
//! `client` speaks the framed `cusp-serve` protocol (default server
//! `127.0.0.1:7421`): upload a `.bgr` graph into a tenant namespace,
//! request partitions/quality (the server caches and coalesces them),
//! and read graph or server statistics. `client partition` prints the
//! cache tier (`cache: cold|memory|disk|coalesced`) so scripts can
//! assert hit/miss behaviour.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::exit;

use cusp::{
    metrics, partition_with_policy, write_partition, CuspConfig, GraphSource, OutputFormat,
    PolicyKind,
};
use cusp_graph::gen::{kronecker, powerlaw, KroneckerConfig, PowerLawConfig};
use cusp_graph::{edgelist, read_bgr, write_bgr, GraphProps};
use cusp_net::Cluster;
use cusp_xtrapulp::{xtrapulp_partition, XpConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  cusp-part gen --kind kron|webcrawl|uniform --nodes N [--degree D] [--seed S] --out G.bgr\n  cusp-part convert --edgelist IN.txt --out G.bgr\n  cusp-part convert --metis IN.graph --out G.bgr\n  cusp-part props G.bgr\n  cusp-part partition --graph G.bgr --policy NAME --hosts K [--out-dir DIR]\n                      [--sync-rounds N] [--buffer BYTES] [--threads T] [--csc]\n                      [--chunk-edges E] [--trace OUT.json]\n                      [--crash-seed S] [--heartbeat-ms MS] [--checkpoint-dir DIR]\n  cusp-part launch --hosts K --graph G.bgr --policy NAME [--out-dir DIR]\n                   [--sync-rounds N] [--buffer BYTES] [--chunk-edges E] [--csc]\n                   [--kill-seed S [--kill-repeat]] [--max-restarts N]\n                   [--restart-backoff-ms MS] [--checkpoint-dir DIR]\n  cusp-part worker --host-id H --hosts K --graph G.bgr --policy NAME --nonce N --out-dir DIR [--det]\n                   [--listen ADDR] [--incarnation I] [--rejoin] [--announce-phases]\n  cusp-part inspect PART.part [PART.part ...]\n  cusp-part validate --graph G.bgr --parts DIR\n  cusp-part trace-check OUT.json\n  cusp-part apply --graph G.bgr (--batch B.txt | --events N [--seed S]) [--out G2.bgr] [--wal W.wal]\n  cusp-part wal-replay --graph G.bgr --wal W.wal [--out G2.bgr] [--policy NAME --hosts K]\n  cusp-part client upload --graph G.bgr --tenant T --name N [--addr HOST:PORT]\n  cusp-part client partition --tenant T --name N --policy P --hosts K [--chunk-edges E] [--addr A]\n  cusp-part client quality --tenant T --name N --policy P --hosts K [--chunk-edges E] [--addr A]\n  cusp-part client apply --tenant T --name N --batch B.txt [--addr A]\n  cusp-part client stats --tenant T --name N [--addr A]\n  cusp-part client list --tenant T [--addr A]\n  cusp-part client server-stats [--addr A]"
    );
    exit(2)
}

/// Minimal `--flag value` parser; positional args collect separately.
fn parse_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if matches!(name, "csc" | "det" | "rejoin" | "announce-phases" | "kill-repeat") {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            } else if i + 1 < args.len() {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                eprintln!("flag --{name} is missing its value");
                usage();
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (flags, positional)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> &'a str {
    flags.get(name).map(String::as_str).unwrap_or_else(|| {
        eprintln!("missing required flag --{name}");
        usage()
    })
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid {what}: '{s}'");
        usage()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let (flags, positional) = parse_flags(&args[1..]);
    match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "convert" => cmd_convert(&flags),
        "props" => cmd_props(&positional),
        "partition" => cmd_partition(&flags),
        "worker" => cmd_worker(&flags),
        "launch" => cmd_launch(&flags),
        "inspect" => cmd_inspect(&positional),
        "validate" => cmd_validate(&flags),
        "trace-check" => cmd_trace_check(&positional),
        "apply" => cmd_apply(&flags),
        "wal-replay" => cmd_wal_replay(&flags),
        "client" => cmd_client(&positional, &flags),
        other => {
            eprintln!("unknown command '{other}'");
            usage()
        }
    }
}

fn cmd_gen(flags: &HashMap<String, String>) {
    let kind = required(flags, "kind");
    let nodes: usize = parse_num(required(flags, "nodes"), "node count");
    let degree: f64 = flags
        .get("degree")
        .map(|s| parse_num(s, "degree"))
        .unwrap_or(16.0);
    let seed: u64 = flags.get("seed").map(|s| parse_num(s, "seed")).unwrap_or(42);
    let out = PathBuf::from(required(flags, "out"));
    let graph = match kind {
        "kron" => {
            let scale = (nodes.max(2) as f64).log2().ceil() as u32;
            println!("generating kronecker: scale {scale}, edge factor {degree}");
            kronecker(KroneckerConfig::graph500(scale, degree as u32, seed))
        }
        "webcrawl" => powerlaw(PowerLawConfig::webcrawl(nodes, degree, seed)),
        "uniform" => {
            cusp_graph::gen::uniform::erdos_renyi(nodes, (nodes as f64 * degree) as usize, seed)
        }
        other => {
            eprintln!("unknown generator '{other}'");
            usage()
        }
    };
    write_bgr(&out, &graph).expect("failed to write graph");
    println!("{}", GraphProps::compute(&graph).row(out.display().to_string().as_str()));
}

fn cmd_convert(flags: &HashMap<String, String>) {
    let out = PathBuf::from(required(flags, "out"));
    let (input, graph) = if let Some(path) = flags.get("edgelist") {
        let input = PathBuf::from(path);
        let file = std::fs::File::open(&input).expect("cannot open edge list");
        let graph =
            edgelist::read_edge_list(std::io::BufReader::new(file)).expect("parse failed");
        (input, graph)
    } else if let Some(path) = flags.get("metis") {
        let input = PathBuf::from(path);
        let file = std::fs::File::open(&input).expect("cannot open metis file");
        let graph =
            cusp_graph::metis::read_metis(std::io::BufReader::new(file)).expect("parse failed");
        (input, graph)
    } else {
        eprintln!("convert needs --edgelist or --metis");
        usage()
    };
    write_bgr(&out, &graph).expect("failed to write graph");
    println!(
        "converted {} -> {} ({} nodes, {} edges)",
        input.display(),
        out.display(),
        graph.num_nodes(),
        graph.num_edges()
    );
}

fn cmd_inspect(positional: &[String]) {
    if positional.is_empty() {
        eprintln!("inspect needs at least one .part file");
        usage()
    }
    for path in positional {
        let p = cusp::read_partition(&PathBuf::from(path)).expect("cannot read partition");
        println!(
            "{path}: partition {}/{} of a {}-node / {}-edge graph ({:?})",
            p.part_id,
            p.num_parts,
            p.global_nodes,
            p.global_edges,
            p.class
        );
        println!(
            "  {} masters, {} mirrors, {} local edges{}",
            p.num_masters,
            p.num_mirrors(),
            p.num_local_edges(),
            if p.edge_data.is_some() { ", weighted" } else { "" }
        );
    }
}

fn cmd_validate(flags: &HashMap<String, String>) {
    let graph_path = PathBuf::from(required(flags, "graph"));
    let dir = PathBuf::from(required(flags, "parts"));
    let original = read_bgr(&graph_path).expect("cannot read graph");
    let mut parts = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("cannot read parts dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "part"))
        .collect();
    entries.sort();
    for path in entries {
        parts.push(cusp::read_partition(&path).expect("cannot read partition"));
    }
    parts.sort_by_key(|p| p.part_id);
    if parts.is_empty() {
        eprintln!("no .part files in {}", dir.display());
        exit(1);
    }
    match metrics::validate_partitioning(&original, &parts) {
        Ok(()) => {
            let q = metrics::quality(&parts);
            println!(
                "valid: {} partitions, replication factor {:.3}, edge balance {:.3}",
                parts.len(),
                q.replication_factor,
                q.edge_balance
            );
        }
        Err(e) => {
            eprintln!("INVALID: {e}");
            exit(1);
        }
    }
}

fn cmd_trace_check(positional: &[String]) {
    let Some(path) = positional.first() else {
        eprintln!("trace-check needs a trace JSON file");
        usage()
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("{path}: cannot read trace file: {e}");
            exit(1);
        }
    };
    match cusp_obs::validate_trace_json(&text) {
        Ok(check) => println!(
            "{path}: ok — {} events ({} span events, {} flow pairs, {} crash / {} restart marks) across {} host(s)",
            check.total_events,
            check.span_events,
            check.flow_pairs,
            check.crash_events,
            check.restart_events,
            check.processes
        ),
        Err(e) => {
            eprintln!("{path}: INVALID trace: {e}");
            exit(1);
        }
    }
}

fn cmd_props(positional: &[String]) {
    let Some(path) = positional.first() else { usage() };
    let graph = read_bgr(&PathBuf::from(path)).expect("cannot read graph");
    println!("{}", GraphProps::compute(&graph).row(path));
}

/// Runs the cluster, turning a lost host into a clean one-line diagnostic
/// and a non-zero exit instead of a panic.
fn run_cluster_or_exit<R, F>(
    hosts: usize,
    opts: cusp_net::ClusterOptions,
    f: F,
) -> cusp_net::ClusterOutput<R>
where
    R: Send,
    F: Fn(&cusp_net::Comm) -> R + Sync,
{
    match Cluster::try_run_with(hosts, opts, f) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("cusp-part: {}", cusp::PartitionError::from(e));
            exit(1);
        }
    }
}

/// Builds the pipeline configuration from the shared tuning flags
/// (`partition`, `worker`, and `launch` all accept the same set, so a
/// launched worker and the comparison simulator run identical configs).
fn cusp_cfg_from_flags(flags: &HashMap<String, String>) -> CuspConfig {
    let mut cfg = CuspConfig {
        sync_rounds: flags
            .get("sync-rounds")
            .map(|s| parse_num(s, "sync rounds"))
            .unwrap_or(10),
        buffer_threshold: flags
            .get("buffer")
            .map(|s| parse_num(s, "buffer bytes"))
            .unwrap_or(256 << 10),
        threads_per_host: flags
            .get("threads")
            .map(|s| parse_num(s, "threads"))
            .unwrap_or(2),
        output: if flags.contains_key("csc") {
            OutputFormat::Csc
        } else {
            OutputFormat::Csr
        },
        chunk_edges: flags
            .get("chunk-edges")
            .map(|s| parse_num(s, "chunk edges")),
        checkpoint_dir: flags.get("checkpoint-dir").map(PathBuf::from),
        announce_phases: flags.contains_key("announce-phases"),
        ..CuspConfig::default()
    };
    if flags.contains_key("det") {
        cfg = cusp::deterministic_for_comparison(cfg);
    }
    cfg
}

fn cmd_partition(flags: &HashMap<String, String>) {
    let graph_path = PathBuf::from(required(flags, "graph"));
    let policy_name = required(flags, "policy").to_ascii_uppercase();
    let hosts: usize = parse_num(required(flags, "hosts"), "host count");
    let crash_seed: Option<u64> = flags.get("crash-seed").map(|s| parse_num(s, "crash seed"));
    let mut cfg = cusp_cfg_from_flags(flags);
    if crash_seed.is_some() {
        // Recovery replays re-executed sends and dedupes them by sequence
        // number, which requires bit-reproducible re-execution.
        cfg.deterministic_sync = true;
        cfg.threads_per_host = 1;
    }

    let trace_path = flags.get("trace").map(PathBuf::from);
    let mut recovery = cusp_net::RecoveryOptions::default();
    if let Some(ms) = flags.get("heartbeat-ms") {
        recovery.heartbeat_timeout =
            std::time::Duration::from_millis(parse_num(ms, "heartbeat ms"));
    }
    let opts = cusp_net::ClusterOptions {
        trace: trace_path.as_ref().map(|_| cusp_net::TraceConfig::default()),
        crash: crash_seed.map(cusp_net::CrashPlan::seeded),
        recovery,
        ..cusp_net::ClusterOptions::default()
    };

    let source = GraphSource::File(graph_path.clone());
    let (parts, times_text, stats, trace, recovery_report) = if policy_name == "XTRAPULP" {
        let out = run_cluster_or_exit(hosts, opts, move |comm| {
            let r = xtrapulp_partition(comm, source.clone(), &XpConfig::default());
            (r.partition.dist_graph, r.partition_time)
        });
        let reported = out.results.iter().map(|r| r.1).max().unwrap();
        let parts: Vec<_> = out.results.into_iter().map(|r| r.0).collect();
        (
            parts,
            format!("partitioning (read + label propagation): {reported:.2?}"),
            out.stats,
            out.trace,
            out.recovery,
        )
    } else {
        let Some(kind) = PolicyKind::parse(&policy_name) else {
            eprintln!("unknown policy '{policy_name}'");
            usage()
        };
        let cfg2 = cfg.clone();
        let out = run_cluster_or_exit(hosts, opts, move |comm| {
            let r = partition_with_policy(comm, source.clone(), kind, &cfg2);
            (r.dist_graph, r.times, r.peak_resident_edges)
        });
        let mut t = cusp::PhaseTimes::default();
        let mut peak = 0u64;
        let mut parts = Vec::new();
        for (dg, times, p) in out.results {
            t = t.max(&times);
            peak = peak.max(p);
            parts.push(dg);
        }
        (
            parts,
            format!(
                "read {:.2?} | master {:.2?} | edge-assign {:.2?} | alloc {:.2?} | construct {:.2?} | total {:.2?}\npeak resident source edges per host: {peak}",
                t.read, t.master, t.edge_assign, t.alloc, t.construct, t.total()
            ),
            out.stats,
            out.trace,
            out.recovery,
        )
    };

    println!("{times_text}");
    println!(
        "communication: {:.2} MB in {} messages",
        stats.grand_total_bytes() as f64 / 1e6,
        stats.grand_total_messages()
    );
    if let Some(r) = &recovery_report {
        println!(
            "recovery: {} crash(es), {} restart(s), {} message(s) lost in teardown; replayed {} bytes in {} messages",
            r.crashes,
            r.restarts,
            r.lost_in_teardown,
            stats.replayed_bytes(),
            stats.replayed_messages()
        );
    }

    if let (Some(path), Some(trace)) = (&trace_path, &trace) {
        let json = cusp_obs::export_chrome_trace(trace);
        std::fs::write(path, &json).expect("failed to write trace file");
        println!(
            "trace: {} events on {} threads -> {} (open in https://ui.perfetto.dev){}",
            trace.events.len(),
            trace.threads.len(),
            path.display(),
            if trace.dropped_events > 0 {
                format!(" [{} events dropped: raise ring capacity]", trace.dropped_events)
            } else {
                String::new()
            }
        );
        let model = cusp_net::NetworkModel::omni_path();
        print!("{}", cusp::render_phase_summary(trace, &stats, &model));
    }

    // Validate against the original (in-memory reload) and report quality.
    let original = read_bgr(&graph_path).expect("cannot re-read graph");
    if cfg.output == OutputFormat::Csr {
        metrics::validate_partitioning(&original, &parts).expect("partitioning INVALID");
        println!("validation: ok");
    }
    let q = metrics::quality(&parts);
    println!(
        "quality: replication factor {:.3}, node balance {:.3}, edge balance {:.3}",
        q.replication_factor, q.node_balance, q.edge_balance
    );
    for p in &parts {
        println!(
            "  host {:>3}: {:>9} masters  {:>9} mirrors  {:>11} edges",
            p.part_id,
            p.num_masters,
            p.num_mirrors(),
            p.num_local_edges()
        );
    }

    if let Some(dir) = flags.get("out-dir") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("cannot create out dir");
        for p in &parts {
            let path = dir.join(format!("part-{:04}.part", p.part_id));
            write_partition(&path, p).expect("failed to write partition");
        }
        println!("wrote {} partition files to {}", parts.len(), dir.display());
    }
}

/// One host of a multi-process TCP partition run, spawned by
/// `cusp-part launch` (or any orchestrator speaking the same two-line
/// protocol: the worker prints `CUSP-WORKER-LISTEN <addr>` on stdout,
/// then reads `PEERS <addr0>,<addr1>,...` from stdin before building the
/// mesh). Writes `part-XXXX.part` into `--out-dir` and reports its
/// per-peer send/recv totals so the launcher can check conservation
/// across processes.
fn cmd_worker(flags: &HashMap<String, String>) {
    use std::io::{BufRead, Write};
    let host: usize = parse_num(required(flags, "host-id"), "host id");
    let hosts: usize = parse_num(required(flags, "hosts"), "host count");
    let graph_path = PathBuf::from(required(flags, "graph"));
    let policy_name = required(flags, "policy").to_ascii_uppercase();
    let Some(kind) = PolicyKind::parse(&policy_name) else {
        eprintln!("unknown policy '{policy_name}'");
        usage()
    };
    let nonce: u64 = parse_num(required(flags, "nonce"), "run nonce");
    let incarnation: u32 = flags
        .get("incarnation")
        .map(|s| parse_num(s, "incarnation"))
        .unwrap_or(0);
    let out_dir = PathBuf::from(required(flags, "out-dir"));
    let cfg = cusp_cfg_from_flags(flags);

    // Bind an ephemeral port first and announce it: the orchestrator
    // gathers every worker's address before any dial happens, so there is
    // no port race and no config file. A respawned worker (`--listen`)
    // instead pins its original address, so the peer list the survivors
    // hold — and their rejoin redials — stay valid across the restart.
    let listener = match flags.get("listen") {
        Some(addr) => bind_pinned(addr, host),
        None => std::net::TcpListener::bind("127.0.0.1:0").expect("cannot bind worker listener"),
    };
    let addr = listener.local_addr().expect("listener has no local addr");
    println!("CUSP-WORKER-LISTEN {addr}");
    std::io::stdout().flush().expect("cannot flush stdout");

    let mut line = String::new();
    std::io::stdin()
        .lock()
        .read_line(&mut line)
        .expect("cannot read PEERS line from stdin");
    let Some(list) = line.trim().strip_prefix("PEERS ") else {
        eprintln!("worker {host}: expected 'PEERS a,b,...' on stdin, got '{}'", line.trim());
        exit(2);
    };
    let peers: Vec<String> = list.split(',').map(str::to_string).collect();
    if peers.len() != hosts || host >= hosts {
        eprintln!(
            "worker {host}: got {} peer address(es) for a {hosts}-host cluster",
            peers.len()
        );
        exit(2);
    }

    let mut topts = cusp_net::TcpOptions::from_env();
    topts.rejoin = flags.contains_key("rejoin");
    let transport = match cusp_net::TcpTransport::establish_with(
        host,
        listener,
        &peers,
        nonce,
        incarnation,
        topts,
    ) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("worker {host}: transport establish failed: {e}");
            exit(1);
        }
    };

    // Torn-connection saboteur (kill mode `torn`): when the supervisor
    // writes TEAR on our stdin, emit a frame whose length prefix promises
    // far more bytes than follow and die mid-write — peers must classify
    // the partial frame as connection death, never as data.
    let mut saboteur = transport.saboteur();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut lock = stdin.lock();
        let mut line = String::new();
        loop {
            line.clear();
            match lock.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            if line.trim() == "TEAR" {
                if let Some(s) = saboteur.as_mut() {
                    let _ = s.write_all(&100u32.to_le_bytes());
                    let _ = s.write_all(&[4, 0xde, 0xad]);
                    let _ = s.flush();
                }
                std::process::abort();
            }
        }
    });

    let source = GraphSource::File(graph_path);
    let out = match cusp::partition_with_policy_tcp(transport, source, kind, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("worker {host}: {e}");
            exit(1);
        }
    };

    std::fs::create_dir_all(&out_dir).expect("cannot create out dir");
    let dg = out.result.dist_graph;
    let path = out_dir.join(format!("part-{:04}.part", dg.part_id));
    write_partition(&path, &dg).expect("failed to write partition");

    // Per-pair totals summed over phases. The launcher joins this host's
    // SENT row with each receiver's RECV row: over TCP the two sides are
    // counted by different processes, so equality is a real end-to-end
    // conservation check, not bookkeeping tautology.
    for peer in (0..hosts).filter(|&p| p != host) {
        let (mut sb, mut sm, mut rb, mut rm) = (0u64, 0u64, 0u64, 0u64);
        for (_name, ph) in out.stats.iter() {
            sb += ph.bytes_between(host, peer);
            sm += ph.messages_between(host, peer);
            rb += ph.recv_bytes_between(peer, host);
            rm += ph.recv_messages_between(peer, host);
        }
        println!("CUSP-WORKER-SENT {peer} {sb} {sm}");
        println!("CUSP-WORKER-RECV {peer} {rb} {rm}");
    }
    println!("CUSP-WORKER-REJOINS {}", out.rejoins);
    println!("CUSP-WORKER-DONE {host}");
}

/// Binds a specific listen address, retrying briefly: a respawned worker
/// reclaims its old port, which may linger for a moment after the previous
/// incarnation's death.
fn bind_pinned(addr: &str, host: usize) -> std::net::TcpListener {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match std::net::TcpListener::bind(addr) {
            Ok(l) => return l,
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    eprintln!("worker {host}: cannot rebind {addr}: {e}");
                    exit(1);
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
}

/// Orchestrates a real multi-process partition run: forks `--hosts`
/// worker processes of this same binary, wires their TCP mesh, merges
/// the partitions they write, checks cross-process conservation, and
/// compares the merged `partition_fingerprint` against an in-process
/// simulated run of the identical configuration. The comparison pins the
/// determinism contract (`deterministic_sync`, one worker thread), under
/// which the two transports must be bit-identical.
///
/// With `--kill-seed`, the launcher doubles as a chaos supervisor: a
/// seeded [`cusp_net::KillPlan`] picks one worker, a pipeline phase, and a
/// kill mode (SIGKILL / torn connection / SIGSTOP wedge); the launcher
/// takes the victim down when it announces that phase, then respawns it
/// (bounded by `--max-restarts`, exponential backoff) with the same listen
/// address and a bumped incarnation so it rejoins the surviving mesh. The
/// run must still end in fingerprint MATCH against the crash-free
/// simulator. `--kill-repeat` re-kills every incarnation at the same
/// point, which exhausts the restart budget and must produce a one-line
/// diagnostic and a non-zero exit — never a hang.
fn cmd_launch(flags: &HashMap<String, String>) {
    exit(launch_run(flags));
}

/// One worker process under supervision.
struct Worker {
    child: std::process::Child,
    /// Kept open: the torn kill mode speaks TEAR over it.
    stdin: Option<std::process::ChildStdin>,
    addr: Option<String>,
    incarnation: u32,
    restarts: u32,
    kills: u32,
    done: bool,
    /// Stdout of the current incarnation fully drained. Judging a dead
    /// child before this is set races the reader thread: `try_wait` can
    /// observe a clean exit before the buffered DONE line has been
    /// delivered through the event channel.
    eof: bool,
    /// Deadline at which a SIGSTOPped (wedged) victim gets its SIGKILL.
    wedge_deadline: Option<std::time::Instant>,
    stderr_path: PathBuf,
}

/// Kills and reaps every worker on drop, so no exit path — including the
/// early-return failure paths — leaks zombies.
struct Fleet {
    workers: Vec<Worker>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for w in &mut self.workers {
            let _ = w.child.kill();
            let _ = w.child.wait();
        }
    }
}

/// A line (or EOF, `None`) from worker `host`'s stdout at `incarnation`.
/// The incarnation tag lets the supervisor drop stragglers from a dead
/// generation's reader thread that land after the respawn.
type WorkerEvent = (usize, u32, Option<String>);

fn launch_run(flags: &HashMap<String, String>) -> i32 {
    use std::io::Write;
    let hosts: usize = parse_num(required(flags, "hosts"), "host count");
    let graph_path = PathBuf::from(required(flags, "graph"));
    let policy_name = required(flags, "policy").to_ascii_uppercase();
    let Some(kind) = PolicyKind::parse(&policy_name) else {
        eprintln!("unknown policy '{policy_name}'");
        usage()
    };
    if hosts == 0 {
        eprintln!("launch needs at least one host");
        return 2;
    }
    let out_dir = flags
        .get("out-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("cusp-launch-{}", std::process::id())));
    std::fs::create_dir_all(&out_dir).expect("cannot create out dir");

    let kill_seed: Option<u64> = flags.get("kill-seed").map(|s| parse_num(s, "kill seed"));
    let kill_repeat = flags.contains_key("kill-repeat");
    let max_restarts: u32 = flags
        .get("max-restarts")
        .map(|s| parse_num(s, "max restarts"))
        .unwrap_or(3);
    let backoff_base = std::time::Duration::from_millis(
        flags
            .get("restart-backoff-ms")
            .map(|s| parse_num(s, "restart backoff ms"))
            .unwrap_or(100),
    );
    let plan = kill_seed.map(|seed| {
        let d = cusp_net::KillPlan { seed, hosts }.decide();
        println!(
            "kill plan: seed {seed} -> host {victim}, {mode} @ {phase} (max {max_restarts} restart(s))",
            victim = d.victim,
            mode = d.mode.as_str(),
            phase = d.phase,
        );
        d
    });
    // How long a wedged victim stays SIGSTOPped before the SIGKILL: past
    // the peers' heartbeat timeout when that is CI-short, bounded at 2.5 s
    // so default 10 s timeouts don't stall the run (EOF detection covers
    // that configuration instead).
    let wedge_hold = {
        let t = cusp_net::TcpOptions::from_env().peer_timeout;
        t.min(std::time::Duration::from_secs(2)) + std::time::Duration::from_millis(500)
    };

    // A fresh nonce per launch: stale workers from a previous run (or a
    // concurrent launch on the same machine) fail the handshake instead
    // of corrupting the mesh.
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock before epoch")
        .as_nanos() as u64
        ^ ((std::process::id() as u64) << 32);

    let exe = std::env::current_exe().expect("cannot locate own executable");
    let (tx, rx) = std::sync::mpsc::channel::<WorkerEvent>();

    let spawn_worker = |h: usize, incarnation: u32, listen: Option<&str>, stderr_path: &Path| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("worker")
            .arg("--host-id")
            .arg(h.to_string())
            .arg("--hosts")
            .arg(hosts.to_string())
            .arg("--graph")
            .arg(&graph_path)
            .arg("--policy")
            .arg(&policy_name)
            .arg("--nonce")
            .arg(nonce.to_string())
            .arg("--out-dir")
            .arg(&out_dir)
            .arg("--det");
        for key in ["sync-rounds", "buffer", "chunk-edges", "checkpoint-dir"] {
            if let Some(v) = flags.get(key) {
                cmd.arg(format!("--{key}")).arg(v);
            }
        }
        if flags.contains_key("csc") {
            cmd.arg("--csc");
        }
        if kill_seed.is_some() {
            // Recovery needs the survivors' rejoin acceptors and the
            // victim's phase markers; both are inert otherwise.
            cmd.arg("--rejoin").arg("--announce-phases");
        }
        if incarnation > 0 {
            cmd.arg("--incarnation").arg(incarnation.to_string());
        }
        if let Some(addr) = listen {
            cmd.arg("--listen").arg(addr);
        }
        let log = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(stderr_path)
            .expect("cannot open worker stderr log");
        cmd.stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::from(log));
        let mut child = cmd.spawn().expect("cannot spawn worker process");
        let stdout = child.stdout.take().expect("worker stdout piped");
        let tx = tx.clone();
        std::thread::spawn(move || {
            use std::io::BufRead;
            let rdr = std::io::BufReader::new(stdout);
            for line in rdr.lines() {
                let Ok(line) = line else { break };
                if tx.send((h, incarnation, Some(line))).is_err() {
                    return;
                }
            }
            let _ = tx.send((h, incarnation, None));
        });
        child
    };

    let mut fleet = Fleet { workers: Vec::with_capacity(hosts) };
    for h in 0..hosts {
        let stderr_path = out_dir.join(format!("worker-{h}.stderr.log"));
        let _ = std::fs::remove_file(&stderr_path);
        let mut child = spawn_worker(h, 0, None, &stderr_path);
        let stdin = child.stdin.take();
        fleet.workers.push(Worker {
            child,
            stdin,
            addr: None,
            incarnation: 0,
            restarts: 0,
            kills: 0,
            done: false,
            eof: false,
            wedge_deadline: None,
            stderr_path,
        });
    }

    let fail = |fleet: &Fleet, h: usize, why: &str| -> i32 {
        eprintln!("cusp-part launch: {why}");
        stderr_tail(h, &fleet.workers[h].stderr_path);
        1
    };

    // Supervise: drive the PEERS handshake, watch for phase markers to
    // fire the kill plan, detect deaths (child exit, stdout EOF), respawn
    // with backoff, and collect the per-peer accounting rows.
    let mut peers_line: Option<String> = None;
    let mut sent = vec![vec![(0u64, 0u64); hosts]; hosts];
    let mut recv = vec![vec![(0u64, 0u64); hosts]; hosts];
    let mut rejoins_total = 0u64;
    let mut respawns = 0u32;
    let mut kills_fired = 0u32;
    let mut pending_respawn: Vec<(usize, std::time::Instant)> = Vec::new();
    let mut last_progress = std::time::Instant::now();
    let watchdog = std::time::Duration::from_secs(180);

    loop {
        match rx.recv_timeout(std::time::Duration::from_millis(50)) {
            Ok((h, inc, ev)) => {
                if inc != fleet.workers[h].incarnation {
                    // A dead generation's reader thread draining out.
                } else if let Some(line) = ev {
                    last_progress = std::time::Instant::now();
                    let toks: Vec<&str> = line.split_whitespace().collect();
                    match toks.as_slice() {
                        ["CUSP-WORKER-LISTEN", addr] => {
                            if let Some(prev) = &fleet.workers[h].addr {
                                if prev != addr {
                                    return fail(
                                        &fleet,
                                        h,
                                        &format!("respawned worker {h} rebound {addr}, expected {prev}"),
                                    );
                                }
                                // A respawn: it already knows where everyone
                                // lives — re-send the list immediately.
                                send_peers(&mut fleet.workers[h], peers_line.as_deref().unwrap());
                            } else {
                                fleet.workers[h].addr = Some(addr.to_string());
                                if fleet.workers.iter().all(|w| w.addr.is_some()) {
                                    let all: Vec<&str> = fleet
                                        .workers
                                        .iter()
                                        .map(|w| w.addr.as_deref().unwrap())
                                        .collect();
                                    let line = format!("PEERS {}\n", all.join(","));
                                    for w in &mut fleet.workers {
                                        send_peers(w, &line);
                                    }
                                    peers_line = Some(line);
                                }
                            }
                        }
                        ["CUSP-WORKER-PHASE", phase] => {
                            if let Some(d) = &plan {
                                let due = d.victim == h
                                    && d.phase == *phase
                                    && (fleet.workers[h].kills == 0 || kill_repeat);
                                if due {
                                    fleet.workers[h].kills += 1;
                                    kills_fired += 1;
                                    println!(
                                        "killing host {h} ({} @ {phase}, incarnation {})",
                                        d.mode.as_str(),
                                        fleet.workers[h].incarnation
                                    );
                                    match d.mode {
                                        cusp_net::KillMode::Kill => {
                                            let _ = fleet.workers[h].child.kill();
                                        }
                                        cusp_net::KillMode::Torn => {
                                            let torn = fleet.workers[h]
                                                .stdin
                                                .as_mut()
                                                .and_then(|s| s.write_all(b"TEAR\n").ok())
                                                .is_some();
                                            if !torn {
                                                let _ = fleet.workers[h].child.kill();
                                            }
                                        }
                                        cusp_net::KillMode::Wedge => {
                                            let pid = fleet.workers[h].child.id().to_string();
                                            let stopped = std::process::Command::new("kill")
                                                .args(["-STOP", &pid])
                                                .status()
                                                .map(|s| s.success())
                                                .unwrap_or(false);
                                            if stopped {
                                                fleet.workers[h].wedge_deadline =
                                                    Some(std::time::Instant::now() + wedge_hold);
                                            } else {
                                                let _ = fleet.workers[h].child.kill();
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        ["CUSP-WORKER-SENT", peer, bytes, msgs] => {
                            sent[h][parse_num::<usize>(peer, "peer")] =
                                (parse_num(bytes, "bytes"), parse_num(msgs, "messages"));
                        }
                        ["CUSP-WORKER-RECV", peer, bytes, msgs] => {
                            recv[h][parse_num::<usize>(peer, "peer")] =
                                (parse_num(bytes, "bytes"), parse_num(msgs, "messages"));
                        }
                        ["CUSP-WORKER-REJOINS", n] => {
                            rejoins_total += parse_num::<u64>(n, "rejoin count");
                        }
                        ["CUSP-WORKER-DONE", _] => fleet.workers[h].done = true,
                        _ => {}
                    }
                } else {
                    // EOF of the current incarnation: every line it printed
                    // has now been processed. Death itself is still decided
                    // by try_wait below.
                    fleet.workers[h].eof = true;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {}
        }

        // A wedged victim's hold expired: deliver the SIGKILL (it lands on
        // stopped processes too).
        for h in 0..hosts {
            if fleet.workers[h]
                .wedge_deadline
                .is_some_and(|d| std::time::Instant::now() >= d)
            {
                fleet.workers[h].wedge_deadline = None;
                let _ = fleet.workers[h].child.kill();
            }
        }

        // Reap deaths and decide: normal exit, respawn, or give up.
        for h in 0..hosts {
            let Some(status) = fleet.workers[h].child.try_wait().expect("cannot poll worker") else {
                continue;
            };
            if fleet.workers[h].done || pending_respawn.iter().any(|&(p, _)| p == h) {
                continue;
            }
            if !fleet.workers[h].eof {
                // The exit landed before the stdout drain: its DONE line (or
                // final accounting rows) may still be in the channel. Hold
                // judgment until the reader thread reports EOF — the dead
                // child's pipe is closed, so that arrives promptly.
                continue;
            }
            last_progress = std::time::Instant::now();
            if kill_seed.is_some()
                && fleet.workers[h].addr.is_some()
                && fleet.workers[h].restarts < max_restarts
            {
                fleet.workers[h].restarts += 1;
                let backoff = backoff_base * 2u32.pow((fleet.workers[h].restarts - 1).min(8));
                println!(
                    "host {h} died ({status}); respawning incarnation {} in {backoff:?}",
                    fleet.workers[h].incarnation + 1
                );
                pending_respawn.push((h, std::time::Instant::now() + backoff));
            } else if kill_seed.is_some() && fleet.workers[h].restarts >= max_restarts {
                return fail(
                    &fleet,
                    h,
                    &format!("host {h} lost: exhausted {max_restarts} restart attempt(s)"),
                );
            } else {
                return fail(&fleet, h, &format!("worker {h} failed ({status})"));
            }
        }

        // Fire due respawns: same address, bumped incarnation.
        let now = std::time::Instant::now();
        let mut i = 0;
        while i < pending_respawn.len() {
            if pending_respawn[i].1 > now {
                i += 1;
                continue;
            }
            let (h, _) = pending_respawn.swap_remove(i);
            let w = &mut fleet.workers[h];
            let _ = w.child.wait();
            w.incarnation += 1;
            w.wedge_deadline = None;
            w.eof = false;
            respawns += 1;
            let addr = w.addr.clone().unwrap();
            let mut child = spawn_worker(h, w.incarnation, Some(&addr), &w.stderr_path);
            w.stdin = child.stdin.take();
            w.child = child;
        }

        if fleet.workers.iter().all(|w| w.done)
            && fleet
                .workers
                .iter_mut()
                .all(|w| w.child.try_wait().map(|s| s.is_some()).unwrap_or(true))
        {
            break;
        }
        if last_progress.elapsed() > watchdog {
            return fail(&fleet, 0, "no worker progress within the watchdog window");
        }
    }

    let mut conserved = true;
    for s in 0..hosts {
        for d in (0..hosts).filter(|&d| d != s) {
            if sent[s][d] != recv[d][s] {
                eprintln!(
                    "conservation violated {s}->{d}: sent {:?} != received {:?}",
                    sent[s][d], recv[d][s]
                );
                conserved = false;
            }
        }
    }
    let wire_bytes: u64 = sent.iter().flatten().map(|&(b, _)| b).sum();
    let wire_msgs: u64 = sent.iter().flatten().map(|&(_, m)| m).sum();
    println!(
        "cross-process conservation: {} ({:.2} MB in {} messages over TCP)",
        if conserved { "ok" } else { "VIOLATED" },
        wire_bytes as f64 / 1e6,
        wire_msgs
    );
    if let Some(d) = &plan {
        println!(
            "recovery: {kills_fired} kill(s) ({} @ {}, host {}), {respawns} respawn(s), {rejoins_total} peer rejoin(s)",
            d.mode.as_str(),
            d.phase,
            d.victim
        );
    }

    // Merge the partitions the workers wrote and fingerprint them.
    let mut parts = Vec::with_capacity(hosts);
    for h in 0..hosts {
        let path = out_dir.join(format!("part-{h:04}.part"));
        parts.push(cusp::read_partition(&path).expect("cannot read worker partition"));
    }
    let tcp_fp = cusp::partition_fingerprint(&parts);

    // The oracle: the in-process simulator over the identical config,
    // crash-free (so a recovered run must land on the crash-free answer).
    let mut cfg = cusp::deterministic_for_comparison(cusp_cfg_from_flags(flags));
    cfg.checkpoint_dir = None;
    let source = GraphSource::File(graph_path.clone());
    let cfg2 = cfg.clone();
    let sim = run_cluster_or_exit(hosts, cusp_net::ClusterOptions::default(), move |comm| {
        partition_with_policy(comm, source.clone(), kind, &cfg2).dist_graph
    });
    let sim_fp = cusp::partition_fingerprint(&sim.results);

    if cfg.output == OutputFormat::Csr {
        let original = read_bgr(&graph_path).expect("cannot re-read graph");
        metrics::validate_partitioning(&original, &parts).expect("partitioning INVALID");
        println!("validation: ok");
    }
    println!(
        "fingerprint tcp=0x{tcp_fp:016x} sim=0x{sim_fp:016x} {}",
        if tcp_fp == sim_fp { "MATCH" } else { "MISMATCH" }
    );
    if tcp_fp != sim_fp || !conserved {
        return 1;
    }
    0
}

/// Hands a worker the full peer list over its stdin, keeping the handle
/// open afterwards (the torn kill mode needs it).
fn send_peers(w: &mut Worker, line: &str) {
    use std::io::Write;
    let stdin = w.stdin.as_mut().expect("worker stdin piped");
    stdin.write_all(line.as_bytes()).expect("cannot send peer list to worker");
    stdin.flush().expect("cannot flush worker stdin");
}

/// Prints the last lines of a dead worker's captured stderr, so the panic
/// message is not lost inside the log file.
fn stderr_tail(h: usize, path: &Path) {
    let Ok(text) = std::fs::read_to_string(path) else { return };
    let lines: Vec<&str> = text.lines().collect();
    let tail = &lines[lines.len().saturating_sub(15)..];
    if tail.is_empty() {
        return;
    }
    eprintln!("--- worker {h} stderr tail ({}):", path.display());
    for l in tail {
        eprintln!("  {l}");
    }
}

/// Reads a `.bgr` graph, picking up per-edge weights when present.
fn read_graph_any(path: &Path) -> (cusp_graph::Csr, Option<Vec<u32>>) {
    match cusp_graph::read_bgr_weighted(path) {
        Ok((g, w)) => (g, Some(w)),
        Err(_) => (read_bgr(path).expect("cannot read graph"), None),
    }
}

/// Parses the text batch format: one event per line, `#` comments.
///
/// ```text
/// add 3 17        # unweighted edge 3 -> 17
/// add 3 17 9      # weighted edge (weighted graphs only)
/// remove 5 2
/// setw 3 17 12
/// ```
fn parse_batch_text(text: &str) -> Vec<cusp_graph::GraphEvent> {
    use cusp_graph::GraphEvent;
    let mut events = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let ev = match toks.as_slice() {
            ["add", s, d] => GraphEvent::AddEdge {
                src: parse_num(s, "src"),
                dst: parse_num(d, "dst"),
                weight: None,
            },
            ["add", s, d, w] => GraphEvent::AddEdge {
                src: parse_num(s, "src"),
                dst: parse_num(d, "dst"),
                weight: Some(parse_num(w, "weight")),
            },
            ["remove", s, d] => GraphEvent::RemoveEdge {
                src: parse_num(s, "src"),
                dst: parse_num(d, "dst"),
            },
            ["setw", s, d, w] => GraphEvent::SetWeight {
                src: parse_num(s, "src"),
                dst: parse_num(d, "dst"),
                weight: parse_num(w, "weight"),
            },
            _ => {
                eprintln!("batch line {}: cannot parse '{}'", no + 1, raw.trim());
                exit(2)
            }
        };
        events.push(ev);
    }
    events
}

/// A mutation batch from `--batch FILE` or the seeded generator
/// (`--events N [--seed S]`).
fn batch_from_flags(
    flags: &HashMap<String, String>,
    graph: &cusp_graph::Csr,
    weighted: bool,
) -> Vec<cusp_graph::GraphEvent> {
    if let Some(path) = flags.get("batch") {
        let text = std::fs::read_to_string(path).expect("cannot read batch file");
        parse_batch_text(&text)
    } else if let Some(n) = flags.get("events") {
        let seed: u64 = flags.get("seed").map(|s| parse_num(s, "seed")).unwrap_or(42);
        cusp_graph::wal::seeded_batch(graph, weighted, seed, parse_num(n, "event count"))
    } else {
        eprintln!("apply needs --batch FILE or --events N");
        usage()
    }
}

fn cmd_apply(flags: &HashMap<String, String>) {
    let graph_path = PathBuf::from(required(flags, "graph"));
    let (graph, weights) = read_graph_any(&graph_path);
    let batch = batch_from_flags(flags, &graph, weights.is_some());
    if batch.is_empty() {
        println!("empty batch: nothing to do");
        return;
    }
    let old_fp = cusp::graph_fingerprint(&graph, weights.as_deref());
    let applied = graph.apply_batch(weights.as_deref(), &batch).unwrap_or_else(|e| {
        eprintln!("batch rejected: {e}");
        exit(1)
    });
    let new_fp = cusp::graph_fingerprint(&applied.graph, applied.weights.as_deref());
    println!(
        "applied {} event(s): {} edge(s) added, {} removed, {} reweighted",
        batch.len(),
        applied.added,
        applied.removed,
        applied.reweighted
    );
    println!("dirty vertices: {}", applied.dirty.len());
    println!(
        "graph: {} -> {} nodes, {} -> {} edges",
        graph.num_nodes(),
        applied.graph.num_nodes(),
        graph.num_edges(),
        applied.graph.num_edges()
    );
    println!("graph fingerprint: {old_fp:016x} -> {new_fp:016x}");
    if let Some(wal_path) = flags.get("wal") {
        let wal = cusp_graph::Wal::new(PathBuf::from(wal_path));
        wal.append(&batch).expect("failed to append batch to WAL");
        let total = wal.load().map(|b| b.len()).unwrap_or(0);
        println!("journaled to {wal_path} ({total} batch(es) total)");
    }
    if let Some(out) = flags.get("out") {
        let out = PathBuf::from(out);
        match &applied.weights {
            Some(w) => cusp_graph::write_bgr_weighted(&out, &applied.graph, w),
            None => write_bgr(&out, &applied.graph),
        }
        .expect("failed to write mutated graph");
        println!("wrote mutated graph to {}", out.display());
    }
}

fn cmd_wal_replay(flags: &HashMap<String, String>) {
    use std::sync::Arc;

    let graph_path = PathBuf::from(required(flags, "graph"));
    let wal_path = required(flags, "wal");
    let (mut graph, mut weights) = read_graph_any(&graph_path);
    let wal = cusp_graph::Wal::new(PathBuf::from(wal_path));
    let batches = wal.load().unwrap_or_else(|e| {
        eprintln!("cannot load WAL {wal_path}: {e}");
        exit(1)
    });
    println!("{}: {} batch(es)", wal_path, batches.len());

    let checker = flags.get("policy").map(|p| {
        let name = p.to_ascii_uppercase();
        let Some(kind) = PolicyKind::parse(&name) else {
            eprintln!("unknown policy '{name}'");
            usage()
        };
        let hosts: usize =
            parse_num(flags.get("hosts").map(String::as_str).unwrap_or("4"), "host count");
        (kind, hosts)
    });
    // The delta/full equivalence check rides on the determinism contract.
    let cfg = CuspConfig {
        deterministic_sync: true,
        threads_per_host: 1,
        ..CuspConfig::default()
    };
    let source_of = |g: &cusp_graph::Csr, w: &Option<Vec<u32>>| match w {
        Some(w) => GraphSource::MemoryWeighted(Arc::new(g.clone()), Arc::new(w.clone())),
        None => GraphSource::Memory(Arc::new(g.clone())),
    };
    let mut prevs = checker.map(|(kind, hosts)| {
        let src = source_of(&graph, &weights);
        let cfg = cfg.clone();
        Cluster::run(hosts, move |comm| partition_with_policy(comm, src.clone(), kind, &cfg))
            .results
    });

    for (i, batch) in batches.iter().enumerate() {
        let applied = graph.apply_batch(weights.as_deref(), batch).unwrap_or_else(|e| {
            eprintln!("batch {i} rejected: {e}");
            exit(1)
        });
        println!(
            "batch {i}: {} event(s), {} dirty vertice(s), {} -> {} edges",
            batch.len(),
            applied.dirty.len(),
            graph.num_edges(),
            applied.graph.num_edges()
        );
        if let (Some(prev), Some((kind, hosts))) = (&prevs, checker) {
            let src = source_of(&applied.graph, &applied.weights);
            let delta = {
                let (src, cfg) = (src.clone(), cfg.clone());
                Cluster::run(hosts, move |comm| {
                    cusp::partition_delta_with_policy(
                        comm,
                        src.clone(),
                        kind,
                        &cfg,
                        &prev[comm.host()],
                        batch,
                    )
                })
                .results
            };
            let full = {
                let cfg = cfg.clone();
                Cluster::run(hosts, move |comm| {
                    partition_with_policy(comm, src.clone(), kind, &cfg)
                })
                .results
            };
            let delta_parts: Vec<_> = delta.iter().map(|o| o.dist_graph.clone()).collect();
            let full_parts: Vec<_> = full.iter().map(|o| o.dist_graph.clone()).collect();
            let violations = cusp::check_delta_equivalence(
                &applied.graph,
                applied.weights.as_deref(),
                &delta_parts,
                &full_parts,
                true,
            );
            if !violations.is_empty() {
                eprintln!("batch {i}: delta/full DIVERGENCE:");
                for v in &violations {
                    eprintln!("  {v:?}");
                }
                exit(1);
            }
            let reused: u64 = delta.iter().map(|o| o.reused_edges).sum();
            println!(
                "  delta == full (fingerprint {:016x}); {} dirty, {} edge(s) reused",
                cusp::partition_fingerprint(&delta_parts),
                delta[0].dirty_vertices,
                reused
            );
            prevs = Some(full);
        }
        graph = applied.graph;
        weights = applied.weights;
    }

    println!(
        "final graph: {} nodes, {} edges, fingerprint {:016x}",
        graph.num_nodes(),
        graph.num_edges(),
        cusp::graph_fingerprint(&graph, weights.as_deref())
    );
    if let Some(out) = flags.get("out") {
        let out = PathBuf::from(out);
        match &weights {
            Some(w) => cusp_graph::write_bgr_weighted(&out, &graph, w),
            None => write_bgr(&out, &graph),
        }
        .expect("failed to write replayed graph");
        println!("wrote replayed graph to {}", out.display());
    }
}

fn cmd_client(positional: &[String], flags: &HashMap<String, String>) {
    use cusp_serve::{Client, Response};

    let Some(verb) = positional.first() else {
        eprintln!("client needs a verb: upload|partition|quality|apply|stats|list|server-stats");
        usage()
    };
    let addr = flags.get("addr").map(String::as_str).unwrap_or("127.0.0.1:7421");
    let mut client = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to cusp-serve at {addr}: {e}");
        exit(1)
    });
    let fail = |e: cusp_serve::ClientError| -> ! {
        eprintln!("request failed: {e}");
        exit(1)
    };

    match verb.as_str() {
        "upload" => {
            let tenant = required(flags, "tenant");
            let name = required(flags, "name");
            let path = PathBuf::from(required(flags, "graph"));
            // Weighted .bgr files carry their weights along; plain ones
            // upload structure only.
            let (graph, weights) = match cusp_graph::read_bgr_weighted(&path) {
                Ok((g, w)) => (g, Some(w)),
                Err(_) => (read_bgr(&path).expect("cannot read graph"), None),
            };
            let (fp, nodes, edges) = client
                .upload_graph(tenant, name, &graph, weights.as_deref())
                .unwrap_or_else(|e| fail(e));
            println!("uploaded {tenant}/{name}: {nodes} nodes, {edges} edges");
            println!("graph fingerprint: {fp:016x}");
        }
        "partition" => {
            let resp = client
                .partition(
                    required(flags, "tenant"),
                    required(flags, "name"),
                    required(flags, "policy"),
                    parse_num(flags.get("hosts").map(String::as_str).unwrap_or("4"), "hosts"),
                    flags.get("chunk-edges").map(|s| parse_num(s, "chunk size")).unwrap_or(0),
                )
                .unwrap_or_else(|e| fail(e));
            let Response::Partitioned {
                fingerprint,
                tier,
                wall_micros,
                replication_factor,
                edge_balance,
            } = resp
            else {
                unreachable!("client.partition returns Partitioned")
            };
            println!("partition fingerprint: {fingerprint:016x}");
            println!("cache: {}", tier.label());
            println!(
                "wall: {:.3} ms, replication factor {replication_factor:.3}, edge balance {edge_balance:.3}",
                wall_micros as f64 / 1000.0
            );
        }
        "quality" => {
            let resp = client
                .quality(
                    required(flags, "tenant"),
                    required(flags, "name"),
                    required(flags, "policy"),
                    parse_num(flags.get("hosts").map(String::as_str).unwrap_or("4"), "hosts"),
                    flags.get("chunk-edges").map(|s| parse_num(s, "chunk size")).unwrap_or(0),
                )
                .unwrap_or_else(|e| fail(e));
            let Response::QualityReport {
                fingerprint,
                tier,
                replication_factor,
                node_balance,
                edge_balance,
                total_mirrors,
            } = resp
            else {
                unreachable!("client.quality returns QualityReport")
            };
            println!("partition fingerprint: {fingerprint:016x}");
            println!("cache: {}", tier.label());
            println!(
                "replication factor {replication_factor:.3}, node balance {node_balance:.3}, edge balance {edge_balance:.3}, {total_mirrors} mirrors"
            );
        }
        "apply" => {
            let text = std::fs::read_to_string(required(flags, "batch"))
                .expect("cannot read batch file");
            let batch = parse_batch_text(&text);
            let resp = client
                .apply(required(flags, "tenant"), required(flags, "name"), &batch)
                .unwrap_or_else(|e| fail(e));
            let Response::Applied {
                old_fingerprint,
                new_fingerprint,
                dirty_vertices,
                nodes,
                edges,
            } = resp
            else {
                unreachable!("client.apply returns Applied")
            };
            println!("applied {} event(s); {dirty_vertices} dirty vertice(s)", batch.len());
            println!("graph fingerprint: {old_fingerprint:016x} -> {new_fingerprint:016x}");
            println!("now {nodes} nodes, {edges} edges");
        }
        "stats" => {
            let resp = client
                .graph_stats(required(flags, "tenant"), required(flags, "name"))
                .unwrap_or_else(|e| fail(e));
            let Response::GraphStatsReport { fingerprint, nodes, edges, max_degree, weighted } =
                resp
            else {
                unreachable!("client.graph_stats returns GraphStatsReport")
            };
            println!(
                "{nodes} nodes, {edges} edges, max out-degree {max_degree}{}",
                if weighted { ", weighted" } else { "" }
            );
            println!("graph fingerprint: {fingerprint:016x}");
        }
        "list" => {
            let rows = client.list_graphs(required(flags, "tenant")).unwrap_or_else(|e| fail(e));
            if rows.is_empty() {
                println!("no graphs");
            }
            for (name, nodes, edges) in rows {
                println!("{name}: {nodes} nodes, {edges} edges");
            }
        }
        "server-stats" => {
            let resp = client.server_stats().unwrap_or_else(|e| fail(e));
            let Response::ServerStatsReport {
                requests,
                jobs_run,
                mem_hits,
                disk_hits,
                coalesced,
                tenants,
                graphs,
            } = resp
            else {
                unreachable!("client.server_stats returns ServerStatsReport")
            };
            println!("requests: {requests}");
            println!("jobs run: {jobs_run}");
            println!("cache hits: {mem_hits} memory, {disk_hits} disk, {coalesced} coalesced");
            println!("tenants: {tenants}, resident graphs: {graphs}");
        }
        other => {
            eprintln!("unknown client verb '{other}'");
            usage()
        }
    }
}
