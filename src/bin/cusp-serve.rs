//! `cusp-serve` — the long-running multi-tenant partition server.
//!
//! ```text
//! cusp-serve [--addr HOST:PORT] [--http-addr HOST:PORT] [--data-dir DIR]
//!            [--threads T] [--no-deterministic]
//!            [--max-graphs N] [--max-bytes B] [--max-jobs J]
//!            [--max-connections C] [--read-timeout-secs S]
//! ```
//!
//! Binds the framed TCP protocol on `--addr` (default `127.0.0.1:7421`,
//! speak it with `cusp-part client ...`) and, when `--http-addr` is
//! given, a minimal HTTP/JSON front end for curl:
//!
//! ```text
//! curl http://127.0.0.1:7422/healthz
//! curl -X POST 'http://127.0.0.1:7422/v1/acme/graphs/g1/gen?kind=uniform&nodes=5000&degree=8'
//! curl -X POST 'http://127.0.0.1:7422/v1/acme/graphs/g1/partition?policy=hvc&hosts=4'
//! ```
//!
//! The server runs until killed. Partition results are cached in memory
//! and under `--data-dir`, so a restarted server serves warm requests
//! from disk without re-partitioning.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use cusp_serve::{serve, serve_http, Quota, ServeConfig, ServerState};

fn usage() -> ! {
    eprintln!(
        "usage:\n  cusp-serve [--addr HOST:PORT] [--http-addr HOST:PORT] [--data-dir DIR]\n             [--threads T] [--no-deterministic]\n             [--max-graphs N] [--max-bytes B] [--max-jobs J]\n             [--max-connections C] [--read-timeout-secs S]"
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            eprintln!("unexpected argument '{}'", args[i]);
            usage()
        };
        if name == "no-deterministic" {
            flags.insert(name.to_string(), "true".to_string());
            i += 1;
        } else if i + 1 < args.len() {
            flags.insert(name.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            eprintln!("flag --{name} is missing its value");
            usage()
        }
    }
    flags
}

fn num<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str, default: T) -> T {
    match flags.get(name) {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{name}: '{s}'");
            usage()
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let flags = parse_flags(&args);

    let quota = Quota::default();
    let config = ServeConfig {
        data_dir: PathBuf::from(
            flags.get("data-dir").map(String::as_str).unwrap_or("cusp-serve-data"),
        ),
        default_quota: Quota {
            max_graphs: num(&flags, "max-graphs", quota.max_graphs),
            max_bytes: num(&flags, "max-bytes", quota.max_bytes),
            max_concurrent_jobs: num(&flags, "max-jobs", quota.max_concurrent_jobs),
        },
        threads_per_host: num(&flags, "threads", 1),
        deterministic: !flags.contains_key("no-deterministic"),
        read_timeout: Duration::from_secs(num(&flags, "read-timeout-secs", 30)),
        max_connections: num(&flags, "max-connections", 64),
        ..ServeConfig::default()
    };

    let addr = flags.get("addr").map(String::as_str).unwrap_or("127.0.0.1:7421").to_string();
    let data_dir = config.data_dir.display().to_string();
    let state = match ServerState::new(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cusp-serve: cannot initialise data dir '{data_dir}': {e}");
            exit(1);
        }
    };

    let tcp = match serve(state.clone(), &addr) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cusp-serve: cannot bind {addr}: {e}");
            exit(1);
        }
    };
    println!("cusp-serve: framed protocol on {}", tcp.addr());
    println!("cusp-serve: data dir {data_dir}");

    let _http = match flags.get("http-addr") {
        None => None,
        Some(http_addr) => match serve_http(state, http_addr) {
            Ok(h) => {
                println!("cusp-serve: http on {}", h.addr());
                Some(h)
            }
            Err(e) => {
                eprintln!("cusp-serve: cannot bind http {http_addr}: {e}");
                exit(1);
            }
        },
    };

    // Serve until killed; the accept loops own all the work.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
