//! Integration tests: distributed analytics over CuSP partitions must
//! agree with single-host reference implementations, for every policy
//! class the paper evaluates.

use std::collections::HashMap;
use std::sync::Arc;

use cusp::{partition_with_policy, CuspConfig, GraphSource, PolicyKind};
use cusp_dgalois::reference;
use cusp_dgalois::{bfs, cc, pagerank, sssp, PageRankConfig, SyncPlan};
use cusp_galois::ThreadPool;
use cusp_graph::gen::powerlaw;
use cusp_graph::gen::uniform::erdos_renyi;
use cusp_graph::gen::PowerLawConfig;
use cusp_graph::Csr;
use cusp_net::Cluster;

/// Runs `app` distributed over `k` hosts with the given policy and returns
/// the assembled global (id → value) map from master values.
fn run_distributed_u64(
    graph: &Arc<Csr>,
    k: usize,
    kind: PolicyKind,
    app: impl Fn(&cusp_net::Comm, &ThreadPool, &cusp::DistGraph, &SyncPlan) -> cusp_dgalois::AppRun
        + Sync,
) -> Vec<u64> {
    let g = Arc::clone(graph);
    let out = Cluster::run(k, move |comm| {
        let p = partition_with_policy(
            comm,
            GraphSource::Memory(g.clone()),
            kind,
            &CuspConfig::default(),
        );
        let pool = ThreadPool::new(2);
        let plan = SyncPlan::build(comm, &p.dist_graph);
        app(comm, &pool, &p.dist_graph, &plan).master_values
    });
    let mut values = vec![u64::MAX; graph.num_nodes()];
    let mut seen = 0usize;
    for host in out.results {
        for (gid, v) in host {
            values[gid as usize] = v;
            seen += 1;
        }
    }
    assert_eq!(seen, graph.num_nodes(), "masters must cover every vertex");
    values
}

const POLICIES: [PolicyKind; 6] = [
    PolicyKind::Eec,
    PolicyKind::Hvc,
    PolicyKind::Cvc,
    PolicyKind::Fec,
    PolicyKind::Gvc,
    PolicyKind::Svc,
];

#[test]
fn bfs_matches_reference_across_policies() {
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(800, 8.0, 5)));
    let source = graph.max_out_degree_node().unwrap();
    let expect = reference::bfs_ref(&graph, source);
    for kind in POLICIES {
        let got = run_distributed_u64(&graph, 4, kind, |c, pool, dg, plan| {
            bfs(c, pool, dg, plan, source)
        });
        assert_eq!(got, expect, "bfs mismatch under {kind}");
    }
}

#[test]
fn sssp_matches_reference_across_policies() {
    let graph = Arc::new(erdos_renyi(500, 4000, 9));
    let source = graph.max_out_degree_node().unwrap();
    let expect = reference::sssp_ref(&graph, source);
    for kind in POLICIES {
        let got = run_distributed_u64(&graph, 4, kind, |c, pool, dg, plan| {
            sssp(c, pool, dg, plan, source)
        });
        assert_eq!(got, expect, "sssp mismatch under {kind}");
    }
}

#[test]
fn cc_matches_reference_across_policies() {
    // Sparse graph → several components; symmetrize as the paper does.
    let graph = Arc::new(erdos_renyi(600, 700, 13).symmetrize());
    let expect = reference::cc_ref(&graph);
    for kind in POLICIES {
        let got = run_distributed_u64(&graph, 4, kind, cc);
        assert_eq!(got, expect, "cc mismatch under {kind}");
    }
}

#[test]
fn pagerank_matches_reference_across_policies() {
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(500, 10.0, 21)));
    let cfg = PageRankConfig {
        damping: 0.85,
        tolerance: 1e-9,
        max_iterations: 60,
    };
    let expect = reference::pagerank_ref(&graph, cfg.damping, cfg.tolerance, cfg.max_iterations);
    for kind in POLICIES {
        let g = Arc::clone(&graph);
        let out = Cluster::run(4, move |comm| {
            let p = partition_with_policy(
                comm,
                GraphSource::Memory(g.clone()),
                kind,
                &CuspConfig::default(),
            );
            let pool = ThreadPool::new(2);
            let plan = SyncPlan::build(comm, &p.dist_graph);
            pagerank(comm, &pool, &p.dist_graph, &plan, cfg).master_ranks
        });
        let mut got: HashMap<u32, f64> = HashMap::new();
        for host in out.results {
            got.extend(host);
        }
        assert_eq!(got.len(), graph.num_nodes());
        for (gid, rank) in got {
            let e = expect[gid as usize];
            assert!(
                (rank - e).abs() < 1e-6,
                "{kind}: pagerank of {gid} = {rank}, expected {e}"
            );
        }
    }
}

#[test]
fn bfs_from_isolated_source_reaches_nothing() {
    let graph = Arc::new(Csr::from_edges(20, &[(1, 2), (2, 3)]));
    let expect = reference::bfs_ref(&graph, 10);
    let got = run_distributed_u64(&graph, 3, PolicyKind::Cvc, |c, pool, dg, plan| {
        bfs(c, pool, dg, plan, 10)
    });
    assert_eq!(got, expect);
    assert!(got.iter().enumerate().all(|(v, &d)| (d == 0) == (v == 10)));
}

#[test]
fn apps_work_on_single_host() {
    let graph = Arc::new(erdos_renyi(200, 1500, 27));
    let source = graph.max_out_degree_node().unwrap();
    let expect = reference::bfs_ref(&graph, source);
    let got = run_distributed_u64(&graph, 1, PolicyKind::Eec, |c, pool, dg, plan| {
        bfs(c, pool, dg, plan, source)
    });
    assert_eq!(got, expect);
}

#[test]
fn apps_work_at_higher_host_counts() {
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(600, 10.0, 33)));
    let source = graph.max_out_degree_node().unwrap();
    let expect = reference::bfs_ref(&graph, source);
    for k in [2, 6, 8] {
        for kind in [PolicyKind::Cvc, PolicyKind::Hvc] {
            let got = run_distributed_u64(&graph, k, kind, |c, pool, dg, plan| {
                bfs(c, pool, dg, plan, source)
            });
            assert_eq!(got, expect, "bfs mismatch at k={k} under {kind}");
        }
    }
}

#[test]
fn edge_cut_apps_have_no_broadcast_traffic() {
    // The §V-C communication optimization: under an out-edge-cut, mirrors
    // never need master values pushed back.
    let graph = Arc::new(erdos_renyi(400, 3000, 39));
    let source = graph.max_out_degree_node().unwrap();
    let g = Arc::clone(&graph);
    let out = Cluster::run(4, move |comm| {
        let p = partition_with_policy(
            comm,
            GraphSource::Memory(g.clone()),
            PolicyKind::Eec,
            &CuspConfig::default(),
        );
        let pool = ThreadPool::new(2);
        let plan = SyncPlan::build(comm, &p.dist_graph);
        let _ = bfs(comm, &pool, &p.dist_graph, &plan, source);
        plan.bcast_targets().count()
    });
    assert!(out.results.iter().all(|&c| c == 0));
}

#[test]
fn kcore_matches_oracle_across_policies() {
    let graph = Arc::new(erdos_renyi(500, 2500, 211).symmetrize());
    for k_threshold in [2u64, 4, 8] {
        let expect = cusp_dgalois::kcore_ref(&graph, k_threshold);
        for kind in [PolicyKind::Eec, PolicyKind::Hvc, PolicyKind::Svc] {
            let got = run_distributed_u64(&graph, 4, kind, |c, pool, dg, plan| {
                cusp_dgalois::kcore(c, pool, dg, plan, k_threshold)
            });
            assert_eq!(got, expect, "kcore({k_threshold}) mismatch under {kind}");
        }
    }
}

#[test]
fn pagerank_respects_iteration_cap_and_tolerance() {
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(400, 8.0, 301)));
    // Hard cap: exactly 3 rounds when tolerance is unreachable.
    let g = Arc::clone(&graph);
    let capped = Cluster::run(2, move |comm| {
        let p = partition_with_policy(
            comm,
            GraphSource::Memory(g.clone()),
            PolicyKind::Eec,
            &CuspConfig::default(),
        );
        let pool = ThreadPool::new(1);
        let plan = SyncPlan::build(comm, &p.dist_graph);
        pagerank(
            comm,
            &pool,
            &p.dist_graph,
            &plan,
            PageRankConfig {
                damping: 0.85,
                tolerance: 0.0,
                max_iterations: 3,
            },
        )
        .rounds
    });
    assert!(capped.results.iter().all(|&r| r == 3));

    // Loose tolerance: converges well before a generous cap.
    let g = Arc::clone(&graph);
    let loose = Cluster::run(2, move |comm| {
        let p = partition_with_policy(
            comm,
            GraphSource::Memory(g.clone()),
            PolicyKind::Eec,
            &CuspConfig::default(),
        );
        let pool = ThreadPool::new(1);
        let plan = SyncPlan::build(comm, &p.dist_graph);
        pagerank(
            comm,
            &pool,
            &p.dist_graph,
            &plan,
            PageRankConfig {
                damping: 0.85,
                tolerance: 1e-2,
                max_iterations: 500,
            },
        )
        .rounds
    });
    assert!(loose.results.iter().all(|&r| r < 50), "{:?}", loose.results);
}

#[test]
fn sssp_weighted_equals_hash_weight_sssp() {
    // Storing hash weights in the partition must give the same answer as
    // computing them on the fly.
    let graph = Arc::new(erdos_renyi(300, 2400, 307));
    let weights: Arc<Vec<u32>> = Arc::new(
        graph
            .iter_edges()
            .map(|(u, v)| cusp_dgalois::edge_weight(u, v) as u32)
            .collect(),
    );
    let source = graph.max_out_degree_node().unwrap();
    let on_the_fly = run_distributed_u64(&graph, 3, PolicyKind::Cvc, |c, pool, dg, plan| {
        sssp(c, pool, dg, plan, source)
    });
    let g = Arc::clone(&graph);
    let w = Arc::clone(&weights);
    let stored = Cluster::run(3, move |comm| {
        let p = partition_with_policy(
            comm,
            GraphSource::MemoryWeighted(g.clone(), w.clone()),
            PolicyKind::Cvc,
            &CuspConfig::default(),
        );
        let pool = ThreadPool::new(2);
        let plan = SyncPlan::build(comm, &p.dist_graph);
        cusp_dgalois::sssp_weighted(comm, &pool, &p.dist_graph, &plan, source).master_values
    });
    let mut stored_vals = vec![u64::MAX; graph.num_nodes()];
    for host in stored.results {
        for (gid, v) in host {
            stored_vals[gid as usize] = v;
        }
    }
    assert_eq!(stored_vals, on_the_fly);
}

#[test]
fn core_decomposition_matches_oracle() {
    let graph = Arc::new(erdos_renyi(300, 2400, 401).symmetrize());
    let expect = cusp_dgalois::kcore::core_numbers_ref(&graph, 64);
    let g = Arc::clone(&graph);
    let out = Cluster::run(4, move |comm| {
        let p = partition_with_policy(
            comm,
            GraphSource::Memory(g.clone()),
            PolicyKind::Cvc,
            &CuspConfig::default(),
        );
        let pool = ThreadPool::new(1);
        let plan = SyncPlan::build(comm, &p.dist_graph);
        cusp_dgalois::kcore::core_numbers(comm, &pool, &p.dist_graph, &plan)
    });
    let mut got = vec![u64::MAX; graph.num_nodes()];
    for host in out.results {
        for (gid, c) in host {
            got[gid as usize] = c;
        }
    }
    assert_eq!(got, expect);
}
