//! End-to-end tracing smoke: a traced 4-host partition must export a
//! Chrome trace that passes the structural validator (the same check CI's
//! trace-smoke job runs via `cusp-part trace-check`) and fold into a
//! complete per-phase critical-path summary.

use std::sync::Arc;

use cusp::{partition_with_policy, CuspConfig, GraphSource, PhaseTimes, PolicyKind};
use cusp_graph::gen::uniform::erdos_renyi;
use cusp_net::{Cluster, ClusterOptions, NetworkModel, TraceConfig};

const HOSTS: usize = 4;

#[test]
fn traced_partition_exports_valid_chrome_trace() {
    let graph = Arc::new(erdos_renyi(400, 3200, 5));
    let opts = ClusterOptions {
        trace: Some(TraceConfig::default()),
        ..ClusterOptions::default()
    };
    let out = Cluster::run_with(HOSTS, opts, move |comm| {
        let cfg = CuspConfig::default();
        partition_with_policy(comm, GraphSource::Memory(graph.clone()), PolicyKind::Cvc, &cfg)
    });
    let trace = out.trace.expect("trace requested");
    assert_eq!(trace.dropped_events, 0);

    // Export → validate: the validator enforces ph/ts/pid/tid on every
    // event, per-thread timestamp monotonicity, balanced B/E spans, and
    // paired flow arrows.
    let json = cusp_obs::export_chrome_trace(&trace);
    let check = cusp_obs::validate_trace_json(&json)
        .unwrap_or_else(|e| panic!("exported trace failed validation: {e}"));
    assert_eq!(check.processes, HOSTS);
    assert!(check.span_events > 0);
    assert!(check.flow_pairs > 0, "CVC construction should produce flows");

    // The critical-path fold covers every pipeline phase on every host.
    let model = NetworkModel::omni_path();
    let rows = cusp::phase_summary(&trace, &out.stats, &model);
    let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, PhaseTimes::NAMES);
    assert!(rows.iter().all(|r| r.hosts.len() == HOSTS));
}

#[test]
fn untraced_partition_carries_no_trace() {
    let graph = Arc::new(erdos_renyi(150, 900, 3));
    let out = Cluster::run(2, move |comm| {
        let cfg = CuspConfig::default();
        partition_with_policy(comm, GraphSource::Memory(graph.clone()), PolicyKind::Hvc, &cfg)
    });
    assert!(out.trace.is_none());
}
