//! Opt-in stress tests (run with `cargo test --release -- --ignored`):
//! larger graphs, more hosts, and longer pipelines than the default suite.

use std::sync::Arc;

use cusp::{metrics, partition_with_policy, CuspConfig, GraphSource, PolicyKind};
use cusp_dgalois::{bfs, reference, SyncPlan};
use cusp_galois::ThreadPool;
use cusp_graph::gen::{kronecker, powerlaw, KroneckerConfig, PowerLawConfig};
use cusp_net::Cluster;

#[test]
#[ignore = "stress: ~1M-edge graphs on 16 hosts; run with --ignored"]
fn million_edge_kronecker_all_policies() {
    let graph = Arc::new(kronecker(KroneckerConfig::graph500(16, 16, 1)));
    for kind in cusp::policies::ALL_POLICIES {
        let g = Arc::clone(&graph);
        let out = Cluster::run(16, move |comm| {
            partition_with_policy(
                comm,
                GraphSource::Memory(g.clone()),
                kind,
                &CuspConfig::default(),
            )
            .dist_graph
        });
        metrics::validate_partitioning(&graph, &out.results)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
#[ignore = "stress: bfs oracle check on a 2M-edge crawl; run with --ignored"]
fn large_crawl_bfs_oracle() {
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(60_000, 34.0, 2)));
    let source = graph.max_out_degree_node().unwrap();
    let expect = reference::bfs_ref(&graph, source);
    let g = Arc::clone(&graph);
    let out = Cluster::run(16, move |comm| {
        let p = partition_with_policy(
            comm,
            GraphSource::Memory(g.clone()),
            PolicyKind::Cvc,
            &CuspConfig::default(),
        );
        let pool = ThreadPool::new(2);
        let plan = SyncPlan::build(comm, &p.dist_graph);
        bfs(comm, &pool, &p.dist_graph, &plan, source).master_values
    });
    let mut got = vec![u64::MAX; graph.num_nodes()];
    for host in out.results {
        for (gid, v) in host {
            got[gid as usize] = v;
        }
    }
    assert_eq!(got, expect);
}

#[test]
#[ignore = "stress: 500 sequential small pipelines (leak/fd soak); run with --ignored"]
fn pipeline_soak() {
    let graph = Arc::new(cusp_graph::gen::uniform::erdos_renyi(200, 1600, 3));
    for i in 0..500 {
        let kind = cusp::policies::ALL_POLICIES[i % 6];
        let g = Arc::clone(&graph);
        let out = Cluster::run(4, move |comm| {
            partition_with_policy(
                comm,
                GraphSource::Memory(g.clone()),
                kind,
                &CuspConfig::default(),
            )
            .dist_graph
            .num_local_edges()
        });
        assert_eq!(out.results.iter().sum::<u64>(), 1600);
    }
}
