//! Integration tests: the full five-phase CuSP pipeline across policies,
//! host counts, graph shapes, and configurations.

use std::sync::Arc;

use cusp::{
    metrics, partition_with_policy, CuspConfig, DistGraph, GraphSource, OutputFormat, PolicyKind,
};
use cusp_graph::gen::{kronecker, powerlaw, KroneckerConfig, PowerLawConfig};
use cusp_graph::gen::uniform::erdos_renyi;
use cusp_graph::Csr;
use cusp_net::Cluster;

fn partition_all(graph: &Arc<Csr>, k: usize, kind: PolicyKind, cfg: CuspConfig) -> Vec<DistGraph> {
    let g = Arc::clone(graph);
    let out = Cluster::run(k, move |comm| {
        partition_with_policy(comm, GraphSource::Memory(g.clone()), kind, &cfg)
    });
    out.results.into_iter().map(|r| r.dist_graph).collect()
}

fn check(graph: &Arc<Csr>, k: usize, kind: PolicyKind, cfg: CuspConfig) -> Vec<DistGraph> {
    let parts = partition_all(graph, k, kind, cfg);
    metrics::validate_partitioning(graph, &parts)
        .unwrap_or_else(|e| panic!("{kind} on {k} hosts invalid: {e}"));
    parts
}

#[test]
fn every_policy_produces_valid_partitions() {
    let graph = Arc::new(erdos_renyi(500, 5000, 7));
    for kind in [
        PolicyKind::Eec,
        PolicyKind::Hvc,
        PolicyKind::Cvc,
        PolicyKind::Fec,
        PolicyKind::Gvc,
        PolicyKind::Svc,
        PolicyKind::Cec,
        PolicyKind::Fnc,
        PolicyKind::Hdrf,
        PolicyKind::Ldg,
        PolicyKind::Bvc,
        PolicyKind::Jvc,
    ] {
        check(&graph, 4, kind, CuspConfig::default());
    }
}

#[test]
fn policies_valid_across_host_counts() {
    let graph = Arc::new(erdos_renyi(300, 3000, 11));
    for k in [1, 2, 3, 5, 8] {
        for kind in [PolicyKind::Eec, PolicyKind::Cvc, PolicyKind::Svc, PolicyKind::Hvc] {
            check(&graph, k, kind, CuspConfig::default());
        }
    }
}

#[test]
fn powerlaw_graph_partitions_validly() {
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(2000, 15.0, 3)));
    for kind in cusp::policies::ALL_POLICIES {
        check(&graph, 4, kind, CuspConfig::default());
    }
}

#[test]
fn kronecker_graph_partitions_validly() {
    let graph = Arc::new(kronecker(KroneckerConfig::graph500(10, 8, 5)));
    for kind in [PolicyKind::Eec, PolicyKind::Hvc, PolicyKind::Cvc, PolicyKind::Svc] {
        check(&graph, 4, kind, CuspConfig::default());
    }
}

#[test]
fn eec_exchanges_no_edges() {
    // EEC builds each partition from what the host read (paper §V-A).
    let graph = Arc::new(erdos_renyi(400, 6000, 13));
    let g = Arc::clone(&graph);
    let out = Cluster::run(4, move |comm| {
        partition_with_policy(comm, GraphSource::Memory(g.clone()), PolicyKind::Eec, &CuspConfig::default())
    });
    let construct = out.stats.phase("construct").unwrap();
    assert_eq!(construct.total_bytes(), 0, "EEC must not move edges");
    // Master phase of a pure rule is also silent.
    assert_eq!(out.stats.phase("master").unwrap().total_bytes(), 0);
}

#[test]
fn cvc_has_block_structure() {
    // Every edge lives on the host in the (src-master grid row, dst-master
    // grid column class) block — paper Fig. 1c.
    let graph = Arc::new(erdos_renyi(400, 5000, 17));
    let parts = check(&graph, 4, PolicyKind::Cvc, CuspConfig::default());
    // Recover each node's master partition.
    let mut master_of = vec![0u32; 400];
    for p in &parts {
        for &g in p.master_globals() {
            master_of[g as usize] = p.part_id;
        }
    }
    let p_c = 2; // 4 hosts → 2×2 grid
    for part in &parts {
        for (lu, lv) in part.graph.iter_edges() {
            let sm = master_of[part.global_of(lu) as usize];
            let dm = master_of[part.global_of(lv) as usize];
            let expect = (sm / p_c) * p_c + dm % p_c;
            assert_eq!(part.part_id, expect, "edge misplaced under CVC");
        }
    }
}

#[test]
fn hvc_respects_degree_threshold() {
    // With a tiny threshold, a hub's edges scatter to destination masters.
    let mut edges = Vec::new();
    for d in 1..100u32 {
        edges.push((0u32, d));
    }
    for i in 1..50u32 {
        edges.push((i, i + 1));
    }
    let graph = Arc::new(Csr::from_edges(100, &edges));
    let g = Arc::clone(&graph);
    let out = Cluster::run(4, move |comm| {
        let cfg = CuspConfig::default();
        cusp::partition(
            comm,
            GraphSource::Memory(g.clone()),
            &cfg,
            cusp::PartitionClass::GeneralVertexCut,
            |s| {
                (
                    cusp::policies::ContiguousEB::new(s),
                    cusp::policies::HybridEdge { degree_threshold: 10 },
                )
            },
        )
    });
    let parts: Vec<DistGraph> = out.results.into_iter().map(|r| r.dist_graph).collect();
    metrics::validate_partitioning(&graph, &parts).unwrap();
    // Node 0 (degree 99 > 10) must have its out-edges spread over several
    // partitions — the defining property of a vertex-cut on hubs.
    let hub_partitions = parts
        .iter()
        .filter(|p| {
            p.local_of(0)
                .map(|l| p.graph.out_degree(l) > 0)
                .unwrap_or(false)
        })
        .count();
    assert!(hub_partitions > 1, "hub edges not scattered: {hub_partitions}");
}

#[test]
fn csc_output_is_transpose_of_csr_output() {
    let graph = Arc::new(erdos_renyi(200, 2000, 23));
    let csr_parts = partition_all(&graph, 3, PolicyKind::Cvc, CuspConfig::default());
    let csc_parts = partition_all(
        &graph,
        3,
        PolicyKind::Cvc,
        CuspConfig {
            output: OutputFormat::Csc,
            ..CuspConfig::default()
        },
    );
    for (a, b) in csr_parts.iter().zip(&csc_parts) {
        assert_eq!(a.graph.transpose(), b.graph);
        assert_eq!(a.local2global, b.local2global);
    }
}

#[test]
fn single_host_partition_is_whole_graph() {
    let graph = Arc::new(erdos_renyi(100, 900, 29));
    let parts = check(&graph, 1, PolicyKind::Svc, CuspConfig::default());
    assert_eq!(parts[0].num_masters, 100);
    assert_eq!(parts[0].num_mirrors(), 0);
    assert_eq!(parts[0].num_local_edges(), 900);
}

#[test]
fn empty_and_tiny_graphs() {
    let empty = Arc::new(Csr::from_edges(0, &[]));
    check(&empty, 2, PolicyKind::Eec, CuspConfig::default());
    let single = Arc::new(Csr::from_edges(1, &[(0, 0)]));
    check(&single, 2, PolicyKind::Cvc, CuspConfig::default());
    let isolated = Arc::new(Csr::from_edges(10, &[(3, 7)]));
    for kind in [PolicyKind::Eec, PolicyKind::Hvc, PolicyKind::Svc] {
        check(&isolated, 4, kind, CuspConfig::default());
    }
}

#[test]
fn more_hosts_than_nodes() {
    let graph = Arc::new(erdos_renyi(3, 9, 31));
    for kind in [PolicyKind::Eec, PolicyKind::Cvc] {
        check(&graph, 6, kind, CuspConfig::default());
    }
}

#[test]
fn stateless_policies_are_deterministic() {
    let graph = Arc::new(erdos_renyi(300, 4000, 37));
    for kind in [PolicyKind::Eec, PolicyKind::Hvc, PolicyKind::Cvc] {
        let a = partition_all(&graph, 4, kind, CuspConfig::default());
        let b = partition_all(&graph, 4, kind, CuspConfig::default());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.local2global, y.local2global, "{kind} nondeterministic");
            assert_eq!(x.graph, y.graph, "{kind} nondeterministic");
            assert_eq!(x.master_of, y.master_of);
        }
    }
}

#[test]
fn sync_round_counts_all_produce_valid_partitions() {
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(1000, 10.0, 41)));
    for rounds in [1u32, 2, 10, 100] {
        let cfg = CuspConfig {
            sync_rounds: rounds,
            ..CuspConfig::default()
        };
        check(&graph, 4, PolicyKind::Svc, cfg);
    }
}

#[test]
fn buffer_thresholds_all_produce_valid_partitions() {
    let graph = Arc::new(erdos_renyi(400, 6000, 43));
    for threshold in [0usize, 64, 4096, 1 << 20] {
        let cfg = CuspConfig {
            buffer_threshold: threshold,
            ..CuspConfig::default()
        };
        check(&graph, 4, PolicyKind::Cvc, cfg);
    }
}

#[test]
fn node_weighted_reading_split_still_valid() {
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(800, 12.0, 47)));
    let cfg = CuspConfig {
        node_read_weight: 1,
        edge_read_weight: 1,
        ..CuspConfig::default()
    };
    for kind in [PolicyKind::Eec, PolicyKind::Hvc, PolicyKind::Svc] {
        check(&graph, 4, kind, cfg.clone());
    }
}

#[test]
fn file_source_round_trips_through_disk() {
    let graph = Arc::new(erdos_renyi(250, 3000, 53));
    let mut path = std::env::temp_dir();
    path.push(format!("cusp-int-test-{}.bgr", std::process::id()));
    cusp_graph::write_bgr(&path, &graph).unwrap();
    let p = path.clone();
    let out = Cluster::run(4, move |comm| {
        partition_with_policy(
            comm,
            GraphSource::File(p.clone()),
            PolicyKind::Cvc,
            &CuspConfig::default(),
        )
    });
    let parts: Vec<DistGraph> = out.results.into_iter().map(|r| r.dist_graph).collect();
    metrics::validate_partitioning(&graph, &parts).unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn replication_factor_is_sane() {
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(2000, 20.0, 59)));
    let parts = check(&graph, 8, PolicyKind::Eec, CuspConfig::default());
    let q = metrics::quality(&parts);
    // Replication factor is at least 1 (every node has a master) and at
    // most k (a proxy on every host).
    assert!(q.replication_factor >= 1.0);
    assert!(q.replication_factor <= 8.0);
    // EEC masters are edge-balanced chunks; node balance can be loose but
    // edge distribution should be tight.
    assert!(q.edge_balance < 1.6, "edge balance {}", q.edge_balance);
}
