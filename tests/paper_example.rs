//! The paper's Figure 1 worked example: a 10-vertex graph (A–J) divided
//! among four hosts under (b) Edge-balanced Edge-Cut and (c) Cartesian
//! Vertex-Cut, illustrating master/mirror placement and the 2D block
//! structure.
//!
//! The figure's exact edge set is not recoverable from the paper text, so
//! this test fixes a concrete 10-vertex graph and verifies the *defining
//! properties* the figure illustrates, by hand, against the real
//! pipeline:
//!
//! * EEC: each host's partition holds exactly the out-edges of its
//!   contiguous master block; every non-master proxy is a destination
//!   mirror;
//! * CVC: with 4 partitions the grid is 2×2, rows blocked and columns
//!   cyclic — the edge (s, d) lives in block (row(master(s)),
//!   col(master(d))) exactly as Fig. 1c draws it.

use std::sync::Arc;

use cusp::{metrics, partition_with_policy, CuspConfig, DistGraph, GraphSource, PolicyKind};
use cusp_graph::Csr;
use cusp_net::Cluster;

/// Vertices A..J = 0..9; a small web of edges exercising every host pair.
fn figure1_graph() -> Csr {
    const A: u32 = 0;
    const B: u32 = 1;
    const C: u32 = 2;
    const D: u32 = 3;
    const E: u32 = 4;
    const F: u32 = 5;
    const G: u32 = 6;
    const H: u32 = 7;
    const I: u32 = 8;
    const J: u32 = 9;
    Csr::from_edges(
        10,
        &[
            (A, B),
            (A, E),
            (B, F),
            (B, C),
            (C, G),
            (C, D),
            (D, H),
            (E, F),
            (E, I),
            (F, G),
            (F, I),
            (G, J),
            (G, H),
            (H, D),
            (I, J),
            (J, G),
        ],
    )
}

fn run(kind: PolicyKind) -> (Arc<Csr>, Vec<DistGraph>) {
    let graph = Arc::new(figure1_graph());
    let g = Arc::clone(&graph);
    let out = Cluster::run(4, move |comm| {
        partition_with_policy(
            comm,
            GraphSource::Memory(g.clone()),
            kind,
            &CuspConfig {
                threads_per_host: 1,
                ..CuspConfig::default()
            },
        )
        .dist_graph
    });
    (graph, out.results)
}

fn master_map(parts: &[DistGraph]) -> Vec<u32> {
    let mut m = vec![u32::MAX; 10];
    for p in parts {
        for &g in p.master_globals() {
            m[g as usize] = p.part_id;
        }
    }
    m
}

#[test]
fn figure_1b_eec_structure() {
    let (graph, parts) = run(PolicyKind::Eec);
    metrics::validate_partitioning(&graph, &parts).unwrap();
    let masters = master_map(&parts);

    // Masters form contiguous, ordered blocks (the EB blocking of Fig. 1b).
    for w in masters.windows(2) {
        assert!(w[0] <= w[1], "EEC masters must be contiguous blocks: {masters:?}");
    }

    for p in &parts {
        // Every out-edge of a vertex lives with its master…
        for (lu, _lv) in p.graph.iter_edges() {
            assert_eq!(masters[p.global_of(lu) as usize], p.part_id);
        }
        // …and therefore every non-master proxy (mirror) has no out-edges:
        // it exists purely as a destination endpoint, exactly as the
        // dashed mirror circles in Fig. 1b.
        for l in p.num_masters as u32..p.num_local() as u32 {
            assert_eq!(p.graph.out_degree(l), 0);
            assert!(
                p.graph.iter_edges().any(|(_, lv)| lv == l),
                "mirror {} exists without an incident edge",
                p.global_of(l)
            );
        }
    }
}

#[test]
fn figure_1c_cvc_structure() {
    let (graph, parts) = run(PolicyKind::Cvc);
    metrics::validate_partitioning(&graph, &parts).unwrap();
    let masters = master_map(&parts);

    // 4 partitions → 2×2 grid; Fig. 1c: rows blocked, columns cyclic.
    let p_c = 2;
    for p in &parts {
        for (lu, lv) in p.graph.iter_edges() {
            let sm = masters[p.global_of(lu) as usize];
            let dm = masters[p.global_of(lv) as usize];
            let expected = (sm / p_c) * p_c + dm % p_c;
            assert_eq!(
                p.part_id, expected,
                "edge ({}, {}) in wrong block",
                p.global_of(lu),
                p.global_of(lv)
            );
        }
    }

    // Every partition's communication partners during construction are
    // restricted to its grid row (the property CVC is designed for).
    let g = Arc::new(figure1_graph());
    let out = Cluster::run(4, move |comm| {
        let _ = partition_with_policy(
            comm,
            GraphSource::Memory(g.clone()),
            PolicyKind::Cvc,
            &CuspConfig::default(),
        );
    });
    let construct = out.stats.phase("construct").unwrap();
    for src in 0..4usize {
        for dst in 0..4usize {
            if construct.bytes_between(src, dst) > 0 {
                assert_eq!(
                    src / 2,
                    dst / 2,
                    "CVC construction traffic must stay within a grid row"
                );
            }
        }
    }
}

#[test]
fn every_policy_agrees_on_the_example() {
    // All policies are valid on the worked example, including the
    // stateful ones at single-thread determinism settings.
    for kind in [
        PolicyKind::Eec,
        PolicyKind::Hvc,
        PolicyKind::Cvc,
        PolicyKind::Fec,
        PolicyKind::Gvc,
        PolicyKind::Svc,
        PolicyKind::Hdrf,
    ] {
        let (graph, parts) = run(kind);
        metrics::validate_partitioning(&graph, &parts)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        // 16 edges total, one master each for A..J.
        let total: u64 = parts.iter().map(|p| p.num_local_edges()).sum();
        assert_eq!(total, 16);
        let masters: usize = parts.iter().map(|p| p.num_masters).sum();
        assert_eq!(masters, 10);
    }
}
