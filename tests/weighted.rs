//! Integration tests for per-edge data (the `.gr` format's `sizeofEdgeTy`):
//! weights must follow their edges through reading, assignment,
//! construction, CSC transposition, persistence, and analytics.

use std::sync::Arc;

use cusp::{
    metrics, partition_with_policy, CuspConfig, GraphSource, OutputFormat, PolicyKind,
};
use cusp_dgalois::{reference, sssp_weighted, SyncPlan};
use cusp_galois::ThreadPool;
use cusp_graph::gen::uniform::erdos_renyi;
use cusp_graph::{read_bgr_weighted, write_bgr_weighted, Csr};
use cusp_net::Cluster;

/// Deterministic weights matching `cusp_dgalois::edge_weight`, in CSR edge
/// order, so the unweighted sssp oracle applies to the stored weights.
fn hash_weights(g: &Csr) -> Vec<u32> {
    g.iter_edges()
        .map(|(u, v)| cusp_dgalois::edge_weight(u, v) as u32)
        .collect()
}

fn partition_weighted(
    graph: &Arc<Csr>,
    weights: &Arc<Vec<u32>>,
    k: usize,
    kind: PolicyKind,
    cfg: CuspConfig,
) -> Vec<cusp::DistGraph> {
    let g = Arc::clone(graph);
    let w = Arc::clone(weights);
    let out = Cluster::run(k, move |comm| {
        partition_with_policy(
            comm,
            GraphSource::MemoryWeighted(g.clone(), w.clone()),
            kind,
            &cfg,
        )
        .dist_graph
    });
    out.results
}

#[test]
fn weights_follow_edges_across_policies() {
    let graph = Arc::new(erdos_renyi(400, 4000, 83));
    let weights = Arc::new(hash_weights(&graph));
    for kind in [
        PolicyKind::Eec,
        PolicyKind::Hvc,
        PolicyKind::Cvc,
        PolicyKind::Svc,
        PolicyKind::Hdrf,
    ] {
        let parts = partition_weighted(&graph, &weights, 4, kind, CuspConfig::default());
        metrics::validate_partitioning_weighted(&graph, &weights, &parts)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn weighted_file_round_trip_and_partition() {
    let graph = Arc::new(erdos_renyi(300, 2500, 89));
    let weights = hash_weights(&graph);
    let mut path = std::env::temp_dir();
    path.push(format!("cusp-weighted-{}.bgr", std::process::id()));
    write_bgr_weighted(&path, &graph, &weights).unwrap();
    let (back, wback) = read_bgr_weighted(&path).unwrap();
    assert_eq!(back, *graph);
    assert_eq!(wback, weights);

    let p = path.clone();
    let out = Cluster::run(3, move |comm| {
        partition_with_policy(
            comm,
            GraphSource::File(p.clone()),
            PolicyKind::Cvc,
            &CuspConfig::default(),
        )
        .dist_graph
    });
    metrics::validate_partitioning_weighted(&graph, &weights, &out.results).unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn csc_output_permutes_weights_correctly() {
    let graph = Arc::new(erdos_renyi(200, 1500, 97));
    let weights = Arc::new(hash_weights(&graph));
    let csr_parts = partition_weighted(&graph, &weights, 3, PolicyKind::Cvc, CuspConfig::default());
    let csc_parts = partition_weighted(
        &graph,
        &weights,
        3,
        PolicyKind::Cvc,
        CuspConfig {
            output: OutputFormat::Csc,
            ..CuspConfig::default()
        },
    );
    for (a, b) in csr_parts.iter().zip(&csc_parts) {
        // The CSC output is the transpose of the CSR output with weights
        // carried along.
        let (t, tw) = a
            .graph
            .transpose_with_data(a.edge_data.as_ref().unwrap());
        assert_eq!(t, b.graph);
        assert_eq!(&tw, b.edge_data.as_ref().unwrap());
    }
}

#[test]
fn sssp_over_stored_weights_matches_oracle() {
    let graph = Arc::new(erdos_renyi(350, 3000, 101));
    let weights = Arc::new(hash_weights(&graph));
    let source = graph.max_out_degree_node().unwrap();
    let expect = reference::sssp_ref(&graph, source);
    for kind in [PolicyKind::Eec, PolicyKind::Hvc, PolicyKind::Svc] {
        let g = Arc::clone(&graph);
        let w = Arc::clone(&weights);
        let out = Cluster::run(4, move |comm| {
            let p = partition_with_policy(
                comm,
                GraphSource::MemoryWeighted(g.clone(), w.clone()),
                kind,
                &CuspConfig::default(),
            );
            let pool = ThreadPool::new(2);
            let plan = SyncPlan::build(comm, &p.dist_graph);
            sssp_weighted(comm, &pool, &p.dist_graph, &plan, source).master_values
        });
        let mut got = vec![u64::MAX; graph.num_nodes()];
        for host in out.results {
            for (gid, v) in host {
                got[gid as usize] = v;
            }
        }
        assert_eq!(got, expect, "weighted sssp mismatch under {kind}");
    }
}

#[test]
fn weighted_partition_persists() {
    let graph = Arc::new(erdos_renyi(150, 1200, 103));
    let weights = Arc::new(hash_weights(&graph));
    let parts = partition_weighted(&graph, &weights, 2, PolicyKind::Hvc, CuspConfig::default());
    let dir = std::env::temp_dir();
    for p in &parts {
        let path = dir.join(format!("cusp-wpart-{}-{}.part", std::process::id(), p.part_id));
        cusp::write_partition(&path, p).unwrap();
        let back = cusp::read_partition(&path).unwrap();
        assert_eq!(back.edge_data, p.edge_data);
        assert_eq!(back.graph, p.graph);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn validator_detects_corrupted_weights() {
    let graph = Arc::new(erdos_renyi(100, 800, 107));
    let weights = Arc::new(hash_weights(&graph));
    let mut parts = partition_weighted(&graph, &weights, 2, PolicyKind::Eec, CuspConfig::default());
    // Corrupt one weight.
    if let Some(data) = &mut parts[0].edge_data {
        if let Some(x) = data.first_mut() {
            *x = x.wrapping_add(1);
        }
    }
    let err = metrics::validate_partitioning_weighted(&graph, &weights, &parts).unwrap_err();
    assert!(err.contains("duplicated or altered"), "{err}");
}
