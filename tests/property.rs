//! Property-based tests (proptest): structural invariants of the full
//! partitioning pipeline and its building blocks under randomized inputs.

use std::sync::Arc;

use proptest::prelude::*;

use cusp::{metrics, partition_with_policy, CuspConfig, GraphSource, PolicyKind};
use cusp_graph::{reading_split, Csr, Node};
use cusp_net::Cluster;

/// Strategy: a random directed graph as (n, edge list), possibly with
/// self-loops, parallel edges, isolated vertices, and empty graphs.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(Node, Node)>)> {
    (1usize..120).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as Node, 0..n as Node),
            0..(n * 8).min(600),
        );
        (Just(n), edges)
    })
}

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Eec),
        Just(PolicyKind::Hvc),
        Just(PolicyKind::Cvc),
        Just(PolicyKind::Fec),
        Just(PolicyKind::Gvc),
        Just(PolicyKind::Svc),
        Just(PolicyKind::Cec),
        Just(PolicyKind::Hdrf),
        Just(PolicyKind::Ldg),
        Just(PolicyKind::Bvc),
        Just(PolicyKind::Jvc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Any policy on any random graph at any host count produces a valid
    /// partitioning (every edge exactly once, one master per vertex,
    /// consistent mirror bookkeeping).
    #[test]
    fn pipeline_always_produces_valid_partitions(
        (n, edges) in arb_graph(),
        kind in arb_policy(),
        hosts in 1usize..6,
    ) {
        let graph = Arc::new(Csr::from_edges(n, &edges));
        let g = Arc::clone(&graph);
        let out = Cluster::run(hosts, move |comm| {
            partition_with_policy(
                comm,
                GraphSource::Memory(g.clone()),
                kind,
                &CuspConfig { threads_per_host: 1, ..CuspConfig::default() },
            )
            .dist_graph
        });
        let parts = out.results;
        prop_assert!(metrics::validate_partitioning(&graph, &parts).is_ok());
        // Replication factor bounds.
        let q = metrics::quality(&parts);
        prop_assert!(q.replication_factor >= 1.0 - 1e-9);
        prop_assert!(q.replication_factor <= hosts as f64 + 1e-9);
    }

    /// The reading split covers all nodes with contiguous, ordered ranges
    /// for arbitrary degree sequences and weights.
    #[test]
    fn reading_split_is_a_partition_of_nodes(
        degrees in proptest::collection::vec(0u64..50, 0..300),
        k in 1usize..12,
        node_w in 0u64..3,
        edge_w in 0u64..3,
    ) {
        prop_assume!(node_w + edge_w > 0);
        let mut ends = Vec::with_capacity(degrees.len());
        let mut acc = 0u64;
        for d in &degrees {
            acc += d;
            ends.push(acc);
        }
        let splits = reading_split(&ends, k, node_w, edge_w);
        prop_assert_eq!(splits.len(), k);
        prop_assert_eq!(splits[0].lo, 0);
        prop_assert_eq!(splits.last().unwrap().hi, degrees.len() as u64);
        for w in splits.windows(2) {
            prop_assert_eq!(w[0].hi, w[1].lo);
        }
    }

    /// CSR transpose is an involution on the edge multiset.
    #[test]
    fn transpose_is_involution((n, edges) in arb_graph()) {
        let g = Csr::from_edges(n, &edges);
        let tt = g.transpose().transpose();
        let mut a: Vec<_> = g.iter_edges().collect();
        let mut b: Vec<_> = tt.iter_edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Symmetrize produces a symmetric, loop-free graph containing every
    /// original non-loop edge.
    #[test]
    fn symmetrize_properties((n, edges) in arb_graph()) {
        let g = Csr::from_edges(n, &edges);
        let s = g.symmetrize();
        for (u, v) in s.iter_edges() {
            prop_assert_ne!(u, v, "self-loop survived");
            prop_assert!(s.edges(v).contains(&u), "missing reverse edge");
        }
        for (u, v) in g.iter_edges() {
            if u != v {
                prop_assert!(s.edges(u).contains(&v), "original edge lost");
            }
        }
    }

    /// The wire codec round-trips arbitrary payload structures.
    #[test]
    fn wire_codec_round_trips(
        u8s in proptest::collection::vec(any::<u8>(), 0..20),
        u32s in proptest::collection::vec(any::<u32>(), 0..50),
        u64s in proptest::collection::vec(any::<u64>(), 0..50),
        f in any::<f64>(),
    ) {
        let mut w = cusp_net::WireWriter::new();
        for &b in &u8s {
            w.put_u8(b);
        }
        w.put_u32_slice(&u32s);
        w.put_u64_slice(&u64s);
        w.put_f64(f);
        let mut r = cusp_net::WireReader::new(w.finish());
        for &b in &u8s {
            prop_assert_eq!(r.get_u8().unwrap(), b);
        }
        prop_assert_eq!(r.get_u32_vec().unwrap(), u32s);
        prop_assert_eq!(r.get_u64_vec().unwrap(), u64s);
        let back = r.get_f64().unwrap();
        prop_assert!(back == f || (back.is_nan() && f.is_nan()));
        prop_assert!(r.is_exhausted());
    }

    /// Parallel prefix sum equals the sequential scan for any input.
    #[test]
    fn prefix_sum_matches_sequential(
        input in proptest::collection::vec(0u64..1000, 0..5000),
        threads in 1usize..5,
    ) {
        let pool = cusp_galois::ThreadPool::new(threads);
        let mut out = vec![0u64; input.len()];
        let total = cusp_galois::exclusive_prefix_sum(&pool, &input, &mut out);
        let mut run = 0u64;
        for (i, &x) in input.iter().enumerate() {
            prop_assert_eq!(out[i], run);
            run += x;
        }
        prop_assert_eq!(total, run);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, // the distributed-app oracle check is heavier
        ..ProptestConfig::default()
    })]

    /// Distributed bfs equals the sequential oracle on random graphs under
    /// a random paper policy.
    #[test]
    fn distributed_bfs_matches_oracle(
        (n, edges) in arb_graph(),
        kind in arb_policy(),
        hosts in 1usize..5,
        source_pick in any::<prop::sample::Index>(),
    ) {
        let graph = Arc::new(Csr::from_edges(n, &edges));
        let source = source_pick.index(n) as Node;
        let expect = cusp_dgalois::reference::bfs_ref(&graph, source);
        let g = Arc::clone(&graph);
        let out = Cluster::run(hosts, move |comm| {
            let p = partition_with_policy(
                comm,
                GraphSource::Memory(g.clone()),
                kind,
                &CuspConfig { threads_per_host: 1, ..CuspConfig::default() },
            );
            let pool = cusp_galois::ThreadPool::new(1);
            let plan = cusp_dgalois::SyncPlan::build(comm, &p.dist_graph);
            cusp_dgalois::bfs(comm, &pool, &p.dist_graph, &plan, source).master_values
        });
        let mut got = vec![u64::MAX; n];
        for host in out.results {
            for (gid, v) in host {
                got[gid as usize] = v;
            }
        }
        prop_assert_eq!(got, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Edge data follows its edge through the full pipeline for random
    /// weighted graphs under random policies.
    #[test]
    fn weights_survive_partitioning(
        (n, edges) in arb_graph(),
        kind in arb_policy(),
        hosts in 1usize..5,
    ) {
        let graph = Arc::new(Csr::from_edges(n, &edges));
        let weights: Arc<Vec<u32>> = Arc::new(
            graph.iter_edges().enumerate().map(|(i, _)| i as u32 * 7 + 1).collect(),
        );
        let g = Arc::clone(&graph);
        let w = Arc::clone(&weights);
        let out = Cluster::run(hosts, move |comm| {
            cusp::partition_with_policy(
                comm,
                GraphSource::MemoryWeighted(g.clone(), w.clone()),
                kind,
                &CuspConfig { threads_per_host: 1, ..CuspConfig::default() },
            )
            .dist_graph
        });
        prop_assert!(
            cusp::metrics::validate_partitioning_weighted(&graph, &weights, &out.results).is_ok()
        );
    }

    /// CSC-oriented partitioning is a valid partitioning of the transpose
    /// for any policy and host count.
    #[test]
    fn csc_orientation_partitions_transpose(
        (n, edges) in arb_graph(),
        kind in arb_policy(),
        hosts in 1usize..5,
    ) {
        let graph = Arc::new(Csr::from_edges(n, &edges));
        let transposed = graph.transpose();
        let g = Arc::clone(&graph);
        let out = Cluster::run(hosts, move |comm| {
            cusp::partition_with_policy_oriented(
                comm,
                GraphSource::Memory(g.clone()),
                kind,
                cusp::Orientation::Csc,
                &CuspConfig { threads_per_host: 1, ..CuspConfig::default() },
            )
            .dist_graph
        });
        prop_assert!(metrics::validate_partitioning(&transposed, &out.results).is_ok());
    }

    /// transpose_with_data keeps every (src, dst, weight) triple.
    #[test]
    fn transpose_with_data_preserves_triples((n, edges) in arb_graph()) {
        let g = Csr::from_edges(n, &edges);
        let data: Vec<u32> = (0..g.num_edges() as u32).map(|i| i * 3 + 1).collect();
        let (t, td) = g.transpose_with_data(&data);
        let mut orig: Vec<(Node, Node, u32)> = g
            .iter_edges()
            .enumerate()
            .map(|(i, (u, v))| (u, v, data[i]))
            .collect();
        let mut back: Vec<(Node, Node, u32)> = t
            .iter_edges()
            .enumerate()
            .map(|(i, (v, u))| (u, v, td[i]))
            .collect();
        orig.sort_unstable();
        back.sort_unstable();
        prop_assert_eq!(orig, back);
    }
}
