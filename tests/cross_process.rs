//! Cross-process oracle battery: `cusp-part launch` forks real worker
//! processes, meshes them over loopback TCP, and compares the merged
//! partition against the in-process simulator. Each case asserts the
//! launcher's own end-to-end checks pass — per-pair byte/message
//! conservation joined *across* processes, and bit-identical
//! `partition_fingerprint` between the TCP run and the simulated run
//! under the determinism contract.
//!
//! These tests exercise the entire stack at once: CLI arg plumbing →
//! worker handshake protocol (listen line / PEERS line) → TcpTransport
//! mesh establishment → five-phase pipeline over real sockets → FIN
//! teardown → `.part` serialization → merge + fingerprint.

use std::path::PathBuf;
use std::process::Command;
use std::sync::OnceLock;

use cusp_graph::gen::uniform::erdos_renyi;
use cusp_graph::write_bgr;

/// The shared input graph, generated once per test binary run. Big enough
/// that every phase moves real traffic (multiple buffer flushes per
/// peer), small enough that a 4-process run plus its simulator oracle
/// finishes in seconds.
fn graph_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("cusp-xproc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create graph dir");
        let path = dir.join("input.bgr");
        let graph = erdos_renyi(1500, 12_000, 20260808);
        write_bgr(&path, &graph).expect("write input graph");
        path
    })
}

/// Runs `cusp-part launch` for one (policy, hosts) cell and asserts the
/// MATCH line and a zero exit. stdout/stderr are attached to the panic
/// message so a failing cell is diagnosable from the test log alone.
/// `tag` keeps out-dirs distinct between the crash-free and kill
/// matrices; `extra` appends launch flags (e.g. `--kill-seed`).
fn launch_with(policy: &str, hosts: usize, tag: &str, extra: &[String]) -> String {
    let out_dir = std::env::temp_dir().join(format!(
        "cusp-xproc-{}-{}-{}-{}",
        std::process::id(),
        tag,
        policy,
        hosts
    ));
    let output = Command::new(env!("CARGO_BIN_EXE_cusp-part"))
        .arg("launch")
        .arg("--hosts")
        .arg(hosts.to_string())
        .arg("--graph")
        .arg(graph_path())
        .arg("--policy")
        .arg(policy)
        .arg("--out-dir")
        .arg(&out_dir)
        .args(extra)
        // Short heartbeats so survivors notice a SIGKILLed or wedged peer
        // in CI time rather than after the default 10 s silence window.
        .env("CUSP_TCP_HEARTBEAT_MS", "50")
        .output()
        .expect("spawn cusp-part launch");
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "launch {policy} x{hosts} ({tag}) failed ({:?})\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        output.status
    );
    assert!(
        stdout.contains("cross-process conservation: ok"),
        "launch {policy} x{hosts} ({tag}): conservation line missing\n{stdout}"
    );
    let fp_line = stdout
        .lines()
        .find(|l| l.starts_with("fingerprint "))
        .unwrap_or_else(|| panic!("launch {policy} x{hosts} ({tag}): no fingerprint line\n{stdout}"));
    assert!(
        fp_line.ends_with("MATCH"),
        "launch {policy} x{hosts} ({tag}): TCP and simulator partitions diverge: {fp_line}"
    );
    // The workers really did write one partition per host.
    for h in 0..hosts {
        let part = out_dir.join(format!("part-{h:04}.part"));
        assert!(part.is_file(), "worker {h} left no partition at {}", part.display());
    }
    stdout
}

fn launch(policy: &str, hosts: usize) {
    launch_with(policy, hosts, "plain", &[]);
}

/// One kill-matrix cell: run under `--kill-seed` (chaos supervision) and
/// assert the recovered run still fingerprints identically to the
/// crash-free simulator. The seed fully determines victim/phase/mode, so
/// each cell's comment records what its seed decides. `checkpoint` also
/// hands workers a `--checkpoint-dir`, so the respawned victim resumes
/// from its last phase checkpoint instead of recomputing from scratch —
/// both restore paths must land on the same answer.
fn launch_kill(policy: &str, hosts: usize, seed: u64, checkpoint: bool) -> String {
    let mut extra = vec!["--kill-seed".to_string(), seed.to_string()];
    if checkpoint {
        let ckpt = std::env::temp_dir().join(format!(
            "cusp-xproc-{}-killck-{}-{}-{}",
            std::process::id(),
            policy,
            hosts,
            seed
        ));
        extra.push("--checkpoint-dir".to_string());
        extra.push(ckpt.to_string_lossy().into_owned());
    }
    let stdout = launch_with(policy, hosts, &format!("kill{seed}"), &extra);
    assert!(
        stdout.lines().any(|l| l.starts_with("kill plan: seed ")),
        "kill run must print its seeded plan\n{stdout}"
    );
    assert!(
        stdout.lines().any(|l| l.starts_with("recovery: ")),
        "kill run must print the recovery summary line\n{stdout}"
    );
    stdout
}

// The policy x hosts matrix. One #[test] per cell so the harness runs
// them concurrently and reports failures per cell. CVC/HVC/EEC cover the
// three structurally distinct policy classes (2D cartesian blocks,
// source-hashed edges, contiguous edge ranges), each with genuinely
// different communication patterns over the wire.

#[test]
fn cvc_2_hosts_matches_simulator() {
    launch("CVC", 2);
}

#[test]
fn cvc_4_hosts_matches_simulator() {
    launch("CVC", 4);
}

#[test]
fn hvc_2_hosts_matches_simulator() {
    launch("HVC", 2);
}

#[test]
fn hvc_4_hosts_matches_simulator() {
    launch("HVC", 4);
}

#[test]
fn eec_2_hosts_matches_simulator() {
    launch("EEC", 2);
}

#[test]
fn eec_4_hosts_matches_simulator() {
    launch("EEC", 4);
}

// The kill matrix: every policy class x {2,4} hosts, with one worker
// taken down mid-run by the seeded chaos supervisor and respawned. Seeds
// are chosen so the six cells jointly cover all three kill modes
// (SIGKILL, torn connection, SIGSTOP wedge) and both early and late
// pipeline phases; half the cells resume from phase checkpoints, half
// restart the victim from scratch. Every cell must end in fingerprint
// MATCH against the crash-free simulator.

#[test]
fn cvc_2_hosts_recovers_from_sigkill_at_read() {
    launch_kill("CVC", 2, 13, true); // seed 13 -> host 1, kill @ read
}

#[test]
fn cvc_4_hosts_recovers_from_torn_connection_at_read() {
    launch_kill("CVC", 4, 1, true); // seed 1 -> host 3, torn @ read
}

#[test]
fn hvc_2_hosts_recovers_from_sigkill_at_master() {
    launch_kill("HVC", 2, 11, false); // seed 11 -> host 0, kill @ master
}

#[test]
fn hvc_4_hosts_recovers_from_wedge_at_alloc() {
    launch_kill("HVC", 4, 16, false); // seed 16 -> host 1, wedge @ alloc
}

#[test]
fn eec_2_hosts_recovers_from_torn_connection_at_edge_assign() {
    launch_kill("EEC", 2, 5, true); // seed 5 -> host 0, torn @ edge_assign
}

#[test]
fn eec_4_hosts_recovers_from_wedge_at_construct() {
    launch_kill("EEC", 4, 2, false); // seed 2 -> host 3, wedge @ construct
}

#[test]
fn same_kill_seed_replays_the_same_decisions() {
    // The plan is a pure hash of (seed, hosts): two runs with the same
    // seed must announce the identical victim/phase/mode, making any
    // chaos failure replayable from nothing but the seed.
    let a = launch_kill("CVC", 2, 9, false); // seed 9 -> host 1, torn @ read
    let b = launch_kill("CVC", 2, 9, false);
    let plan = |out: &str| {
        out.lines()
            .find(|l| l.starts_with("kill plan: "))
            .expect("plan line")
            .to_string()
    };
    assert_eq!(plan(&a), plan(&b), "same seed must replay the same kill decisions");
}

#[test]
fn exhausted_restart_budget_is_a_diagnosed_failure_not_a_hang() {
    // --kill-repeat re-kills every incarnation at the same phase, so a
    // budget of 1 restart is guaranteed to run out. The launcher must
    // exit non-zero with a one-line diagnostic — never print MATCH, and
    // never hang on the half-dead mesh.
    let out_dir = std::env::temp_dir().join(format!(
        "cusp-xproc-{}-exhaust",
        std::process::id()
    ));
    let output = Command::new(env!("CARGO_BIN_EXE_cusp-part"))
        .arg("launch")
        .arg("--hosts")
        .arg("2")
        .arg("--graph")
        .arg(graph_path())
        .arg("--policy")
        .arg("EEC")
        .arg("--out-dir")
        .arg(&out_dir)
        .arg("--kill-seed")
        .arg("13") // seed 13 -> host 1, kill @ read: fires before any work
        .arg("--kill-repeat")
        .arg("--max-restarts")
        .arg("1")
        .env("CUSP_TCP_HEARTBEAT_MS", "50")
        .output()
        .expect("spawn cusp-part launch");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !output.status.success(),
        "exhausted restarts must be a failure\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}"
    );
    assert!(
        stderr.contains("lost: exhausted 1 restart attempt(s)"),
        "must print the one-line exhaustion diagnostic\n--- stderr ---\n{stderr}"
    );
    assert!(!stdout.contains("MATCH"), "no MATCH after losing a host\n{stdout}");
}

#[test]
fn launch_surfaces_worker_failure_as_nonzero_exit() {
    // Workers that cannot even read the input die before meshing; the
    // launcher must report the failure and exit non-zero rather than
    // printing a bogus MATCH or hanging on half a mesh.
    let output = Command::new(env!("CARGO_BIN_EXE_cusp-part"))
        .arg("launch")
        .arg("--hosts")
        .arg("2")
        .arg("--graph")
        .arg("/nonexistent/definitely-missing.bgr")
        .arg("--policy")
        .arg("CVC")
        .arg("--out-dir")
        .arg(std::env::temp_dir().join(format!("cusp-xproc-{}-fail", std::process::id())))
        .output()
        .expect("spawn cusp-part launch");
    assert!(!output.status.success(), "launch must fail when workers cannot start");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(!stdout.contains("MATCH"), "no MATCH line on a failed run\n{stdout}");
}
