//! Cross-process oracle battery: `cusp-part launch` forks real worker
//! processes, meshes them over loopback TCP, and compares the merged
//! partition against the in-process simulator. Each case asserts the
//! launcher's own end-to-end checks pass — per-pair byte/message
//! conservation joined *across* processes, and bit-identical
//! `partition_fingerprint` between the TCP run and the simulated run
//! under the determinism contract.
//!
//! These tests exercise the entire stack at once: CLI arg plumbing →
//! worker handshake protocol (listen line / PEERS line) → TcpTransport
//! mesh establishment → five-phase pipeline over real sockets → FIN
//! teardown → `.part` serialization → merge + fingerprint.

use std::path::PathBuf;
use std::process::Command;
use std::sync::OnceLock;

use cusp_graph::gen::uniform::erdos_renyi;
use cusp_graph::write_bgr;

/// The shared input graph, generated once per test binary run. Big enough
/// that every phase moves real traffic (multiple buffer flushes per
/// peer), small enough that a 4-process run plus its simulator oracle
/// finishes in seconds.
fn graph_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("cusp-xproc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create graph dir");
        let path = dir.join("input.bgr");
        let graph = erdos_renyi(1500, 12_000, 20260808);
        write_bgr(&path, &graph).expect("write input graph");
        path
    })
}

/// Runs `cusp-part launch` for one (policy, hosts) cell and asserts the
/// MATCH line and a zero exit. stdout/stderr are attached to the panic
/// message so a failing cell is diagnosable from the test log alone.
fn launch(policy: &str, hosts: usize) {
    let out_dir = std::env::temp_dir().join(format!(
        "cusp-xproc-{}-{}-{}",
        std::process::id(),
        policy,
        hosts
    ));
    let output = Command::new(env!("CARGO_BIN_EXE_cusp-part"))
        .arg("launch")
        .arg("--hosts")
        .arg(hosts.to_string())
        .arg("--graph")
        .arg(graph_path())
        .arg("--policy")
        .arg(policy)
        .arg("--out-dir")
        .arg(&out_dir)
        .output()
        .expect("spawn cusp-part launch");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "launch {policy} x{hosts} failed ({:?})\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        output.status
    );
    assert!(
        stdout.contains("cross-process conservation: ok"),
        "launch {policy} x{hosts}: conservation line missing\n{stdout}"
    );
    let fp_line = stdout
        .lines()
        .find(|l| l.starts_with("fingerprint "))
        .unwrap_or_else(|| panic!("launch {policy} x{hosts}: no fingerprint line\n{stdout}"));
    assert!(
        fp_line.ends_with("MATCH"),
        "launch {policy} x{hosts}: TCP and simulator partitions diverge: {fp_line}"
    );
    // The workers really did write one partition per host.
    for h in 0..hosts {
        let part = out_dir.join(format!("part-{h:04}.part"));
        assert!(part.is_file(), "worker {h} left no partition at {}", part.display());
    }
}

// The policy x hosts matrix. One #[test] per cell so the harness runs
// them concurrently and reports failures per cell. CVC/HVC/EEC cover the
// three structurally distinct policy classes (2D cartesian blocks,
// source-hashed edges, contiguous edge ranges), each with genuinely
// different communication patterns over the wire.

#[test]
fn cvc_2_hosts_matches_simulator() {
    launch("CVC", 2);
}

#[test]
fn cvc_4_hosts_matches_simulator() {
    launch("CVC", 4);
}

#[test]
fn hvc_2_hosts_matches_simulator() {
    launch("HVC", 2);
}

#[test]
fn hvc_4_hosts_matches_simulator() {
    launch("HVC", 4);
}

#[test]
fn eec_2_hosts_matches_simulator() {
    launch("EEC", 2);
}

#[test]
fn eec_4_hosts_matches_simulator() {
    launch("EEC", 4);
}

#[test]
fn launch_surfaces_worker_failure_as_nonzero_exit() {
    // Workers that cannot even read the input die before meshing; the
    // launcher must report the failure and exit non-zero rather than
    // printing a bogus MATCH or hanging on half a mesh.
    let output = Command::new(env!("CARGO_BIN_EXE_cusp-part"))
        .arg("launch")
        .arg("--hosts")
        .arg("2")
        .arg("--graph")
        .arg("/nonexistent/definitely-missing.bgr")
        .arg("--policy")
        .arg("CVC")
        .arg("--out-dir")
        .arg(std::env::temp_dir().join(format!("cusp-xproc-{}-fail", std::process::id())))
        .output()
        .expect("spawn cusp-part launch");
    assert!(!output.status.success(), "launch must fail when workers cannot start");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(!stdout.contains("MATCH"), "no MATCH line on a failed run\n{stdout}");
}
