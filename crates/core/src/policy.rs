//! The user-facing partitioning interface (paper §III-A).
//!
//! "To specify the partitioning policy, users write two functions:
//! `getMaster(prop, nodeId, mstate, masters)` and `getEdgeOwner(prop,
//! srcId, dstId, srcMaster, dstMaster, estate)`." Here they are the two
//! trait methods [`MasterRule::get_master`] and
//! [`EdgeRule::get_edge_owner`]; each rule declares its own state type
//! (`()` when stateless), and two capability probes — [`MasterRule::is_pure`]
//! and [`MasterRule::uses_neighbor_masters`] — drive the synchronization
//! elisions of §IV-D5:
//!
//! * pure + stateless → master assignment is a pure function; CuSP
//!   replicates computation instead of communicating masters at all;
//! * stateful but neighbor-blind → state syncs only once, after the phase;
//! * neighbor-aware → periodic asynchronous rounds during the phase.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use cusp_graph::{Node, ReadSplit};

use crate::props::LocalProps;
use crate::state::PartitionState;
use crate::PartId;

/// Sentinel for "no master assigned yet" in the local masters array.
pub const UNASSIGNED: u32 = u32::MAX;

/// Global, host-independent facts available when rules are constructed.
/// Every host computes an identical `Setup`, so rules built from it are
/// identical across hosts (required for replicated pure evaluation).
#[derive(Clone)]
pub struct Setup {
    /// Total number of vertices in the input graph.
    pub num_nodes: u64,
    /// Total number of edges in the input graph.
    pub num_edges: u64,
    /// Number of partitions (== number of hosts).
    pub parts: PartId,
    /// Node boundaries (`parts + 1` entries) of an edge-balanced contiguous
    /// blocking of the vertex set — the basis of `ContiguousEB`.
    pub eb_boundaries: Arc<Vec<u64>>,
    /// The contiguous node range each host reads from disk.
    pub read_splits: Arc<Vec<ReadSplit>>,
}

impl Setup {
    /// Which host reads node `v` from disk.
    pub fn reader_of(&self, v: Node) -> usize {
        let v = v as u64;
        debug_assert!(v < self.num_nodes);
        // Ranges are contiguous and ordered; find the first with hi > v.
        self.read_splits
            .partition_point(|s| s.hi <= v)
    }
}

/// The `getMaster` half of a policy.
pub trait MasterRule: Send + Sync {
    /// The `mstate` type tracked by this rule (`()` if stateless).
    type State: PartitionState;

    /// True if the assignment is a pure function of `(Setup, node)` —
    /// enabling the paper's strongest elision: no master communication,
    /// every host replicates the computation on demand.
    fn is_pure(&self) -> bool {
        false
    }

    /// Pure evaluation for an arbitrary (possibly non-local) node.
    /// Must be implemented when [`MasterRule::is_pure`] returns true.
    fn pure_master(&self, _node: Node) -> PartId {
        unreachable!("pure_master called on a non-pure rule")
    }

    /// For pure rules: the contiguous global node range whose masters live
    /// on `part`. (All pure rules in the catalog assign contiguous chunks.)
    fn pure_owned_range(&self, _part: PartId) -> Range<Node> {
        unreachable!("pure_owned_range called on a non-pure rule")
    }

    /// True if `get_master` consults the `masters` map of neighbors
    /// (Fennel-family rules). Forces periodic master synchronization.
    fn uses_neighbor_masters(&self) -> bool {
        false
    }

    /// Returns the partition that holds the master proxy of `node`.
    ///
    /// Called once per locally read node; may be called from multiple
    /// threads concurrently (update `state` with its thread-safe methods).
    fn get_master(
        &self,
        prop: &LocalProps,
        node: Node,
        state: &Self::State,
        masters: &MasterView,
    ) -> PartId;
}

/// The `getEdgeOwner` half of a policy.
pub trait EdgeRule: Send + Sync {
    /// The `estate` type tracked by this rule (`()` if stateless).
    ///
    /// Stateful edge rules are replayed during graph construction after a
    /// state reset (paper §IV-B4), so the decision stream must be
    /// deterministic: the driver runs stateful edge rules sequentially in
    /// node order to guarantee the replay matches.
    type State: PartitionState;

    /// Returns the partition to which edge `(src, dst)` is assigned.
    /// `src` is always a locally read node; `src_master`/`dst_master` are
    /// the partitions holding the endpoints' master proxies.
    fn get_edge_owner(
        &self,
        prop: &LocalProps,
        src: Node,
        dst: Node,
        src_master: PartId,
        dst_master: PartId,
        state: &Self::State,
    ) -> PartId;
}

/// Read access to previously assigned masters — the `masters` argument of
/// `getMaster` and the lookup used during edge assignment.
pub enum MasterView<'a> {
    /// Masters are a replicated pure function (no storage, no messages).
    Pure(&'a (dyn Fn(Node) -> PartId + Sync)),
    /// Masters are stored: a dense array for the locally read range plus a
    /// sparse map of remote assignments received so far.
    Stored {
        /// First node of the locally read range.
        lo: Node,
        /// Dense assignments for the local range, `UNASSIGNED` until set.
        local: &'a [AtomicU32],
        /// Remote assignments received so far, keyed by global id.
        remote: &'a HashMap<Node, PartId>,
    },
}

impl MasterView<'_> {
    /// The master partition of `v`, or `None` if not (yet) known.
    #[inline]
    pub fn get(&self, v: Node) -> Option<PartId> {
        match self {
            MasterView::Pure(f) => Some(f(v)),
            MasterView::Stored { lo, local, remote } => {
                if v >= *lo && ((v - lo) as usize) < local.len() {
                    let m = local[(v - lo) as usize].load(Ordering::Relaxed);
                    (m != UNASSIGNED).then_some(m)
                } else {
                    remote.get(&v).copied()
                }
            }
        }
    }

    /// Like [`MasterView::get`] but panics with context if unknown — used
    /// by the driver at points where the protocol guarantees availability.
    #[inline]
    pub fn get_required(&self, v: Node) -> PartId {
        self.get(v).unwrap_or_else(|| {
            panic!("master of node {v} required but not yet known on this host")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup_4() -> Setup {
        Setup {
            num_nodes: 100,
            num_edges: 1000,
            parts: 4,
            eb_boundaries: Arc::new(vec![0, 25, 50, 75, 100]),
            read_splits: Arc::new(vec![
                ReadSplit { lo: 0, hi: 30 },
                ReadSplit { lo: 30, hi: 55 },
                ReadSplit { lo: 55, hi: 55 },
                ReadSplit { lo: 55, hi: 100 },
            ]),
        }
    }

    #[test]
    fn reader_of_uses_read_splits() {
        let s = setup_4();
        assert_eq!(s.reader_of(0), 0);
        assert_eq!(s.reader_of(29), 0);
        assert_eq!(s.reader_of(30), 1);
        assert_eq!(s.reader_of(54), 1);
        assert_eq!(s.reader_of(55), 3); // host 2's range is empty
        assert_eq!(s.reader_of(99), 3);
    }

    #[test]
    fn pure_view_answers_everything() {
        let f = |v: Node| v % 3;
        let view = MasterView::Pure(&f);
        assert_eq!(view.get(7), Some(1));
        assert_eq!(view.get_required(9), 0);
    }

    #[test]
    fn stored_view_distinguishes_local_and_remote() {
        let local: Vec<AtomicU32> = vec![AtomicU32::new(2), AtomicU32::new(UNASSIGNED)];
        let mut remote = HashMap::new();
        remote.insert(50u32, 3u32);
        let view = MasterView::Stored {
            lo: 10,
            local: &local,
            remote: &remote,
        };
        assert_eq!(view.get(10), Some(2));
        assert_eq!(view.get(11), None); // local but unassigned
        assert_eq!(view.get(50), Some(3));
        assert_eq!(view.get(60), None); // unknown remote
    }

    #[test]
    #[should_panic(expected = "required but not yet known")]
    fn get_required_panics_on_missing() {
        let remote = HashMap::new();
        let view = MasterView::Stored {
            lo: 0,
            local: &[],
            remote: &remote,
        };
        let _ = view.get_required(5);
    }
}
