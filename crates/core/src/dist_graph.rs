//! The per-host partition produced by CuSP.

use cusp_graph::{Csr, Node};

use crate::PartId;

/// Structural class of a partitioning policy — the invariant (paper Table
/// I) that downstream systems like D-Galois exploit for communication
/// optimizations (§V-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionClass {
    /// All out-edges of a vertex live with its master (EEC, FEC, XtraPulp).
    OutEdgeCut,
    /// 2D block structure: owners share a grid row with the source's
    /// master and a grid column class with the destination's (CVC, SVC).
    TwoDimensional,
    /// No structural restriction (HVC, GVC, HDRF).
    GeneralVertexCut,
}

/// One host's partition: a local CSR over local vertex ids plus the
/// master/mirror bookkeeping that distributed analytics needs.
///
/// Local ids are assigned deterministically: masters first (ascending
/// global id), then mirrors (ascending global id).
#[derive(Clone)]
pub struct DistGraph {
    /// This partition's id (== the host id that built it).
    pub part_id: PartId,
    /// Total number of partitions.
    pub num_parts: PartId,
    /// |V| of the original graph.
    pub global_nodes: u64,
    /// |E| of the original graph.
    pub global_edges: u64,
    /// Number of master proxies (local ids `0..num_masters`).
    pub num_masters: usize,
    /// Local id → global id. Two sorted segments: masters then mirrors.
    pub local2global: Vec<Node>,
    /// Local id → partition holding this vertex's master proxy.
    pub master_of: Vec<PartId>,
    /// Local adjacency (out-edges; destinations are **local** ids).
    pub graph: Csr,
    /// Per-edge data aligned with `graph`'s edge order (weighted inputs).
    pub edge_data: Option<Vec<u32>>,
    /// Structural class (for downstream communication planning).
    pub class: PartitionClass,
}

impl DistGraph {
    /// Number of proxies (masters + mirrors) in this partition.
    #[inline]
    pub fn num_local(&self) -> usize {
        self.local2global.len()
    }

    /// Number of mirror proxies.
    #[inline]
    pub fn num_mirrors(&self) -> usize {
        self.num_local() - self.num_masters
    }

    /// Global id of local vertex `l`.
    #[inline]
    pub fn global_of(&self, l: u32) -> Node {
        self.local2global[l as usize]
    }

    /// Is local vertex `l` a master proxy?
    #[inline]
    pub fn is_master(&self, l: u32) -> bool {
        (l as usize) < self.num_masters
    }

    /// Local id of global vertex `v`, if present in this partition.
    /// Two binary searches over the sorted master / mirror segments.
    pub fn local_of(&self, v: Node) -> Option<u32> {
        let masters = &self.local2global[..self.num_masters];
        if let Ok(i) = masters.binary_search(&v) {
            return Some(i as u32);
        }
        let mirrors = &self.local2global[self.num_masters..];
        mirrors
            .binary_search(&v)
            .ok()
            .map(|i| (self.num_masters + i) as u32)
    }

    /// Iterates the global ids of master proxies.
    pub fn master_globals(&self) -> &[Node] {
        &self.local2global[..self.num_masters]
    }

    /// Iterates the global ids of mirror proxies.
    pub fn mirror_globals(&self) -> &[Node] {
        &self.local2global[self.num_masters..]
    }

    /// Number of edges stored in this partition.
    pub fn num_local_edges(&self) -> u64 {
        self.graph.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DistGraph {
        // masters: globals {2, 5}; mirrors: globals {0, 7}
        DistGraph {
            part_id: 1,
            num_parts: 2,
            global_nodes: 8,
            global_edges: 10,
            num_masters: 2,
            local2global: vec![2, 5, 0, 7],
            master_of: vec![1, 1, 0, 0],
            graph: Csr::from_edges(4, &[(0, 2), (1, 3)]),
            edge_data: None,
            class: PartitionClass::OutEdgeCut,
        }
    }

    #[test]
    fn id_mapping_round_trips() {
        let d = sample();
        assert_eq!(d.num_local(), 4);
        assert_eq!(d.num_mirrors(), 2);
        for l in 0..4u32 {
            let g = d.global_of(l);
            assert_eq!(d.local_of(g), Some(l));
        }
        assert_eq!(d.local_of(3), None);
        assert!(d.is_master(0));
        assert!(d.is_master(1));
        assert!(!d.is_master(2));
    }

    #[test]
    fn segments_expose_globals() {
        let d = sample();
        assert_eq!(d.master_globals(), &[2, 5]);
        assert_eq!(d.mirror_globals(), &[0, 7]);
        assert_eq!(d.num_local_edges(), 2);
    }
}
