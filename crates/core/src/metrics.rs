//! Partition quality metrics and full-partitioning validation.
//!
//! The paper evaluates quality primarily through application runtime, but
//! cites the structural metrics — replication factor and node/edge balance
//! (§V-C) — which are computed here. The validator is the test-suite
//! workhorse: it checks that a set of [`DistGraph`]s is a *correct*
//! partitioning of the original graph.

use std::collections::HashMap;

use cusp_graph::{Csr, Node};

use crate::dist_graph::DistGraph;

/// Structural quality summary of a partitioning.
#[derive(Clone, Debug)]
pub struct QualityReport {
    /// Average number of proxies per original vertex (paper §II).
    pub replication_factor: f64,
    /// max over hosts of masters / (total masters / k).
    pub node_balance: f64,
    /// max over hosts of local edges / (total edges / k).
    pub edge_balance: f64,
    /// Total mirrors across all partitions.
    pub total_mirrors: u64,
}

/// Computes quality metrics over all partitions of one graph.
pub fn quality(parts: &[DistGraph]) -> QualityReport {
    assert!(!parts.is_empty());
    let k = parts.len() as f64;
    let global_nodes = parts[0].global_nodes as f64;
    let total_proxies: u64 = parts.iter().map(|p| p.num_local() as u64).sum();
    let total_masters: u64 = parts.iter().map(|p| p.num_masters as u64).sum();
    let total_edges: u64 = parts.iter().map(|p| p.num_local_edges()).sum();
    let max_masters = parts.iter().map(|p| p.num_masters as u64).max().unwrap();
    let max_edges = parts.iter().map(|p| p.num_local_edges()).max().unwrap();
    QualityReport {
        replication_factor: total_proxies as f64 / global_nodes.max(1.0),
        node_balance: if total_masters == 0 {
            1.0
        } else {
            max_masters as f64 / (total_masters as f64 / k)
        },
        edge_balance: if total_edges == 0 {
            1.0
        } else {
            max_edges as f64 / (total_edges as f64 / k)
        },
        total_mirrors: total_proxies - total_masters,
    }
}

/// Validates that `parts` is a correct partitioning of `original`:
///
/// 1. every global vertex has exactly one master proxy, on the partition
///    all other proxies point to;
/// 2. the union of partition edge multisets equals the original's;
/// 3. every edge's endpoints exist as proxies in its partition;
/// 4. local id maps are internally consistent.
///
/// Returns a description of the first violation found.
pub fn validate_partitioning(original: &Csr, parts: &[DistGraph]) -> Result<(), String> {
    let n = original.num_nodes();

    // (1) master uniqueness and coverage.
    let mut master_home: Vec<i64> = vec![-1; n];
    for part in parts {
        for &g in part.master_globals() {
            if master_home[g as usize] != -1 {
                return Err(format!(
                    "node {g} has masters on partitions {} and {}",
                    master_home[g as usize], part.part_id
                ));
            }
            master_home[g as usize] = part.part_id as i64;
        }
    }
    for (v, &home) in master_home.iter().enumerate() {
        if home == -1 {
            return Err(format!("node {v} has no master proxy anywhere"));
        }
    }

    // (4) consistency of master_of and local maps.
    for part in parts {
        if part.local2global.len() != part.master_of.len() {
            return Err(format!(
                "partition {}: local2global and master_of lengths differ",
                part.part_id
            ));
        }
        for l in 0..part.num_local() as u32 {
            let g = part.global_of(l);
            let expect = master_home[g as usize] as u32;
            if part.master_of[l as usize] != expect {
                return Err(format!(
                    "partition {}: proxy of node {g} claims master on {}, actual {}",
                    part.part_id, part.master_of[l as usize], expect
                ));
            }
            if part.is_master(l) && part.master_of[l as usize] != part.part_id {
                return Err(format!(
                    "partition {}: master proxy of {g} points elsewhere",
                    part.part_id
                ));
            }
            if part.local_of(g) != Some(l) {
                return Err(format!(
                    "partition {}: local_of(global_of({l})) != {l}",
                    part.part_id
                ));
            }
        }
    }

    // (2) edge multiset equality + (3) endpoint presence.
    let mut expected: HashMap<(Node, Node), i64> = HashMap::new();
    for (u, v) in original.iter_edges() {
        *expected.entry((u, v)).or_insert(0) += 1;
    }
    for part in parts {
        for (lu, lv) in part.graph.iter_edges() {
            let gu = part.global_of(lu);
            let gv = part.global_of(lv);
            match expected.get_mut(&(gu, gv)) {
                Some(c) if *c > 0 => *c -= 1,
                _ => {
                    return Err(format!(
                        "partition {}: edge ({gu}, {gv}) duplicated or not in original",
                        part.part_id
                    ))
                }
            }
        }
    }
    if let Some(((u, v), c)) = expected.iter().find(|(_, &c)| c != 0) {
        return Err(format!("edge ({u}, {v}) missing from all partitions ({c} copies)"));
    }

    Ok(())
}

/// Like [`validate_partitioning`] but also checks that per-edge data
/// followed each edge: the multiset of `(src, dst, data)` triples across
/// all partitions equals the original's.
pub fn validate_partitioning_weighted(
    original: &Csr,
    original_data: &[u32],
    parts: &[DistGraph],
) -> Result<(), String> {
    validate_partitioning(original, parts)?;
    if original_data.len() as u64 != original.num_edges() {
        return Err("original edge data length mismatch".into());
    }
    let mut expected: HashMap<(Node, Node, u32), i64> = HashMap::new();
    for (e, (u, v)) in original.iter_edges().enumerate() {
        *expected.entry((u, v, original_data[e])).or_insert(0) += 1;
    }
    for part in parts {
        let Some(data) = &part.edge_data else {
            return Err(format!("partition {} lost its edge data", part.part_id));
        };
        if data.len() as u64 != part.graph.num_edges() {
            return Err(format!("partition {}: edge data length mismatch", part.part_id));
        }
        for (e, (lu, lv)) in part.graph.iter_edges().enumerate() {
            let key = (part.global_of(lu), part.global_of(lv), data[e]);
            match expected.get_mut(&key) {
                Some(c) if *c > 0 => *c -= 1,
                _ => {
                    return Err(format!(
                        "partition {}: weighted edge {key:?} duplicated or altered",
                        part.part_id
                    ))
                }
            }
        }
    }
    if let Some((key, _)) = expected.iter().find(|(_, &c)| c != 0) {
        return Err(format!("weighted edge {key:?} missing from all partitions"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_graph::PartitionClass;

    /// Hand-built correct 2-way partitioning of a 4-node path 0→1→2→3
    /// with an extra edge 1→3, using source-cut with contiguous masters.
    fn good_parts() -> (Csr, Vec<DistGraph>) {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)]);
        // masters: {0,1} on part 0, {2,3} on part 1. Edges by src master:
        // part 0: (0,1), (1,2), (1,3); part 1: (2,3).
        let p0 = DistGraph {
            part_id: 0,
            num_parts: 2,
            global_nodes: 4,
            global_edges: 4,
            num_masters: 2,
            local2global: vec![0, 1, 2, 3], // masters 0,1; mirrors 2,3
            master_of: vec![0, 0, 1, 1],
            graph: Csr::from_edges(4, &[(0, 1), (1, 2), (1, 3)]),
            edge_data: None,
            class: PartitionClass::OutEdgeCut,
        };
        let p1 = DistGraph {
            part_id: 1,
            num_parts: 2,
            global_nodes: 4,
            global_edges: 4,
            num_masters: 2,
            local2global: vec![2, 3],
            master_of: vec![1, 1],
            graph: Csr::from_edges(2, &[(0, 1)]),
            edge_data: None,
            class: PartitionClass::OutEdgeCut,
        };
        (g, vec![p0, p1])
    }

    #[test]
    fn validator_accepts_correct_partitioning() {
        let (g, parts) = good_parts();
        validate_partitioning(&g, &parts).unwrap();
    }

    #[test]
    fn validator_rejects_missing_edge() {
        let (g, mut parts) = good_parts();
        parts[1].graph = Csr::from_edges(2, &[]);
        let err = validate_partitioning(&g, &parts).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn validator_rejects_duplicate_master() {
        let (g, mut parts) = good_parts();
        // Make node 2 a master on partition 0 as well.
        parts[0].num_masters = 3;
        parts[0].master_of = vec![0, 0, 0, 1];
        let err = validate_partitioning(&g, &parts).unwrap_err();
        assert!(err.contains("masters on partitions"), "{err}");
    }

    #[test]
    fn validator_rejects_wrong_master_of() {
        let (g, mut parts) = good_parts();
        parts[0].master_of[2] = 0; // node 2's master is actually on 1
        let err = validate_partitioning(&g, &parts).unwrap_err();
        assert!(err.contains("claims master"), "{err}");
    }

    #[test]
    fn quality_metrics() {
        let (_g, parts) = good_parts();
        let q = quality(&parts);
        // 6 proxies over 4 nodes.
        assert!((q.replication_factor - 1.5).abs() < 1e-12);
        assert_eq!(q.total_mirrors, 2);
        // Edge balance: max 3 local edges vs mean 2.
        assert!((q.edge_balance - 1.5).abs() < 1e-12);
        assert!((q.node_balance - 1.0).abs() < 1e-12);
    }
}
