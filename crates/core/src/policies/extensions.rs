//! Extension policies beyond Table II, demonstrating that the framework
//! covers the full streaming class of Table I.
//!
//! HDRF (High Degree Replicated First, Petroni et al. 2015) is a greedy
//! streaming *vertex-cut* whose edge rule is history-sensitive: it tracks
//! partial vertex degrees, per-partition edge load, and replica sets, and
//! prefers replicating the higher-degree endpoint of each edge. In CuSP
//! terms it is a stateful `getEdgeOwner` — exactly the case the paper's
//! `estate` exists for. As in distributed HDRF deployments, the greedy
//! state here is host-local (each host partitions its own edge stream);
//! the global structural invariants still hold and are validated by the
//! integration tests.

use std::collections::HashMap;

use cusp_graph::Node;
use parking_lot::Mutex;

use crate::policy::{EdgeRule, MasterRule, MasterView, Setup};
use crate::props::LocalProps;
use crate::state::{LoadState, PartitionState};
use crate::PartId;

/// Linear Deterministic Greedy [Stanton & Kliot, KDD'12] — the classic
/// streaming edge-cut heuristic of Table I: place each vertex with the
/// partition holding most of its already-placed neighbors, discounted by
/// fullness (`score(p) = |neighbors in p| · (1 − size(p)/capacity)`).
#[derive(Clone, Debug)]
pub struct Ldg {
    /// Per-partition vertex capacity (`n / k` by default).
    pub capacity: f64,
}

impl Ldg {
    /// Creates LDG with the standard `n / k` capacity.
    pub fn new(setup: &Setup) -> Self {
        Ldg {
            capacity: (setup.num_nodes as f64 / setup.parts as f64).max(1.0),
        }
    }
}

impl MasterRule for Ldg {
    type State = LoadState;

    fn uses_neighbor_masters(&self) -> bool {
        true
    }

    fn get_master(
        &self,
        prop: &LocalProps,
        node: Node,
        state: &LoadState,
        masters: &MasterView,
    ) -> PartId {
        let k = prop.num_partitions();
        let mut counts = vec![0u64; k as usize];
        for &n in prop.out_neighbors(node) {
            if let Some(p) = masters.get(n) {
                counts[p as usize] += 1;
            }
        }
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for p in 0..k {
            let fill = state.nodes(p) as f64 / self.capacity;
            let score = counts[p as usize] as f64 * (1.0 - fill)
                // tie-break toward the emptier partition
                - fill * 1e-6;
            if score > best_score {
                best_score = score;
                best = p;
            }
        }
        state.add_assignment(best, 0);
        best
    }
}

/// Mutable greedy state for [`HdrfEdge`].
///
/// Not synchronized across hosts (`sync_len` 0): HDRF's published
/// distributed variants run the heuristic independently per stream. Marked
/// stateful so the driver serializes the edge loop, making the
/// assignment/construction replay deterministic.
pub struct HdrfState {
    inner: Mutex<HdrfInner>,
    parts: PartId,
}

struct HdrfInner {
    partial_degree: HashMap<Node, u32>,
    /// Bitmask of partitions holding a replica of each seen vertex
    /// (supports up to 64 partitions — far beyond the simulated cluster).
    replicas: HashMap<Node, u64>,
    load: Vec<u64>,
    max_load: u64,
    min_load: u64,
}

impl PartitionState for HdrfState {
    const STATELESS: bool = false;

    fn new(parts: PartId) -> Self {
        assert!(parts <= 64, "HdrfState replica bitmask supports ≤ 64 partitions");
        HdrfState {
            inner: Mutex::new(HdrfInner {
                partial_degree: HashMap::new(),
                replicas: HashMap::new(),
                load: vec![0; parts as usize],
                max_load: 0,
                min_load: 0,
            }),
            parts,
        }
    }

    fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.partial_degree.clear();
        inner.replicas.clear();
        inner.load.iter_mut().for_each(|l| *l = 0);
        inner.max_load = 0;
        inner.min_load = 0;
    }
}

/// The HDRF edge rule. λ weighs the balance term (the original paper uses
/// λ ≥ 1; 1.1 is its recommended default), ε avoids division by zero.
#[derive(Clone, Debug)]
pub struct HdrfEdge {
    /// Balance-term weight λ (HDRF paper default 1.1).
    pub lambda: f64,
    /// Balance-term denominator guard ε.
    pub epsilon: f64,
}

impl HdrfEdge {
    /// Creates a new instance.
    pub fn new(_setup: &Setup) -> Self {
        HdrfEdge {
            lambda: 1.1,
            epsilon: 1.0,
        }
    }
}

impl EdgeRule for HdrfEdge {
    type State = HdrfState;

    fn get_edge_owner(
        &self,
        _prop: &LocalProps,
        src: Node,
        dst: Node,
        _src_master: PartId,
        _dst_master: PartId,
        state: &Self::State,
    ) -> PartId {
        let mut inner = state.inner.lock();
        // Update partial degrees.
        let ds = {
            let e = inner.partial_degree.entry(src).or_insert(0);
            *e += 1;
            *e as f64
        };
        let dd = {
            let e = inner.partial_degree.entry(dst).or_insert(0);
            *e += 1;
            *e as f64
        };
        // θ: normalized degree share of src; g(v, p) favors placing the
        // edge where the *lower*-degree endpoint already has a replica
        // (replicating the high-degree endpoint instead).
        let theta_src = ds / (ds + dd);
        let theta_dst = 1.0 - theta_src;
        let rep_src = inner.replicas.get(&src).copied().unwrap_or(0);
        let rep_dst = inner.replicas.get(&dst).copied().unwrap_or(0);

        let mut best = 0 as PartId;
        let mut best_score = f64::NEG_INFINITY;
        for p in 0..state.parts {
            let bit = 1u64 << p;
            let mut c_rep = 0.0;
            if rep_src & bit != 0 {
                c_rep += 1.0 + (1.0 - theta_src);
            }
            if rep_dst & bit != 0 {
                c_rep += 1.0 + (1.0 - theta_dst);
            }
            let c_bal = self.lambda * (inner.max_load as f64 - inner.load[p as usize] as f64)
                / (self.epsilon + (inner.max_load - inner.min_load) as f64);
            let score = c_rep + c_bal;
            if score > best_score {
                best_score = score;
                best = p;
            }
        }

        // Update replica sets and load.
        let bit = 1u64 << best;
        *inner.replicas.entry(src).or_insert(0) |= bit;
        *inner.replicas.entry(dst).or_insert(0) |= bit;
        inner.load[best as usize] += 1;
        inner.max_load = inner.max_load.max(inner.load[best as usize]);
        inner.min_load = *inner.load.iter().min().expect("at least one partition");
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusp_graph::{Csr, GraphSlice};

    fn props(g: &Csr, _k: PartId) -> (GraphSlice, u64, u64) {
        (
            GraphSlice::from_csr(g, 0, g.num_nodes() as Node),
            g.num_nodes() as u64,
            g.num_edges(),
        )
    }

    #[test]
    fn balances_load_without_structure() {
        // A matching: no shared endpoints, so placement is purely balance.
        let g = Csr::from_edges(8, &[(0, 1), (2, 3), (4, 5), (6, 7)]);
        let (s, n, m) = props(&g, 4);
        let prop = LocalProps::new(n, m, 4, &s);
        let rule = HdrfEdge {
            lambda: 1.1,
            epsilon: 1.0,
        };
        let state = HdrfState::new(4);
        let mut used = std::collections::HashSet::new();
        for (u, v) in g.iter_edges() {
            used.insert(rule.get_edge_owner(&prop, u, v, 0, 0, &state));
        }
        assert_eq!(used.len(), 4, "each edge should land on a fresh partition");
    }

    #[test]
    fn prefers_partitions_with_replicas() {
        let g = Csr::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let (s, n, m) = props(&g, 2);
        let prop = LocalProps::new(n, m, 2, &s);
        let rule = HdrfEdge {
            lambda: 0.0, // disable balance to isolate the replica term
            epsilon: 1.0,
        };
        let state = HdrfState::new(2);
        let first = rule.get_edge_owner(&prop, 0, 1, 0, 0, &state);
        // Subsequent edges of node 0 should chase its replica.
        let second = rule.get_edge_owner(&prop, 0, 2, 0, 0, &state);
        let third = rule.get_edge_owner(&prop, 0, 3, 0, 0, &state);
        assert_eq!(first, second);
        assert_eq!(first, third);
    }

    #[test]
    fn replay_after_reset_is_identical() {
        let g = Csr::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let (s, n, m) = props(&g, 3);
        let prop = LocalProps::new(n, m, 3, &s);
        let rule = HdrfEdge {
            lambda: 1.1,
            epsilon: 1.0,
        };
        let state = HdrfState::new(3);
        let run = |state: &HdrfState| -> Vec<PartId> {
            g.iter_edges()
                .map(|(u, v)| rule.get_edge_owner(&prop, u, v, 0, 0, state))
                .collect()
        };
        let a = run(&state);
        state.reset();
        let b = run(&state);
        assert_eq!(a, b, "deterministic replay after reset is required by CuSP");
    }

    #[test]
    #[should_panic(expected = "64 partitions")]
    fn rejects_too_many_partitions() {
        let _ = HdrfState::new(65);
    }
}
