//! Ready-made partitioning rules and the Table II policy catalog.

pub mod catalog;
pub mod edges;
pub mod extensions;
pub mod masters;

pub use catalog::{PolicyKind, ALL_POLICIES};
pub use edges::{CartesianEdge, CheckerboardEdge, HybridEdge, JaggedEdge, SourceEdge};
pub use extensions::{HdrfEdge, Ldg};
pub use masters::{Contiguous, ContiguousEB, Fennel, FennelEB};
