//! `getMaster` rules from Algorithm 1 of the paper: `Contiguous`,
//! `ContiguousEB`, `Fennel`, and `FennelEB`.

use std::ops::Range;
use std::sync::Arc;

use cusp_graph::Node;

use crate::policy::{MasterRule, MasterView, Setup};
use crate::props::LocalProps;
use crate::state::LoadState;
use crate::PartId;

/// `Contiguous` (Algorithm 1): equal-sized contiguous node chunks.
///
/// ```text
/// blockSize = ceil(numNodes / numPartitions)
/// return floor(nodeId / blockSize)
/// ```
#[derive(Clone, Debug)]
pub struct Contiguous {
    block_size: u64,
    num_nodes: u64,
    parts: PartId,
}

impl Contiguous {
    /// Creates a new instance.
    pub fn new(setup: &Setup) -> Self {
        let block_size = setup.num_nodes.div_ceil(setup.parts as u64).max(1);
        Contiguous {
            block_size,
            num_nodes: setup.num_nodes,
            parts: setup.parts,
        }
    }
}

impl MasterRule for Contiguous {
    type State = ();

    fn is_pure(&self) -> bool {
        true
    }

    fn pure_master(&self, node: Node) -> PartId {
        ((node as u64 / self.block_size) as PartId).min(self.parts - 1)
    }

    fn pure_owned_range(&self, part: PartId) -> Range<Node> {
        let lo = (part as u64 * self.block_size).min(self.num_nodes);
        let hi = if part + 1 == self.parts {
            self.num_nodes
        } else {
            ((part as u64 + 1) * self.block_size).min(self.num_nodes)
        };
        lo as Node..hi as Node
    }

    fn get_master(
        &self,
        _prop: &LocalProps,
        node: Node,
        _state: &Self::State,
        _masters: &MasterView,
    ) -> PartId {
        self.pure_master(node)
    }
}

/// `ContiguousEB` (Algorithm 1): contiguous node chunks with roughly equal
/// *out-edge* counts per chunk.
///
/// The boundaries are precomputed once from the global offsets array (they
/// are part of [`Setup`], identical on every host), so evaluation for any
/// node — local or remote — is a pure boundary search. This realizes the
/// paper's "replicate computation instead of communication" elision for
/// EEC/HVC/CVC (§IV-D5, §V-A).
#[derive(Clone, Debug)]
pub struct ContiguousEB {
    boundaries: Arc<Vec<u64>>,
}

impl ContiguousEB {
    /// Creates a new instance.
    pub fn new(setup: &Setup) -> Self {
        assert_eq!(
            setup.eb_boundaries.len(),
            setup.parts as usize + 1,
            "eb_boundaries must have parts + 1 entries"
        );
        ContiguousEB {
            boundaries: Arc::clone(&setup.eb_boundaries),
        }
    }
}

impl MasterRule for ContiguousEB {
    type State = ();

    fn is_pure(&self) -> bool {
        true
    }

    fn pure_master(&self, node: Node) -> PartId {
        let inner = &self.boundaries[1..self.boundaries.len() - 1];
        inner.partition_point(|&b| b <= node as u64) as PartId
    }

    fn pure_owned_range(&self, part: PartId) -> Range<Node> {
        self.boundaries[part as usize] as Node..self.boundaries[part as usize + 1] as Node
    }

    fn get_master(
        &self,
        _prop: &LocalProps,
        node: Node,
        _state: &Self::State,
        _masters: &MasterView,
    ) -> PartId {
        self.pure_master(node)
    }
}

/// `Fennel` (Algorithm 1): greedy streaming placement scoring each
/// partition by co-located neighbors minus a size penalty
/// (`score[p] = |neighbors already in p| − α·γ·numNodes[p]^(γ−1)`).
///
/// Uses the paper's evaluation constants by default: γ = 1.5 and
/// α = m·h^(γ−1)/n^γ (§V-A).
#[derive(Clone, Debug)]
pub struct Fennel {
    /// Fennel size-penalty coefficient α.
    pub alpha: f64,
    /// Fennel size-penalty exponent γ.
    pub gamma: f64,
}

impl Fennel {
    /// Creates a new instance.
    pub fn new(setup: &Setup) -> Self {
        Fennel {
            alpha: paper_alpha(setup),
            gamma: 1.5,
        }
    }
}

/// α = m·h^(γ−1)/n^γ with γ = 1.5 (paper §V-A).
pub fn paper_alpha(setup: &Setup) -> f64 {
    let n = setup.num_nodes.max(1) as f64;
    let m = setup.num_edges.max(1) as f64;
    let h = setup.parts as f64;
    m * h.powf(0.5) / n.powf(1.5)
}

/// Scores partitions and returns the argmax (lowest id wins ties).
fn best_partition(scores: &[f64]) -> PartId {
    let mut best = 0usize;
    for p in 1..scores.len() {
        if scores[p] > scores[best] {
            best = p;
        }
    }
    best as PartId
}

impl MasterRule for Fennel {
    type State = LoadState;

    fn uses_neighbor_masters(&self) -> bool {
        true
    }

    fn get_master(
        &self,
        prop: &LocalProps,
        node: Node,
        state: &Self::State,
        masters: &MasterView,
    ) -> PartId {
        let parts = prop.num_partitions() as usize;
        let mut score = vec![0.0f64; parts];
        for (p, s) in score.iter_mut().enumerate() {
            *s = -self.alpha * self.gamma * (state.nodes(p as PartId) as f64).powf(self.gamma - 1.0);
        }
        for &n in prop.out_neighbors(node) {
            if let Some(m) = masters.get(n) {
                score[m as usize] += 1.0;
            }
        }
        let part = best_partition(&score);
        state.add_assignment(part, 0);
        part
    }
}

/// `FennelEB` (Algorithm 1): the PowerLyra/Ginger variant of the Fennel
/// heuristic. High-degree nodes short-circuit to `ContiguousEB`; otherwise
/// the size penalty uses a blended node+edge load,
/// `load = (numNodes[p] + μ·numEdges[p]) / 2` with `μ = n/m`.
///
/// Note: Algorithm 1's pseudocode increments `numEdges[part]` by one; we
/// add the node's out-degree, since `numEdges[p]` tracks "the number of
/// outgoing edges of those nodes" (§III-B) and a unit increment would make
/// the edge term a node counter.
#[derive(Clone, Debug)]
pub struct FennelEB {
    /// Fennel size-penalty coefficient α.
    pub alpha: f64,
    /// Fennel size-penalty exponent γ.
    pub gamma: f64,
    /// Degree threshold above which placement degrades to ContiguousEB.
    pub degree_threshold: u64,
    eb: ContiguousEB,
    mu: f64,
}

impl FennelEB {
    /// Creates a new instance.
    pub fn new(setup: &Setup) -> Self {
        FennelEB {
            alpha: paper_alpha(setup),
            gamma: 1.5,
            degree_threshold: 100,
            eb: ContiguousEB::new(setup),
            mu: setup.num_nodes.max(1) as f64 / setup.num_edges.max(1) as f64,
        }
    }

    /// With threshold.
    pub fn with_threshold(mut self, threshold: u64) -> Self {
        self.degree_threshold = threshold;
        self
    }
}

impl MasterRule for FennelEB {
    type State = LoadState;

    fn uses_neighbor_masters(&self) -> bool {
        true
    }

    fn get_master(
        &self,
        prop: &LocalProps,
        node: Node,
        state: &Self::State,
        masters: &MasterView,
    ) -> PartId {
        let degree = prop.out_degree(node);
        if degree > self.degree_threshold {
            return self.eb.pure_master(node);
        }
        let parts = prop.num_partitions() as usize;
        let mut score = vec![0.0f64; parts];
        for (p, s) in score.iter_mut().enumerate() {
            let load = (state.nodes(p as PartId) as f64
                + self.mu * state.edges(p as PartId) as f64)
                / 2.0;
            *s = -self.alpha * self.gamma * load.powf(self.gamma - 1.0);
        }
        for &n in prop.out_neighbors(node) {
            if let Some(m) = masters.get(n) {
                score[m as usize] += 1.0;
            }
        }
        let part = best_partition(&score);
        state.add_assignment(part, degree);
        part
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::PartitionState;
    use cusp_graph::{Csr, GraphSlice, ReadSplit};

    fn setup(n: u64, m: u64, k: PartId, eb: Vec<u64>) -> Setup {
        Setup {
            num_nodes: n,
            num_edges: m,
            parts: k,
            eb_boundaries: Arc::new(eb),
            read_splits: Arc::new(vec![ReadSplit { lo: 0, hi: n }]),
        }
    }

    #[test]
    fn contiguous_blocks() {
        let s = setup(10, 0, 3, vec![0, 4, 8, 10]);
        let c = Contiguous::new(&s);
        // blockSize = ceil(10/3) = 4
        assert_eq!(c.pure_master(0), 0);
        assert_eq!(c.pure_master(3), 0);
        assert_eq!(c.pure_master(4), 1);
        assert_eq!(c.pure_master(7), 1);
        assert_eq!(c.pure_master(8), 2);
        assert_eq!(c.pure_master(9), 2);
        assert_eq!(c.pure_owned_range(0), 0..4);
        assert_eq!(c.pure_owned_range(2), 8..10);
    }

    #[test]
    fn contiguous_ranges_cover_everything() {
        for (n, k) in [(10u64, 3u32), (7, 7), (5, 8), (100, 16)] {
            let s = setup(n, 0, k, vec![0; k as usize + 1]);
            let c = Contiguous::new(&s);
            let mut covered = 0u64;
            for p in 0..k {
                let r = c.pure_owned_range(p);
                for v in r.clone() {
                    assert_eq!(c.pure_master(v), p, "n={n} k={k} v={v}");
                }
                covered += (r.end - r.start) as u64;
            }
            assert_eq!(covered, n, "n={n} k={k}");
        }
    }

    #[test]
    fn contiguous_eb_uses_boundaries() {
        let s = setup(10, 100, 3, vec![0, 2, 9, 10]);
        let c = ContiguousEB::new(&s);
        assert_eq!(c.pure_master(0), 0);
        assert_eq!(c.pure_master(1), 0);
        assert_eq!(c.pure_master(2), 1);
        assert_eq!(c.pure_master(8), 1);
        assert_eq!(c.pure_master(9), 2);
        assert_eq!(c.pure_owned_range(1), 2..9);
    }

    #[test]
    fn contiguous_eb_handles_empty_blocks() {
        let s = setup(4, 100, 3, vec![0, 4, 4, 4]);
        let c = ContiguousEB::new(&s);
        for v in 0..4 {
            assert_eq!(c.pure_master(v), 0);
        }
        assert_eq!(c.pure_owned_range(1), 4..4);
    }

    fn props_for(g: &Csr, _k: PartId) -> (GraphSlice, u64, u64) {
        let slice = GraphSlice::from_csr(g, 0, g.num_nodes() as Node);
        (slice, g.num_nodes() as u64, g.num_edges())
    }

    #[test]
    fn fennel_prefers_partition_with_neighbors() {
        // Star: node 4 connects to 0..4; nodes 0..2 already on partition 1.
        let g = Csr::from_edges(5, &[(4, 0), (4, 1), (4, 2), (4, 3)]);
        let (slice, n, m) = props_for(&g, 2);
        let prop = LocalProps::new(n, m, 2, &slice);
        let state = LoadState::new(2);
        // Pre-place masters: 0,1,2 → partition 1; 3 → partition 0.
        let local: Vec<std::sync::atomic::AtomicU32> = [1u32, 1, 1, 0, crate::policy::UNASSIGNED]
            .iter()
            .map(|&v| std::sync::atomic::AtomicU32::new(v))
            .collect();
        let remote = std::collections::HashMap::new();
        let view = MasterView::Stored {
            lo: 0,
            local: &local,
            remote: &remote,
        };
        let f = Fennel {
            alpha: 0.01,
            gamma: 1.5,
        };
        assert_eq!(f.get_master(&prop, 4, &state, &view), 1);
        assert_eq!(state.nodes(1), 1);
    }

    #[test]
    fn fennel_balances_when_no_neighbors_known() {
        // With no known neighbors, the size penalty should spread nodes.
        let g = Csr::from_edges(8, &[]);
        let (slice, n, m) = props_for(&g, 4);
        let prop = LocalProps::new(n, m.max(1), 4, &slice);
        let state = LoadState::new(4);
        let remote = std::collections::HashMap::new();
        let local: Vec<std::sync::atomic::AtomicU32> = (0..8)
            .map(|_| std::sync::atomic::AtomicU32::new(crate::policy::UNASSIGNED))
            .collect();
        let f = Fennel {
            alpha: 1.0,
            gamma: 1.5,
        };
        for v in 0..8u32 {
            let view = MasterView::Stored {
                lo: 0,
                local: &local,
                remote: &remote,
            };
            let p = f.get_master(&prop, v, &state, &view);
            local[v as usize].store(p, std::sync::atomic::Ordering::Relaxed);
        }
        for p in 0..4 {
            assert_eq!(state.nodes(p), 2, "partition {p} should get 2 nodes");
        }
    }

    #[test]
    fn fennel_eb_delegates_high_degree_to_eb() {
        let mut edges = Vec::new();
        for d in 0..50u32 {
            edges.push((0u32, d % 10));
        }
        edges.push((5, 1));
        let g = Csr::from_edges(10, &edges);
        let s = setup(10, g.num_edges(), 2, vec![0, 5, 10]);
        let (slice, n, m) = props_for(&g, 2);
        let prop = LocalProps::new(n, m, 2, &slice);
        let rule = FennelEB::new(&s).with_threshold(10);
        let state = LoadState::new(2);
        let remote = std::collections::HashMap::new();
        let local: Vec<std::sync::atomic::AtomicU32> = (0..10)
            .map(|_| std::sync::atomic::AtomicU32::new(crate::policy::UNASSIGNED))
            .collect();
        let view = MasterView::Stored {
            lo: 0,
            local: &local,
            remote: &remote,
        };
        // Node 0 has degree 51 > 10 → ContiguousEB says partition 0.
        assert_eq!(rule.get_master(&prop, 0, &state, &view), 0);
        // EB path must not touch state (per Algorithm 1).
        assert_eq!(state.nodes(0), 0);
        // Node 5 (degree 1) goes through the scored path and updates state.
        let p = rule.get_master(&prop, 5, &state, &view);
        assert_eq!(state.nodes(p), 1);
        assert_eq!(state.edges(p), 1);
    }

    #[test]
    fn paper_alpha_formula() {
        let s = setup(1000, 10_000, 4, vec![0, 0, 0, 0, 0]);
        let a = paper_alpha(&s);
        let expect = 10_000.0 * 2.0 / 1000.0f64.powf(1.5);
        assert!((a - expect).abs() < 1e-12);
    }

    #[test]
    fn ties_break_toward_lower_partition() {
        assert_eq!(best_partition(&[0.0, 0.0, 0.0]), 0);
        assert_eq!(best_partition(&[0.0, 1.0, 1.0]), 1);
    }
}
