//! The Table II policy catalog: named compositions of one `getMaster` and
//! one `getEdgeOwner` function.
//!
//! | Policy | getMaster    | getEdgeOwner |
//! |--------|--------------|--------------|
//! | EEC    | ContiguousEB | Source       |
//! | HVC    | ContiguousEB | Hybrid       |
//! | CVC    | ContiguousEB | Cartesian    |
//! | FEC    | FennelEB     | Source       |
//! | GVC    | FennelEB     | Hybrid       |
//! | SVC    | FennelEB     | Cartesian    |
//!
//! Plus two of the compositions Table II omits (`CEC` = Contiguous +
//! Source, `FNC` = Fennel + Source) and, as an extension, the HDRF greedy
//! vertex-cut (Table I's streaming class) to demonstrate stateful edge
//! rules.

use cusp_net::Comm;

use cusp_graph::GraphEvent;

use crate::config::{CuspConfig, GraphSource};
use crate::dist_graph::PartitionClass;
use crate::phases::delta::partition_delta;
use crate::phases::driver::{partition, PartitionOutput};
use crate::policies::edges::{CartesianEdge, CheckerboardEdge, HybridEdge, JaggedEdge, SourceEdge};
use crate::policies::extensions::{HdrfEdge, Ldg};
use crate::policies::masters::{Contiguous, ContiguousEB, Fennel, FennelEB};

/// A named partitioning policy from the paper's evaluation (plus
/// extensions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Edge-balanced Edge-Cut (Gemini).
    Eec,
    /// Hybrid Vertex-Cut (PowerLyra).
    Hvc,
    /// Cartesian Vertex-Cut (D-Galois / BoundedCommunication).
    Cvc,
    /// Fennel Edge-Cut.
    Fec,
    /// Ginger Vertex-Cut (PowerLyra).
    Gvc,
    /// Sugar Vertex-Cut (new in the paper).
    Svc,
    /// Contiguous (node-balanced) Edge-Cut — Table II's omitted variant.
    Cec,
    /// Fennel (node-only score) Edge-Cut — Table II's omitted variant.
    Fnc,
    /// HDRF greedy vertex-cut (extension; stateful edge rule).
    Hdrf,
    /// LDG edge-cut (extension; Stanton–Kliot streaming heuristic).
    Ldg,
    /// CheckerBoard Vertex-Cut (paper §II-A3: blocked rows AND columns).
    Bvc,
    /// Jagged Vertex-Cut, staggered approximation (paper §II-A3).
    Jvc,
}

/// The six policies the paper evaluates (Fig. 3–6).
pub const ALL_POLICIES: [PolicyKind; 6] = [
    PolicyKind::Eec,
    PolicyKind::Hvc,
    PolicyKind::Cvc,
    PolicyKind::Fec,
    PolicyKind::Gvc,
    PolicyKind::Svc,
];

impl PolicyKind {
    /// The paper's abbreviation for the policy.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Eec => "EEC",
            PolicyKind::Hvc => "HVC",
            PolicyKind::Cvc => "CVC",
            PolicyKind::Fec => "FEC",
            PolicyKind::Gvc => "GVC",
            PolicyKind::Svc => "SVC",
            PolicyKind::Cec => "CEC",
            PolicyKind::Fnc => "FNC",
            PolicyKind::Hdrf => "HDRF",
            PolicyKind::Ldg => "LDG",
            PolicyKind::Bvc => "BVC",
            PolicyKind::Jvc => "JVC",
        }
    }

    /// Structural invariant class (paper Table I).
    pub fn class(self) -> PartitionClass {
        match self {
            PolicyKind::Eec
            | PolicyKind::Fec
            | PolicyKind::Cec
            | PolicyKind::Fnc
            | PolicyKind::Ldg => PartitionClass::OutEdgeCut,
            PolicyKind::Cvc | PolicyKind::Svc | PolicyKind::Bvc | PolicyKind::Jvc => {
                PartitionClass::TwoDimensional
            }
            PolicyKind::Hvc | PolicyKind::Gvc | PolicyKind::Hdrf => {
                PartitionClass::GeneralVertexCut
            }
        }
    }

    /// Whether master assignment is non-trivial (FennelEB-based).
    pub fn has_streaming_masters(self) -> bool {
        matches!(
            self,
            PolicyKind::Fec
                | PolicyKind::Gvc
                | PolicyKind::Svc
                | PolicyKind::Fnc
                | PolicyKind::Ldg
        )
    }

    /// Parses the paper abbreviation (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "EEC" => Some(PolicyKind::Eec),
            "HVC" => Some(PolicyKind::Hvc),
            "CVC" => Some(PolicyKind::Cvc),
            "FEC" => Some(PolicyKind::Fec),
            "GVC" => Some(PolicyKind::Gvc),
            "SVC" => Some(PolicyKind::Svc),
            "CEC" => Some(PolicyKind::Cec),
            "FNC" => Some(PolicyKind::Fnc),
            "HDRF" => Some(PolicyKind::Hdrf),
            "LDG" => Some(PolicyKind::Ldg),
            "BVC" => Some(PolicyKind::Bvc),
            "JVC" => Some(PolicyKind::Jvc),
            _ => None,
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Partitions with one of the named policies — the one-call entry point
/// used by examples and benchmarks.
pub fn partition_with_policy(
    comm: &Comm,
    source: GraphSource,
    kind: PolicyKind,
    cfg: &CuspConfig,
) -> PartitionOutput {
    let class = kind.class();
    match kind {
        PolicyKind::Eec => partition(comm, source, cfg, class, |s| {
            (ContiguousEB::new(s), SourceEdge)
        }),
        PolicyKind::Hvc => partition(comm, source, cfg, class, |s| {
            (ContiguousEB::new(s), HybridEdge::paper_default())
        }),
        PolicyKind::Cvc => partition(comm, source, cfg, class, |s| {
            (ContiguousEB::new(s), CartesianEdge::new(s))
        }),
        PolicyKind::Fec => partition(comm, source, cfg, class, |s| {
            (FennelEB::new(s), SourceEdge)
        }),
        PolicyKind::Gvc => partition(comm, source, cfg, class, |s| {
            (FennelEB::new(s), HybridEdge::paper_default())
        }),
        PolicyKind::Svc => partition(comm, source, cfg, class, |s| {
            (FennelEB::new(s), CartesianEdge::new(s))
        }),
        PolicyKind::Cec => partition(comm, source, cfg, class, |s| {
            (Contiguous::new(s), SourceEdge)
        }),
        PolicyKind::Fnc => partition(comm, source, cfg, class, |s| {
            (Fennel::new(s), SourceEdge)
        }),
        PolicyKind::Hdrf => partition(comm, source, cfg, class, |s| {
            (ContiguousEB::new(s), HdrfEdge::new(s))
        }),
        PolicyKind::Ldg => partition(comm, source, cfg, class, |s| (Ldg::new(s), SourceEdge)),
        PolicyKind::Bvc => partition(comm, source, cfg, class, |s| {
            (ContiguousEB::new(s), CheckerboardEdge::new(s))
        }),
        PolicyKind::Jvc => partition(comm, source, cfg, class, |s| {
            (ContiguousEB::new(s), JaggedEdge::new(s))
        }),
    }
}

/// Incrementally repartitions with one of the named policies — the
/// delta analogue of [`partition_with_policy`].
///
/// `source` is the **mutated** graph, `prev` this host's output from the
/// previous run of the same policy/config over the pre-mutation graph, and
/// `batch` the applied [`GraphEvent`]s. Policies whose edge rule is
/// stateful (HDRF) or whose master rule is streaming (Fennel-family, LDG)
/// fall back to a full re-partition inside
/// [`partition_delta`][crate::phases::delta::partition_delta].
pub fn partition_delta_with_policy(
    comm: &Comm,
    source: GraphSource,
    kind: PolicyKind,
    cfg: &CuspConfig,
    prev: &PartitionOutput,
    batch: &[GraphEvent],
) -> PartitionOutput {
    let class = kind.class();
    match kind {
        PolicyKind::Eec => partition_delta(comm, source, cfg, class, |s| {
            (ContiguousEB::new(s), SourceEdge)
        }, prev, batch),
        PolicyKind::Hvc => partition_delta(comm, source, cfg, class, |s| {
            (ContiguousEB::new(s), HybridEdge::paper_default())
        }, prev, batch),
        PolicyKind::Cvc => partition_delta(comm, source, cfg, class, |s| {
            (ContiguousEB::new(s), CartesianEdge::new(s))
        }, prev, batch),
        PolicyKind::Fec => partition_delta(comm, source, cfg, class, |s| {
            (FennelEB::new(s), SourceEdge)
        }, prev, batch),
        PolicyKind::Gvc => partition_delta(comm, source, cfg, class, |s| {
            (FennelEB::new(s), HybridEdge::paper_default())
        }, prev, batch),
        PolicyKind::Svc => partition_delta(comm, source, cfg, class, |s| {
            (FennelEB::new(s), CartesianEdge::new(s))
        }, prev, batch),
        PolicyKind::Cec => partition_delta(comm, source, cfg, class, |s| {
            (Contiguous::new(s), SourceEdge)
        }, prev, batch),
        PolicyKind::Fnc => partition_delta(comm, source, cfg, class, |s| {
            (Fennel::new(s), SourceEdge)
        }, prev, batch),
        PolicyKind::Hdrf => partition_delta(comm, source, cfg, class, |s| {
            (ContiguousEB::new(s), HdrfEdge::new(s))
        }, prev, batch),
        PolicyKind::Ldg => {
            partition_delta(comm, source, cfg, class, |s| (Ldg::new(s), SourceEdge), prev, batch)
        }
        PolicyKind::Bvc => partition_delta(comm, source, cfg, class, |s| {
            (ContiguousEB::new(s), CheckerboardEdge::new(s))
        }, prev, batch),
        PolicyKind::Jvc => partition_delta(comm, source, cfg, class, |s| {
            (ContiguousEB::new(s), JaggedEdge::new(s))
        }, prev, batch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in [
            PolicyKind::Eec,
            PolicyKind::Hvc,
            PolicyKind::Cvc,
            PolicyKind::Fec,
            PolicyKind::Gvc,
            PolicyKind::Svc,
            PolicyKind::Cec,
            PolicyKind::Fnc,
            PolicyKind::Hdrf,
            PolicyKind::Ldg,
            PolicyKind::Bvc,
            PolicyKind::Jvc,
        ] {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("nope"), None);
        assert_eq!(PolicyKind::parse("cvc"), Some(PolicyKind::Cvc));
    }

    #[test]
    fn classes_match_table_one() {
        assert_eq!(PolicyKind::Eec.class(), PartitionClass::OutEdgeCut);
        assert_eq!(PolicyKind::Hvc.class(), PartitionClass::GeneralVertexCut);
        assert_eq!(PolicyKind::Cvc.class(), PartitionClass::TwoDimensional);
        assert_eq!(PolicyKind::Svc.class(), PartitionClass::TwoDimensional);
    }

    #[test]
    fn streaming_masters_flag() {
        assert!(!PolicyKind::Eec.has_streaming_masters());
        assert!(PolicyKind::Svc.has_streaming_masters());
    }
}
