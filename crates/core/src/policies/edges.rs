//! `getEdgeOwner` rules from Algorithm 2 of the paper: `Source`, `Hybrid`,
//! and `Cartesian`.

use cusp_graph::Node;

use crate::policy::{EdgeRule, Setup};
use crate::props::LocalProps;
use crate::PartId;

/// `Source` (Algorithm 2): the edge follows its source's master —
/// producing an outgoing edge-cut.
#[derive(Clone, Copy, Debug, Default)]
pub struct SourceEdge;

impl EdgeRule for SourceEdge {
    type State = ();

    #[inline]
    fn get_edge_owner(
        &self,
        _prop: &LocalProps,
        _src: Node,
        _dst: Node,
        src_master: PartId,
        _dst_master: PartId,
        _state: &Self::State,
    ) -> PartId {
        src_master
    }
}

/// `Hybrid` (Algorithm 2): PowerLyra's hybrid cut. Low-degree sources keep
/// their edges (edge-cut-like); high-degree sources scatter edges to the
/// destinations' masters (vertex-cut-like), splitting the hubs that
/// dominate power-law graphs.
#[derive(Clone, Copy, Debug)]
pub struct HybridEdge {
    /// Source out-degree above which edges chase the destination.
    pub degree_threshold: u64,
}

impl HybridEdge {
    /// The paper's evaluation threshold (§V-A; PowerLyra's default
    /// hybrid-cut threshold of 100 — the paper's text is truncated at
    /// "threshold of 1…", and 100 reproduces Table V's traffic shape).
    pub fn paper_default() -> Self {
        HybridEdge {
            degree_threshold: 100,
        }
    }
}

impl EdgeRule for HybridEdge {
    type State = ();

    #[inline]
    fn get_edge_owner(
        &self,
        prop: &LocalProps,
        src: Node,
        _dst: Node,
        src_master: PartId,
        dst_master: PartId,
        _state: &Self::State,
    ) -> PartId {
        if prop.out_degree(src) > self.degree_threshold {
            dst_master
        } else {
            src_master
        }
    }
}

/// `Cartesian` (Algorithm 2): the 2D block cut of CVC. Partitions form a
/// `p_r × p_c` grid; the adjacency matrix's row blocks are distributed
/// *blocked* over the grid rows and its column blocks *cyclically* over
/// the grid columns (paper Fig. 1c):
///
/// ```text
/// blockedRowOffset  = floor(srcMaster / p_c) · p_c
/// cyclicColumnOffset = dstMaster mod p_c
/// owner = blockedRowOffset + cyclicColumnOffset
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CartesianEdge {
    /// P r.
    pub p_r: PartId,
    /// P c.
    pub p_c: PartId,
}

impl CartesianEdge {
    /// Factorizes `parts` into the most square grid `p_r × p_c` with
    /// `p_r ≤ p_c` (e.g. 4 → 2×2, 8 → 2×4, 7 → 1×7).
    pub fn new(setup: &Setup) -> Self {
        let (p_r, p_c) = grid_factors(setup.parts);
        CartesianEdge { p_r, p_c }
    }
}

/// Largest divisor of `k` that is ≤ √k, paired with its cofactor.
pub fn grid_factors(k: PartId) -> (PartId, PartId) {
    assert!(k > 0);
    let mut p_r = (k as f64).sqrt() as PartId;
    while p_r > 1 && !k.is_multiple_of(p_r) {
        p_r -= 1;
    }
    (p_r.max(1), k / p_r.max(1))
}

impl EdgeRule for CartesianEdge {
    type State = ();

    #[inline]
    fn get_edge_owner(
        &self,
        _prop: &LocalProps,
        _src: Node,
        _dst: Node,
        src_master: PartId,
        dst_master: PartId,
        _state: &Self::State,
    ) -> PartId {
        let blocked_row = (src_master / self.p_c) * self.p_c;
        let cyclic_col = dst_master % self.p_c;
        blocked_row + cyclic_col
    }
}

/// `CheckerBoard` (BVC, paper §II-A3): the other classic 2D block cut.
/// Like [`CartesianEdge`], the adjacency matrix is blocked in both
/// dimensions and owners share a grid row with the source's master — but
/// the column blocks are distributed **blocked** instead of cyclically:
/// `col = floor(dstMaster · p_c / k)`.
#[derive(Clone, Copy, Debug)]
pub struct CheckerboardEdge {
    /// Grid rows.
    pub p_r: PartId,
    /// Grid columns.
    pub p_c: PartId,
    parts: PartId,
}

impl CheckerboardEdge {
    /// Factorizes `parts` like [`CartesianEdge::new`].
    pub fn new(setup: &Setup) -> Self {
        let (p_r, p_c) = grid_factors(setup.parts);
        CheckerboardEdge {
            p_r,
            p_c,
            parts: setup.parts,
        }
    }
}

impl EdgeRule for CheckerboardEdge {
    type State = ();

    #[inline]
    fn get_edge_owner(
        &self,
        _prop: &LocalProps,
        _src: Node,
        _dst: Node,
        src_master: PartId,
        dst_master: PartId,
        _state: &Self::State,
    ) -> PartId {
        let blocked_row = (src_master / self.p_c) * self.p_c;
        let blocked_col = (dst_master as u64 * self.p_c as u64 / self.parts as u64) as PartId;
        blocked_row + blocked_col
    }
}

/// `Jagged` (JVC, paper §II-A3), staggered approximation: rows are blocked
/// as in CVC, but each row block uses its own (staggered) column mapping —
/// `col = (dstMaster + row) mod p_c` — so no two row blocks share identical
/// column boundaries. True jagged cuts compute per-row column boundaries
/// from the nonzero distribution; the stagger reproduces their key
/// property (per-row column independence, row-bounded communication)
/// without a second pass over the data.
#[derive(Clone, Copy, Debug)]
pub struct JaggedEdge {
    /// Grid rows.
    pub p_r: PartId,
    /// Grid columns.
    pub p_c: PartId,
}

impl JaggedEdge {
    /// Factorizes `parts` like [`CartesianEdge::new`].
    pub fn new(setup: &Setup) -> Self {
        let (p_r, p_c) = grid_factors(setup.parts);
        JaggedEdge { p_r, p_c }
    }
}

impl EdgeRule for JaggedEdge {
    type State = ();

    #[inline]
    fn get_edge_owner(
        &self,
        _prop: &LocalProps,
        _src: Node,
        _dst: Node,
        src_master: PartId,
        dst_master: PartId,
        _state: &Self::State,
    ) -> PartId {
        let row = src_master / self.p_c;
        let blocked_row = row * self.p_c;
        let staggered_col = (dst_master + row) % self.p_c;
        blocked_row + staggered_col
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusp_graph::{Csr, GraphSlice, ReadSplit};
    use std::sync::Arc;

    fn props(g: &Csr, _k: PartId) -> (GraphSlice, u64, u64) {
        (
            GraphSlice::from_csr(g, 0, g.num_nodes() as Node),
            g.num_nodes() as u64,
            g.num_edges(),
        )
    }

    #[test]
    fn source_returns_src_master() {
        let g = Csr::from_edges(2, &[(0, 1)]);
        let (s, n, m) = props(&g, 4);
        let p = LocalProps::new(n, m, 4, &s);
        assert_eq!(SourceEdge.get_edge_owner(&p, 0, 1, 3, 1, &()), 3);
    }

    #[test]
    fn hybrid_switches_on_degree() {
        // Node 0 has degree 5, node 1 has degree 1.
        let g = Csr::from_edges(3, &[(0, 1), (0, 2), (0, 1), (0, 2), (0, 1), (1, 2)]);
        let (s, n, m) = props(&g, 4);
        let p = LocalProps::new(n, m, 4, &s);
        let rule = HybridEdge {
            degree_threshold: 3,
        };
        // High-degree source → destination's master.
        assert_eq!(rule.get_edge_owner(&p, 0, 1, 2, 3, &()), 3);
        // Low-degree source → source's master.
        assert_eq!(rule.get_edge_owner(&p, 1, 2, 2, 3, &()), 2);
    }

    #[test]
    fn grid_factorization() {
        assert_eq!(grid_factors(1), (1, 1));
        assert_eq!(grid_factors(4), (2, 2));
        assert_eq!(grid_factors(8), (2, 4));
        assert_eq!(grid_factors(16), (4, 4));
        assert_eq!(grid_factors(12), (3, 4));
        assert_eq!(grid_factors(7), (1, 7)); // prime
        assert_eq!(grid_factors(128), (8, 16));
    }

    #[test]
    fn cartesian_matches_figure_1c() {
        // 4 partitions → 2×2 grid. Row blocks {0,1} and {2,3}; columns
        // cyclic mod 2. Edge with masters (src=0, dst=3) → row block 0,
        // column 3 % 2 = 1 → partition 1.
        let rule = CartesianEdge { p_r: 2, p_c: 2 };
        let g = Csr::from_edges(2, &[(0, 1)]);
        let (s, n, m) = props(&g, 4);
        let p = LocalProps::new(n, m, 4, &s);
        let owner = |sm: PartId, dm: PartId| rule.get_edge_owner(&p, 0, 1, sm, dm, &());
        assert_eq!(owner(0, 0), 0);
        assert_eq!(owner(0, 1), 1);
        assert_eq!(owner(0, 2), 0);
        assert_eq!(owner(0, 3), 1);
        assert_eq!(owner(1, 0), 0);
        assert_eq!(owner(2, 0), 2);
        assert_eq!(owner(2, 3), 3);
        assert_eq!(owner(3, 2), 2);
    }

    #[test]
    fn checkerboard_and_jagged_stay_in_grid_row() {
        for k in [4u32, 8, 16] {
            let setup = Setup {
                num_nodes: 10,
                num_edges: 10,
                parts: k,
                eb_boundaries: Arc::new(vec![0; k as usize + 1]),
                read_splits: Arc::new(vec![ReadSplit { lo: 0, hi: 10 }]),
            };
            let bvc = CheckerboardEdge::new(&setup);
            let jvc = JaggedEdge::new(&setup);
            let g = Csr::from_edges(2, &[(0, 1)]);
            let (s, n, m) = props(&g, k);
            let p = LocalProps::new(n, m, k, &s);
            for sm in 0..k {
                for dm in 0..k {
                    for owner in [
                        bvc.get_edge_owner(&p, 0, 1, sm, dm, &()),
                        jvc.get_edge_owner(&p, 0, 1, sm, dm, &()),
                    ] {
                        assert!(owner < k);
                        assert_eq!(owner / bvc.p_c, sm / bvc.p_c, "must stay in src's grid row");
                    }
                }
            }
        }
    }

    #[test]
    fn checkerboard_columns_are_blocked_not_cyclic() {
        // k = 4, 2×2 grid: masters {0,1} map to column 0 and {2,3} to
        // column 1 (blocked), unlike CVC's 0,1,0,1 (cyclic).
        let setup = Setup {
            num_nodes: 10,
            num_edges: 10,
            parts: 4,
            eb_boundaries: Arc::new(vec![0; 5]),
            read_splits: Arc::new(vec![ReadSplit { lo: 0, hi: 10 }]),
        };
        let bvc = CheckerboardEdge::new(&setup);
        let g = Csr::from_edges(2, &[(0, 1)]);
        let (s, n, m) = props(&g, 4);
        let p = LocalProps::new(n, m, 4, &s);
        let owner = |dm: PartId| bvc.get_edge_owner(&p, 0, 1, 0, dm, &());
        assert_eq!(owner(0), 0);
        assert_eq!(owner(1), 0);
        assert_eq!(owner(2), 1);
        assert_eq!(owner(3), 1);
    }

    #[test]
    fn jagged_columns_differ_per_row() {
        let setup = Setup {
            num_nodes: 10,
            num_edges: 10,
            parts: 4,
            eb_boundaries: Arc::new(vec![0; 5]),
            read_splits: Arc::new(vec![ReadSplit { lo: 0, hi: 10 }]),
        };
        let jvc = JaggedEdge::new(&setup);
        let g = Csr::from_edges(2, &[(0, 1)]);
        let (s, n, m) = props(&g, 4);
        let p = LocalProps::new(n, m, 4, &s);
        // Same destination master, different source rows → different
        // column classes (the jagged property).
        let row0 = jvc.get_edge_owner(&p, 0, 1, 0, 0, &()) % jvc.p_c;
        let row1 = jvc.get_edge_owner(&p, 0, 1, 2, 0, &()) % jvc.p_c;
        assert_ne!(row0, row1);
    }

    #[test]
    fn cartesian_owner_is_in_src_masters_grid_row() {
        // The communication property CVC exploits: an edge's owner shares
        // its grid row with the source's master and its grid column with
        // the destination's master.
        for k in [4u32, 8, 16, 12] {
            let setup = Setup {
                num_nodes: 10,
                num_edges: 10,
                parts: k,
                eb_boundaries: Arc::new(vec![0; k as usize + 1]),
                read_splits: Arc::new(vec![ReadSplit { lo: 0, hi: 10 }]),
            };
            let rule = CartesianEdge::new(&setup);
            let g = Csr::from_edges(2, &[(0, 1)]);
            let (s, n, m) = props(&g, k);
            let p = LocalProps::new(n, m, k, &s);
            for sm in 0..k {
                for dm in 0..k {
                    let owner = rule.get_edge_owner(&p, 0, 1, sm, dm, &());
                    assert!(owner < k);
                    assert_eq!(owner / rule.p_c, sm / rule.p_c, "same grid row as src master");
                    assert_eq!(owner % rule.p_c, dm % rule.p_c, "same grid col class as dst master");
                }
            }
        }
    }
}
