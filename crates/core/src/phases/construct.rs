//! Phase 5 — graph construction (paper Algorithm 4, §IV-B5, §IV-C3/D3).
//!
//! Each host re-walks its read edges, re-evaluating `getEdgeOwner` (the
//! edge-rule state was reset after edge assignment, so the replay yields
//! the same decisions). Locally owned edges are inserted directly; remote
//! edges are serialized — per worker thread, into per-destination buffers
//! — as `(src, count, dsts…)` records and flushed once a buffer crosses
//! the configured threshold (§IV-D3). Because allocation reserved exact
//! per-node slots, arriving records are inserted with a lock-free
//! fetch-add cursor; no two records ever contend for the same slots.
//!
//! The byte path is bulk end to end: destination/weight runs are encoded
//! with the wire codec's memcpy slice ops, incoming messages are sized by
//! skip-scanning record headers in O(records), and destination runs are
//! decoded straight from the received payload into the record's reserved
//! CSR slots (weights are a straight memcpy). The wire format is identical
//! to the element-by-element encoding — `CuspConfig::scalar_codec` keeps
//! the scalar path around as an ablation and parity check.

use std::sync::atomic::Ordering;

use cusp_galois::{do_all_items, do_all_with_tid, PerThread, ThreadPool, DEFAULT_GRAIN};
use cusp_graph::{Csr, Node};
use cusp_net::{Comm, SendBuffers, WireReader};

use crate::config::{CuspConfig, OutputFormat};
use crate::phases::alloc::AllocOutcome;
use crate::phases::master::ResolvedMasters;
use crate::phases::pipeline::SliceData;
use crate::policy::{EdgeRule, Setup};
use crate::props::LocalProps;
use crate::state::PartitionState;
use crate::tags::TAG_EDGES;

/// A raw-pointer window over the destination buffer so pool workers can
/// fill disjoint slot ranges concurrently.
pub(crate) struct DestPtr(pub(crate) *mut Node);
unsafe impl Send for DestPtr {}
unsafe impl Sync for DestPtr {}
impl DestPtr {
    #[inline]
    pub(crate) fn get(&self) -> *mut Node {
        self.0
    }
}

/// Same, for the optional per-edge data buffer (null when unweighted).
pub(crate) struct DataPtr(pub(crate) *mut u32);
unsafe impl Send for DataPtr {}
unsafe impl Sync for DataPtr {}
impl DataPtr {
    #[inline]
    pub(crate) fn get(&self) -> *mut u32 {
        self.0
    }
}

/// Runs the construction phase and returns the local CSR (or CSC).
#[allow(clippy::too_many_arguments)]
pub fn construct<ER: EdgeRule>(
    comm: &Comm,
    pool: &ThreadPool,
    setup: &Setup,
    data: &mut SliceData,
    masters: &ResolvedMasters,
    rule: &ER,
    estate: &ER::State,
    alloc: &mut AllocOutcome,
    to_receive: u64,
    cfg: &CuspConfig,
) -> (Csr, Option<Vec<u32>>) {
    let me = comm.host();
    let k = comm.num_hosts();
    let weighted = data.weighted();
    let scalar = cfg.scalar_codec;
    debug_assert_eq!(weighted, alloc.edge_data.is_some());

    let dest_ptr = DestPtr(alloc.dests.as_mut_ptr());
    let data_ptr = DataPtr(
        alloc
            .edge_data
            .as_mut()
            .map_or(std::ptr::null_mut(), |d| d.as_mut_ptr()),
    );
    let alloc_ref: &AllocOutcome = alloc;

    // Per-thread send buffers and per-destination bucket scratch,
    // allocated once for the whole phase (buckets are cleared per node,
    // buffers retain their capacity across flushes). The flush threshold
    // comes from the Fig. 7 model when `auto_buffer` is on.
    let threshold = cfg.effective_buffer_threshold(k, data.num_edges());
    struct ThreadState {
        buffers: SendBuffers,
        buckets: Vec<Vec<Node>>,
        wbuckets: Vec<Vec<u32>>,
    }
    let mut threads: PerThread<ThreadState> = PerThread::new(pool, |_| ThreadState {
        buffers: SendBuffers::new(k, threshold, TAG_EDGES),
        buckets: vec![Vec::new(); k],
        wbuckets: vec![Vec::new(); k],
    });

    let mut received = 0u64;
    let mut batch: Vec<bytes::Bytes> = Vec::new();

    // The source edges stream through one bounded chunk at a time (a whole
    // slice is a single chunk): replay, flush, and opportunistically drain
    // per chunk, so resident edge state stays O(chunk) end to end.
    data.for_each_chunk(|chunk| {
        let prop = LocalProps::new(setup.num_nodes, setup.num_edges, setup.parts, chunk);
        let process = |tid: usize, j: usize| {
            let s = chunk.node_lo + j as Node;
            let edges = chunk.edges(s);
            if edges.is_empty() {
                return;
            }
            let sm = masters.of(s);
            let edge_data = chunk.edge_data(s);
            threads.with(tid, |ts| {
                for b in ts.buckets.iter_mut() {
                    b.clear();
                }
                for b in ts.wbuckets.iter_mut() {
                    b.clear();
                }
                for (i, &d) in edges.iter().enumerate() {
                    let dm = masters.of(d);
                    let h = rule.get_edge_owner(&prop, s, d, sm, dm, estate);
                    ts.buckets[h as usize].push(d);
                    if let Some(data) = edge_data {
                        ts.wbuckets[h as usize].push(data[i]);
                    }
                }
                for (h, bucket) in ts.buckets.iter().enumerate() {
                    if bucket.is_empty() {
                        continue;
                    }
                    let wbucket = weighted.then(|| ts.wbuckets[h].as_slice());
                    if h == me {
                        insert_record(alloc_ref, &dest_ptr, &data_ptr, s, bucket, wbucket);
                    } else {
                        ts.buffers.record(comm, h, |w| {
                            w.put_u32(s);
                            w.put_u32(bucket.len() as u32);
                            if scalar {
                                for &d in bucket {
                                    w.put_u32(d);
                                }
                                if let Some(ws) = wbucket {
                                    for &x in ws {
                                        w.put_u32(x);
                                    }
                                }
                            } else {
                                // Raw runs: same bytes as the scalar writes,
                                // one memcpy per run instead of a call per edge.
                                w.put_u32_raw_slice(bucket);
                                if let Some(ws) = wbucket {
                                    w.put_u32_raw_slice(ws);
                                }
                            }
                        });
                    }
                }
            });
        };

        if ER::State::STATELESS {
            do_all_with_tid(pool, chunk.num_nodes(), DEFAULT_GRAIN, process);
        } else {
            // Deterministic replay for stateful edge rules (same node order
            // as edge assignment, within and across chunks).
            for j in 0..chunk.num_nodes() {
                process(0, j);
            }
        }

        // Flush residual buffers from every thread, so in-flight serialized
        // edges never accumulate beyond the chunk just processed.
        for ts in threads.iter_mut() {
            ts.buffers.flush_all(comm);
        }

        // Opportunistically drain records that already arrived, so the
        // receive queue cannot grow to hold a whole remote slice.
        while received < to_receive {
            match comm.try_recv_any(TAG_EDGES) {
                Some((_s, p)) => {
                    received += count_edges_in(&p, weighted, scalar);
                    batch.push(p);
                }
                None => break,
            }
        }
        if !batch.is_empty() {
            do_all_items(pool, &batch, 1, |payload| {
                insert_message(alloc_ref, &dest_ptr, &data_ptr, payload.clone(), weighted, scalar);
            });
            batch.clear();
        }
    });
    drop(threads);

    // Block for the remaining edge records; batches of messages are
    // deserialized and inserted in parallel (§IV-C3).
    while received < to_receive {
        let (_src, payload) = comm.recv_any(TAG_EDGES);
        received += count_edges_in(&payload, weighted, scalar);
        batch.push(payload);
        // Opportunistically grab whatever else already arrived.
        while received < to_receive {
            match comm.try_recv_any(TAG_EDGES) {
                Some((_s, p)) => {
                    received += count_edges_in(&p, weighted, scalar);
                    batch.push(p);
                }
                None => break,
            }
        }
        // do_all_items runs one- or two-message batches inline on this
        // thread; larger backlogs are deserialized in parallel.
        do_all_items(pool, &batch, 1, |payload| {
            insert_message(alloc_ref, &dest_ptr, &data_ptr, payload.clone(), weighted, scalar);
        });
        batch.clear();
    }
    assert_eq!(received, to_receive, "received more edges than expected");

    // Every reserved slot must be filled.
    for (l, cursor) in alloc.cursors.iter().enumerate() {
        assert_eq!(
            cursor.load(Ordering::Relaxed),
            alloc.offsets[l + 1],
            "node with local id {l} is missing edges after construction"
        );
    }

    let mut dests = std::mem::take(&mut alloc.dests);
    let mut data = alloc.edge_data.take();
    if cfg.deterministic_sync {
        // Slots within a node's range are claimed in arrival/thread order,
        // which varies run to run. A canonical per-node adjacency order
        // (destination, then weight) makes the frozen CSR — and its CSC
        // transpose — a pure function of the assignment, fulfilling the
        // bit-identical determinism contract.
        sort_adjacency(&alloc.offsets, &mut dests, data.as_deref_mut());
    }
    let csr = Csr::from_parts(alloc.offsets.clone(), dests);
    match (cfg.output, data) {
        (OutputFormat::Csr, data) => (csr, data),
        // "each host performs an in-memory transpose of their CSR graph to
        // construct (without communication) their CSC graph" (Alg. 4).
        (OutputFormat::Csc, None) => (csr.transpose(), None),
        (OutputFormat::Csc, Some(data)) => {
            let (t, td) = csr.transpose_with_data(&data);
            (t, Some(td))
        }
    }
}

/// Sorts each node's adjacency slice (keeping per-edge data aligned) into
/// (destination, weight) order.
pub(crate) fn sort_adjacency(offsets: &[u64], dests: &mut [Node], mut data: Option<&mut [u32]>) {
    for l in 0..offsets.len() - 1 {
        let (s, e) = (offsets[l] as usize, offsets[l + 1] as usize);
        match data.as_deref_mut() {
            None => dests[s..e].sort_unstable(),
            Some(d) => {
                let mut pairs: Vec<(Node, u32)> =
                    dests[s..e].iter().copied().zip(d[s..e].iter().copied()).collect();
                pairs.sort_unstable();
                for (i, (dst, w)) in pairs.into_iter().enumerate() {
                    dests[s + i] = dst;
                    d[s + i] = w;
                }
            }
        }
    }
}

/// Reserves `cnt` contiguous CSR slots for a record of `src` and returns
/// the first slot index.
#[inline]
pub(crate) fn reserve_slots(alloc: &AllocOutcome, src: Node, cnt: usize) -> usize {
    let ls = alloc.local_of(src) as usize;
    let slot = alloc.cursors[ls].fetch_add(cnt as u64, Ordering::Relaxed);
    assert!(
        slot + cnt as u64 <= alloc.offsets[ls + 1],
        "edge overflow for source {src}: assignment and construction disagree"
    );
    slot as usize
}

/// Inserts one record's destinations (and optional per-edge data) into the
/// preallocated CSR, converting global destination ids to local ids.
#[inline]
pub(crate) fn insert_record(
    alloc: &AllocOutcome,
    dest_ptr: &DestPtr,
    data_ptr: &DataPtr,
    src: Node,
    dsts: &[Node],
    weights: Option<&[u32]>,
) {
    let slot = reserve_slots(alloc, src, dsts.len());
    for (off, &d) in dsts.iter().enumerate() {
        let ld = alloc.local_of(d);
        // SAFETY: slots [slot, slot + len) were exclusively reserved by the
        // fetch_add above; no other thread writes them.
        unsafe {
            *dest_ptr.get().add(slot + off) = ld;
        }
    }
    if let Some(ws) = weights {
        debug_assert_eq!(ws.len(), dsts.len());
        for (off, &x) in ws.iter().enumerate() {
            // SAFETY: same exclusively reserved slots as above.
            unsafe {
                *data_ptr.get().add(slot + off) = x;
            }
        }
    }
}

/// Total edges carried by a message (sum of record counts).
///
/// Bulk mode skip-scans the record headers — O(records), not O(edges) —
/// since the run lengths alone determine the total. Scalar mode decodes
/// every element (the pre-bulk behavior, kept for the ablation).
pub(crate) fn count_edges_in(payload: &bytes::Bytes, weighted: bool, scalar: bool) -> u64 {
    let mut r = WireReader::new(payload.clone());
    let per_edge = if weighted { 2 } else { 1 };
    let mut total = 0u64;
    while !r.is_exhausted() {
        let _src = r.get_u32().expect("malformed edge record");
        let cnt = r.get_u32().expect("malformed edge record") as u64;
        total += cnt;
        if scalar {
            for _ in 0..cnt * per_edge {
                let _ = r.get_u32().expect("malformed edge record");
            }
        } else {
            r.skip((cnt * per_edge) as usize * 4).expect("malformed edge record");
        }
    }
    total
}

/// Deserializes a full message of records and inserts them.
///
/// Bulk mode is zero-copy: each record's destination run is decoded from
/// the payload directly into its reserved CSR slots and localized in place,
/// and the weight run is a straight memcpy into the edge-data slots — no
/// intermediate `Vec` is materialized.
pub(crate) fn insert_message(
    alloc: &AllocOutcome,
    dest_ptr: &DestPtr,
    data_ptr: &DataPtr,
    payload: bytes::Bytes,
    weighted: bool,
    scalar: bool,
) {
    let mut r = WireReader::new(payload);
    if scalar {
        let mut dsts: Vec<Node> = Vec::new();
        let mut ws: Vec<u32> = Vec::new();
        while !r.is_exhausted() {
            let src = r.get_u32().expect("malformed edge record");
            let cnt = r.get_u32().expect("malformed edge record") as usize;
            dsts.clear();
            dsts.reserve(cnt);
            for _ in 0..cnt {
                dsts.push(r.get_u32().expect("malformed edge record"));
            }
            let weights = if weighted {
                ws.clear();
                ws.reserve(cnt);
                for _ in 0..cnt {
                    ws.push(r.get_u32().expect("malformed edge record"));
                }
                Some(ws.as_slice())
            } else {
                None
            };
            insert_record(alloc, dest_ptr, data_ptr, src, &dsts, weights);
        }
        return;
    }
    while !r.is_exhausted() {
        let src = r.get_u32().expect("malformed edge record");
        let cnt = r.get_u32().expect("malformed edge record") as usize;
        let slot = reserve_slots(alloc, src, cnt);
        // SAFETY: slots [slot, slot + cnt) were exclusively reserved by
        // reserve_slots; no other thread touches them.
        let dst_slots =
            unsafe { std::slice::from_raw_parts_mut(dest_ptr.get().add(slot), cnt) };
        r.get_u32_into(dst_slots).expect("malformed edge record");
        for d in dst_slots.iter_mut() {
            *d = alloc.local_of(*d);
        }
        if weighted {
            // SAFETY: same exclusively reserved slots, edge-data buffer.
            let data_slots =
                unsafe { std::slice::from_raw_parts_mut(data_ptr.get().add(slot), cnt) };
            r.get_u32_into(data_slots).expect("malformed edge record");
        }
    }
}
