//! Phase 3 — edge assignment (paper Algorithm 3, §IV-B3, §IV-D2).
//!
//! Each host walks its locally read edges, calls `getEdgeOwner` for every
//! edge, and tallies — per destination host — how many edges of each of
//! its source vertices will be sent there and which destination proxies
//! the receiver must create as mirrors. The tallies are exchanged as
//! *positional vectors* (index `i` ↦ the `i`-th node of the sender's read
//! range) so no node-id metadata is sent for sources (§IV-D2); hosts with
//! nothing to send transmit a one-byte "empty" message instead.
//!
//! On top of Algorithm 3 the exchange also carries the master locations a
//! receiver cannot compute itself when the master rule is not pure: the
//! masters of incoming sources (compacted against the count vector), of
//! mirror destinations, and the list of nodes the receiver is master of
//! ("more master assignments are sent if the edge assigned to a host does
//! not contain the master proxies of its endpoints", §IV-D5).

use std::sync::atomic::{AtomicU32, Ordering};

use cusp_galois::{do_all_with_tid, PerThread, ThreadPool, DEFAULT_GRAIN};
use cusp_graph::Node;
use cusp_net::{Comm, WireReader, WireWriter};

use crate::phases::master::ResolvedMasters;
use crate::phases::pipeline::SliceData;
use crate::policy::{EdgeRule, Setup};
use crate::props::LocalProps;
use crate::state::PartitionState;
use crate::tags::{META_EMPTY, META_FULL, TAG_EDGE_META};
use crate::PartId;

/// Everything a host learns in the edge assignment phase.
pub struct EdgeAssignOutcome {
    /// Sources whose edges land on this partition: `(global id, edges,
    /// master partition)`. Includes locally kept sources.
    pub incoming_srcs: Vec<(Node, u32, PartId)>,
    /// Destination proxies this partition must create whose master lives
    /// elsewhere: `(global id, master partition)`, deduplicated.
    pub mirrors: Vec<(Node, PartId)>,
    /// Nodes whose master proxy belongs on this partition. `None` when the
    /// master rule is pure (the owner range is computed, not communicated).
    pub my_master_nodes: Option<Vec<Node>>,
    /// Edges this host will receive from peers during construction.
    pub to_receive: u64,
}

/// Runs the edge assignment phase.
#[allow(clippy::too_many_arguments)]
pub fn assign_edges<ER: EdgeRule>(
    comm: &Comm,
    pool: &ThreadPool,
    setup: &Setup,
    data: &mut SliceData,
    masters: &ResolvedMasters,
    rule: &ER,
    estate: &ER::State,
) -> EdgeAssignOutcome {
    let me = comm.host();
    let k = comm.num_hosts();
    let lo = data.node_lo();
    let local_n = data.num_nodes();

    // --- Local tally (Algorithm 3, lines 1–6). --------------------------
    // counts[h * local_n + i]: edges of node (lo + i) owned by host h.
    // The positional tally covers the whole range (O(nodes) resident);
    // edge payloads stream through one bounded chunk at a time.
    let counts: Vec<AtomicU32> = (0..k * local_n).map(|_| AtomicU32::new(0)).collect();
    let mirror_lists: PerThread<Vec<(PartId, Node)>> = PerThread::new(pool, |_| Vec::new());

    data.for_each_chunk(|chunk| {
        let prop = LocalProps::new(setup.num_nodes, setup.num_edges, setup.parts, chunk);
        let base = (chunk.node_lo - lo) as usize;
        let process = |tid: usize, j: usize| {
            let s = chunk.node_lo + j as Node;
            let sm = masters.of(s);
            mirror_lists.with(tid, |mirrors| {
                for &d in chunk.edges(s) {
                    let dm = masters.of(d);
                    let h = rule.get_edge_owner(&prop, s, d, sm, dm, estate);
                    debug_assert!(h < setup.parts);
                    counts[h as usize * local_n + base + j].fetch_add(1, Ordering::Relaxed);
                    if h != dm {
                        mirrors.push((h, d));
                    }
                }
            });
        };
        if ER::State::STATELESS {
            // Dynamic chunking absorbs the wildly uneven per-node cost of
            // power-law hubs (§IV-C1).
            do_all_with_tid(pool, chunk.num_nodes(), DEFAULT_GRAIN, process);
        } else {
            // Stateful edge rules replay during construction; sequential
            // node order (within and across chunks) keeps the decision
            // stream deterministic (see EdgeRule docs).
            for j in 0..chunk.num_nodes() {
                process(0, j);
            }
        }
    });

    // Group mirrors by owner host, sorted and deduplicated.
    let mut flat: Vec<(PartId, Node)> = mirror_lists.into_inner().into_iter().flatten().collect();
    flat.sort_unstable();
    flat.dedup();
    let mut mirrors_for: Vec<Vec<(Node, PartId)>> = vec![Vec::new(); k];
    for (h, d) in flat {
        let dm = masters.of(d);
        mirrors_for[h as usize].push((d, dm));
    }

    // Masters of my read range, bucketed by owning partition (stored only).
    let pure = masters.is_pure();
    let mut master_buckets: Vec<Vec<Node>> = vec![Vec::new(); k];
    if !pure {
        for i in 0..local_n {
            let v = lo + i as Node;
            master_buckets[masters.of(v) as usize].push(v);
        }
    }

    // --- Exchange (Algorithm 3, lines 7–14). ----------------------------
    for peer in 0..k {
        if peer == me {
            continue;
        }
        let count_slice = &counts[peer * local_n..(peer + 1) * local_n];
        let any_counts = count_slice.iter().any(|c| c.load(Ordering::Relaxed) > 0);
        let empty = !any_counts && mirrors_for[peer].is_empty() && master_buckets[peer].is_empty();
        if empty {
            let mut w = WireWriter::with_capacity(1);
            w.put_u8(META_EMPTY);
            comm.send_bytes(peer, TAG_EDGE_META, w.finish());
            continue;
        }
        let mut w = WireWriter::with_capacity(local_n * 4 + 64);
        w.put_u8(META_FULL);
        w.put_u64(local_n as u64);
        // Bulk-encode the positional count vector (same bytes as the old
        // per-element writes; raw runs carry no length prefix).
        let count_vec: Vec<u32> = count_slice.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        w.put_u32_raw_slice(&count_vec);
        if !pure {
            // Compacted masters of nonzero-count sources, in position order.
            let compacted: Vec<u32> = (0..local_n)
                .filter(|&i| count_vec[i] > 0)
                .map(|i| masters.of(lo + i as Node))
                .collect();
            w.put_u32_slice(&compacted);
        }
        w.put_u64(mirrors_for[peer].len() as u64);
        let mirror_run: Vec<u32> = if pure {
            mirrors_for[peer].iter().map(|&(d, _)| d).collect()
        } else {
            mirrors_for[peer].iter().flat_map(|&(d, dm)| [d, dm]).collect()
        };
        w.put_u32_raw_slice(&mirror_run);
        if !pure {
            w.put_u32_slice(&master_buckets[peer]);
        }
        comm.send_bytes(peer, TAG_EDGE_META, w.finish());
    }

    // --- Local contributions (h == me). ---------------------------------
    let mut incoming_srcs: Vec<(Node, u32, PartId)> = Vec::new();
    let my_counts = &counts[me * local_n..(me + 1) * local_n];
    for (i, c) in my_counts.iter().enumerate() {
        let c = c.load(Ordering::Relaxed);
        if c > 0 {
            let s = lo + i as Node;
            incoming_srcs.push((s, c, masters.of(s)));
        }
    }
    let mut mirrors: Vec<(Node, PartId)> = std::mem::take(&mut mirrors_for[me]);
    let mut my_master_nodes = (!pure).then(|| std::mem::take(&mut master_buckets[me]));

    // --- Receive peer metadata. ------------------------------------------
    let mut to_receive = 0u64;
    for _ in 0..k - 1 {
        let (src, payload) = comm.recv_any(TAG_EDGE_META);
        let mut r = WireReader::new(payload);
        let kind = r.get_u8().expect("empty metadata message");
        if kind == META_EMPTY {
            continue;
        }
        let sender_lo = setup.read_splits[src].lo as Node;
        let n = r.get_u64().expect("malformed counts") as usize;
        debug_assert_eq!(n as u64, setup.read_splits[src].len());
        let mut raw_counts = vec![0u32; n];
        r.get_u32_into(&mut raw_counts).expect("malformed counts");
        let compacted: Option<Vec<u32>> = if pure {
            None
        } else {
            Some(r.get_u32_vec().expect("malformed compacted masters"))
        };
        let mut j = 0usize;
        for (i, &c) in raw_counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let s = sender_lo + i as Node;
            let sm = match &compacted {
                Some(v) => v[j],
                None => masters.of(s),
            };
            j += 1;
            incoming_srcs.push((s, c, sm));
            to_receive += c as u64;
        }
        if let Some(v) = &compacted {
            debug_assert_eq!(j, v.len());
        }
        let nm = r.get_u64().expect("malformed mirror count") as usize;
        let mut mirror_run = vec![0u32; if pure { nm } else { nm * 2 }];
        r.get_u32_into(&mut mirror_run).expect("malformed mirrors");
        if pure {
            mirrors.extend(mirror_run.into_iter().map(|d| (d, masters.of(d))));
        } else {
            mirrors.extend(mirror_run.chunks_exact(2).map(|p| (p[0], p[1])));
        }
        if !pure {
            let list = r.get_u32_vec().expect("malformed master list");
            my_master_nodes.as_mut().expect("stored mode").extend(list);
        }
    }

    // Mirrors may repeat across senders; dedup once more.
    mirrors.sort_unstable();
    mirrors.dedup();
    if let Some(v) = &mut my_master_nodes {
        v.sort_unstable();
        debug_assert!(v.windows(2).all(|w| w[0] != w[1]), "duplicate master claims");
    }

    EdgeAssignOutcome {
        incoming_srcs,
        mirrors,
        my_master_nodes,
        to_receive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CuspConfig, GraphSource};
    use crate::phases::master::pure_masters;
    use crate::phases::read::read_phase;
    use crate::policies::edges::SourceEdge;
    use crate::policies::masters::ContiguousEB;
    use cusp_graph::gen::uniform::erdos_renyi;
    use cusp_net::Cluster;
    use std::sync::Arc;

    fn run_eec(k: usize, n: usize, m: usize) -> (Arc<cusp_graph::Csr>, Vec<EdgeAssignOutcome>) {
        let g = Arc::new(erdos_renyi(n, m, 31));
        let g2 = Arc::clone(&g);
        let out = Cluster::run(k, move |comm| {
            let cfg = CuspConfig::default();
            let pool = ThreadPool::new(2);
            let mut r = read_phase(comm, &GraphSource::Memory(g2.clone()), &cfg).unwrap();
            let rule = ContiguousEB::new(&r.setup);
            let masters = pure_masters(&rule);
            assign_edges(comm, &pool, &r.setup, &mut r.data, &masters, &SourceEdge, &())
        });
        (g, out.results)
    }

    #[test]
    fn eec_keeps_all_edges_local() {
        // EEC (ContiguousEB + Source with default edge-balanced reading):
        // owner == reading host for every edge, so nothing is received.
        let (g, outcomes) = run_eec(4, 400, 4000);
        let mut total_edges = 0u64;
        for o in &outcomes {
            assert_eq!(o.to_receive, 0, "EEC must not exchange edges");
            total_edges += o.incoming_srcs.iter().map(|&(_, c, _)| c as u64).sum::<u64>();
        }
        assert_eq!(total_edges, g.num_edges());
    }

    #[test]
    fn eec_mirror_masters_point_correctly() {
        let (_g, outcomes) = run_eec(4, 400, 4000);
        for (h, o) in outcomes.iter().enumerate() {
            for &(_, dm) in &o.mirrors {
                assert_ne!(dm as usize, h, "a mirror's master must be remote");
                assert!((dm as usize) < 4);
            }
            // incoming srcs for EEC are all locally mastered.
            for &(_, _, sm) in &o.incoming_srcs {
                assert_eq!(sm as usize, h);
            }
        }
    }

    #[test]
    fn counts_conserve_edges_for_remote_policy() {
        // Force all edges to host (src+1) % k via a custom rule.
        #[derive(Clone)]
        struct NextHost;
        impl EdgeRule for NextHost {
            type State = ();
            fn get_edge_owner(
                &self,
                prop: &LocalProps,
                _s: Node,
                _d: Node,
                src_master: PartId,
                _dm: PartId,
                _st: &(),
            ) -> PartId {
                (src_master + 1) % prop.num_partitions()
            }
        }
        let g = Arc::new(erdos_renyi(300, 2700, 5));
        let g2 = Arc::clone(&g);
        let out = Cluster::run(3, move |comm| {
            let cfg = CuspConfig::default();
            let pool = ThreadPool::new(2);
            let mut r = read_phase(comm, &GraphSource::Memory(g2.clone()), &cfg).unwrap();
            let rule = ContiguousEB::new(&r.setup);
            let masters = pure_masters(&rule);
            assign_edges(comm, &pool, &r.setup, &mut r.data, &masters, &NextHost, &())
        });
        let total_recv: u64 = out.results.iter().map(|o| o.to_receive).sum();
        let total_incoming: u64 = out
            .results
            .iter()
            .flat_map(|o| o.incoming_srcs.iter().map(|&(_, c, _)| c as u64))
            .sum();
        assert_eq!(total_incoming, g.num_edges());
        // Every edge moved off its reading host (reading split == master
        // split under default config).
        assert_eq!(total_recv, g.num_edges());
    }

    #[test]
    fn mirrors_are_deduplicated() {
        let (_g, outcomes) = run_eec(4, 300, 6000);
        for o in &outcomes {
            let mut seen = std::collections::HashSet::new();
            for &(d, _) in &o.mirrors {
                assert!(seen.insert(d), "mirror {d} listed twice");
            }
        }
    }
}
