//! Phase 4 — graph allocation (paper §IV-B4).
//!
//! "When the edge assignment phase is complete, a host has a complete
//! picture of how many vertices and edges it will have in its partition."
//! This phase assigns deterministic local ids (masters first, then
//! mirrors, each ascending by global id), builds the global↔local maps,
//! and allocates the partition CSR so that construction can insert edges
//! in parallel as they arrive.

use std::sync::atomic::AtomicU64;

use cusp_galois::{exclusive_prefix_sum, ThreadPool};
use cusp_graph::{EdgeIdx, Node};

use crate::phases::edge_assign::EdgeAssignOutcome;
use crate::PartId;

/// Sentinel for a dense-index hole (no proxy with that global id).
const NO_PROXY: u32 = u32::MAX;

/// The allocated (but not yet filled) partition.
pub struct AllocOutcome {
    /// Local id → global id (masters segment then mirrors segment).
    pub local2global: Vec<Node>,
    /// Number of master proxies.
    pub num_masters: usize,
    /// Local id → partition of the vertex's master.
    pub master_of: Vec<PartId>,
    /// CSR offsets (`num_local + 1`).
    pub offsets: Vec<EdgeIdx>,
    /// Destination buffer to fill during construction (local ids).
    pub dests: Vec<Node>,
    /// Per-edge data buffer, same slots as `dests` (weighted inputs only).
    pub edge_data: Option<Vec<u32>>,
    /// Per-node insertion cursors for lock-free parallel filling.
    pub cursors: Vec<AtomicU64>,
    /// Global ids of all proxies, sorted ascending (fallback index).
    index_keys: Vec<Node>,
    /// Local id of `index_keys[i]`.
    index_locals: Vec<u32>,
    /// First global id covered by `dense_index` (when non-empty).
    index_lo: Node,
    /// Dense global → local table with [`NO_PROXY`] holes; empty when the
    /// proxy id span is too sparse to afford.
    dense_index: Vec<u32>,
}

impl AllocOutcome {
    /// Builds the global→local index over a finished `local2global` map.
    ///
    /// Construction resolves every received destination through
    /// [`AllocOutcome::local_of`] — once per edge — so the two-segment
    /// binary search this used to do is frozen into a dense window (holes
    /// hold [`NO_PROXY`]) whenever the proxy ids span an affordable range,
    /// with a single sorted-array search as the sparse fallback.
    fn build_index(local2global: &[Node]) -> (Vec<Node>, Vec<u32>, Node, Vec<u32>) {
        let mut pairs: Vec<(Node, u32)> = local2global
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, l as u32))
            .collect();
        pairs.sort_unstable_by_key(|&(g, _)| g);
        let keys: Vec<Node> = pairs.iter().map(|&(g, _)| g).collect();
        let locals: Vec<u32> = pairs.iter().map(|&(_, l)| l).collect();
        let (index_lo, dense) = match (keys.first(), keys.last()) {
            (Some(&lo), Some(&hi)) => {
                let span = (hi - lo) as usize + 1;
                // Partitions of real graphs have proxies blanketing the id
                // space; the cap only rejects degenerate sparse layouts.
                if span <= keys.len().saturating_mul(4).saturating_add(1024) {
                    let mut dense = vec![NO_PROXY; span];
                    for &(g, l) in &pairs {
                        dense[(g - lo) as usize] = l;
                    }
                    (lo, dense)
                } else {
                    (0, Vec::new())
                }
            }
            _ => (0, Vec::new()),
        };
        (keys, locals, index_lo, dense)
    }

    /// Local id of global vertex `v` (must exist in this partition).
    #[inline]
    pub fn local_of(&self, v: Node) -> u32 {
        if !self.dense_index.is_empty() {
            let off = v.wrapping_sub(self.index_lo) as usize;
            if off < self.dense_index.len() {
                let l = self.dense_index[off];
                if l != NO_PROXY {
                    return l;
                }
            }
        } else if let Ok(i) = self.index_keys.binary_search(&v) {
            return self.index_locals[i];
        }
        panic!("global vertex {v} has no proxy in this partition")
    }
}

/// Where the master list of a host comes from: either the stored list the
/// edge-assignment exchange carried, or — for pure master rules — the
/// closed-form owned range, which never had to be materialized or shipped.
///
/// Both feed the same allocation path; the spec only decides how the sorted
/// master-global list is produced.
pub enum MasterSpec<'a> {
    /// Masters were stored and exchanged (sorted ascending global ids).
    Stored(&'a [Node]),
    /// Pure master rule: this host's masters are exactly the range.
    PureRange(std::ops::Range<Node>),
}

/// Runs the allocation phase for host `me`.
pub fn allocate(
    me: usize,
    pool: &ThreadPool,
    spec: MasterSpec<'_>,
    outcome: &EdgeAssignOutcome,
    weighted: bool,
) -> AllocOutcome {
    let master_globals: Vec<Node> = match spec {
        MasterSpec::Stored(globals) => globals.to_vec(),
        MasterSpec::PureRange(range) => range.collect(),
    };
    build(me, pool, master_globals, outcome, weighted)
}

fn build(
    me: usize,
    pool: &ThreadPool,
    master_globals: Vec<Node>,
    outcome: &EdgeAssignOutcome,
    weighted: bool,
) -> AllocOutcome {
    debug_assert!(master_globals.windows(2).all(|w| w[0] < w[1]));
    let num_masters = master_globals.len();
    let in_masters = |v: Node| master_globals.binary_search(&v).is_ok();

    // --- Mirror proxies: incoming sources with remote masters plus the
    // destination mirrors reported by edge assignment. ---------------------
    let mut mirror_pairs: Vec<(Node, PartId)> = Vec::with_capacity(
        outcome.mirrors.len() + outcome.incoming_srcs.len() / 2,
    );
    for &(d, dm) in &outcome.mirrors {
        debug_assert_ne!(dm as usize, me);
        debug_assert!(!in_masters(d), "mirror {d} is also a master here");
        mirror_pairs.push((d, dm));
    }
    for &(s, _, sm) in &outcome.incoming_srcs {
        if sm as usize != me {
            mirror_pairs.push((s, sm));
        } else {
            debug_assert!(in_masters(s), "locally mastered source {s} missing from master set");
        }
    }
    mirror_pairs.sort_unstable();
    mirror_pairs.dedup();
    debug_assert!(
        mirror_pairs.windows(2).all(|w| w[0].0 != w[1].0),
        "a mirror was reported with two different master locations"
    );

    // --- Local id maps. ----------------------------------------------------
    let num_local = num_masters + mirror_pairs.len();
    let mut local2global = Vec::with_capacity(num_local);
    let mut master_of = Vec::with_capacity(num_local);
    local2global.extend_from_slice(&master_globals);
    master_of.extend(std::iter::repeat_n(me as PartId, num_masters));
    for &(v, m) in &mirror_pairs {
        local2global.push(v);
        master_of.push(m);
    }

    // --- Degrees and CSR skeleton. -----------------------------------------
    let (index_keys, index_locals, index_lo, dense_index) =
        AllocOutcome::build_index(&local2global);
    let alloc = AllocOutcome {
        local2global,
        num_masters,
        master_of,
        offsets: Vec::new(),
        dests: Vec::new(),
        edge_data: None,
        cursors: Vec::new(),
        index_keys,
        index_locals,
        index_lo,
        dense_index,
    };
    let mut degrees = vec![0u64; num_local];
    for &(s, c, _) in &outcome.incoming_srcs {
        degrees[alloc.local_of(s) as usize] += c as u64;
    }
    // Offsets via parallel prefix sum (§IV-C2).
    let mut offsets = vec![0u64; num_local + 1];
    let total = exclusive_prefix_sum(pool, &degrees, &mut offsets[..num_local]);
    offsets[num_local] = total;
    let cursors: Vec<AtomicU64> = offsets[..num_local]
        .iter()
        .map(|&o| AtomicU64::new(o))
        .collect();

    AllocOutcome {
        offsets,
        dests: vec![0 as Node; total as usize],
        edge_data: weighted.then(|| vec![0u32; total as usize]),
        cursors,
        ..alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> EdgeAssignOutcome {
        EdgeAssignOutcome {
            // srcs: node 2 (master here=part 0), node 7 (master on 1)
            incoming_srcs: vec![(2, 3, 0), (7, 2, 1)],
            // dest mirrors: 9 (master on 2)
            mirrors: vec![(9, 2)],
            my_master_nodes: Some(vec![2, 4]),
            to_receive: 2,
        }
    }

    #[test]
    fn allocation_layout() {
        let pool = ThreadPool::new(2);
        let o = outcome();
        let a = allocate(0, &pool, MasterSpec::Stored(o.my_master_nodes.as_deref().unwrap()), &o, false);
        // masters {2, 4}, mirrors {7, 9}
        assert_eq!(a.local2global, vec![2, 4, 7, 9]);
        assert_eq!(a.num_masters, 2);
        assert_eq!(a.master_of, vec![0, 0, 1, 2]);
        // degrees: node 2 → 3, node 7 → 2, others 0.
        assert_eq!(a.offsets, vec![0, 3, 3, 5, 5]);
        assert_eq!(a.dests.len(), 5);
        assert_eq!(a.local_of(2), 0);
        assert_eq!(a.local_of(9), 3);
    }

    #[test]
    fn pure_range_allocation() {
        let pool = ThreadPool::new(2);
        let o = EdgeAssignOutcome {
            incoming_srcs: vec![(5, 1, 0)],
            mirrors: vec![(20, 1)],
            my_master_nodes: None,
            to_receive: 0,
        };
        let a = allocate(0, &pool, MasterSpec::PureRange(5..8), &o, true);
        assert_eq!(a.local2global, vec![5, 6, 7, 20]);
        assert_eq!(a.num_masters, 3);
        assert_eq!(a.master_of, vec![0, 0, 0, 1]);
        assert_eq!(a.offsets, vec![0, 1, 1, 1, 1]);
        assert_eq!(a.edge_data.as_ref().map(Vec::len), Some(1));
    }

    #[test]
    fn sparse_proxy_ids_use_fallback_index() {
        // Ids scattered across the u32 space exceed the dense-window cap,
        // exercising the sorted-array fallback of local_of.
        let pool = ThreadPool::new(1);
        let o = EdgeAssignOutcome {
            incoming_srcs: vec![(0, 1, 0), (500_000_000, 2, 1)],
            mirrors: vec![(1_000_000_000, 2)],
            my_master_nodes: Some(vec![0, 1]),
            to_receive: 2,
        };
        let a = allocate(0, &pool, MasterSpec::Stored(o.my_master_nodes.as_deref().unwrap()), &o, false);
        assert_eq!(a.local2global, vec![0, 1, 500_000_000, 1_000_000_000]);
        assert_eq!(a.local_of(0), 0);
        assert_eq!(a.local_of(1), 1);
        assert_eq!(a.local_of(500_000_000), 2);
        assert_eq!(a.local_of(1_000_000_000), 3);
        assert_eq!(a.offsets, vec![0, 1, 1, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "no proxy in this partition")]
    fn local_of_rejects_absent_vertex() {
        let pool = ThreadPool::new(1);
        let a = allocate(
            0,
            &pool,
            MasterSpec::PureRange(0..2),
            &EdgeAssignOutcome {
                incoming_srcs: vec![],
                mirrors: vec![],
                my_master_nodes: None,
                to_receive: 0,
            },
            false,
        );
        let _ = a.local_of(99);
    }
}
