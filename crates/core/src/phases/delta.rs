//! Incremental (delta) repartitioning: maintain a partition under a
//! mutation batch instead of rebuilding it from scratch.
//!
//! A partition produced by [`partition`] is a pure function of the input
//! graph and the policy. When the graph mutates (a [`GraphEvent`] batch
//! from the WAL), most of that function's inputs are unchanged: a vertex
//! whose out-edges, master, and weights did not move keeps exactly the
//! partition-side state it had. [`partition_delta`] exploits this by
//! re-running only master re-resolution, edge assignment, and construction
//! for the *dirty* vertices, while every clean vertex keeps its master,
//! its mirrors, and its CSR slots — clean edges are copied out of the
//! previous partition instead of being re-decided and re-shipped.
//!
//! # Dirty-set rules
//!
//! A vertex is dirty when any of its partitioning inputs changed:
//!
//! * it is the **source of a batch event** (its out-degree or out-edge
//!   payload changed, so degree-sensitive rules like `Hybrid` may re-decide
//!   *all* of its edges);
//! * it is a **new vertex** (`old_n..new_n` — it had no master before);
//! * its **pure master moved** (edge-balanced boundaries shift with the
//!   edge distribution, so a mutation can re-home vertices far from the
//!   batch).
//!
//! An *edge* is dirty iff either endpoint is dirty. This is sound because
//! every stateless edge rule in the catalog is a function of
//! `(out_degree(src), src_master, dst_master, parts)` only — all four are
//! unchanged for a clean edge, so its owner (and the mirrors it induces)
//! cannot move.
//!
//! # Scope
//!
//! The delta path requires a **pure master rule** (re-resolution is
//! replicated computation, §IV-D5) and a **stateless edge rule** (per-edge
//! decisions independent of history). Stateful policies (HDRF, LDG,
//! Fennel-family masters) fall back to a full re-partition — still
//! correct, and under `deterministic_sync` still fingerprint-identical,
//! just not incremental.
//!
//! Under `CuspConfig::deterministic_sync` the delta result is
//! bit-identical to a full re-partition of the mutated graph: the per-host
//! per-source edge multiset is reproduced exactly (kept edges keep their
//! owners, dirty edges are re-decided with the same inputs a full run
//! would use), allocation assigns local ids deterministically from that
//! multiset, and the canonical adjacency sort erases insertion order.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use cusp_galois::{do_all_items, do_all_with_tid, PerThread, DEFAULT_GRAIN};
use cusp_graph::{Csr, GraphEvent, Node};
use cusp_net::{Comm, SendBuffers, WireReader, WireWriter};

use crate::config::OutputFormat;
use crate::dist_graph::{DistGraph, PartitionClass};
use crate::phases::alloc::MasterSpec;
use crate::phases::construct::{
    count_edges_in, insert_message, insert_record, sort_adjacency, DataPtr, DestPtr,
};
use crate::phases::driver::{partition, PartitionOutput};
use crate::phases::edge_assign::EdgeAssignOutcome;
use crate::phases::master::{pure_masters, ResolvedMasters};
use crate::phases::pipeline::{AllocPhase, Phase, PhaseCtx, ReadPhase, SliceData};
use crate::policy::{EdgeRule, MasterRule, Setup};
use crate::props::LocalProps;
use crate::state::PartitionState;
use crate::tags::{META_EMPTY, META_FULL, TAG_EDGE_META, TAG_EDGES};
use crate::{CuspConfig, GraphSource, PartId};

/// Dense bitset over global vertex ids marking the dirty set.
pub struct DirtySet {
    bits: Vec<u64>,
    count: u64,
}

impl DirtySet {
    fn new(n: u64) -> Self {
        DirtySet { bits: vec![0u64; (n as usize).div_ceil(64)], count: 0 }
    }

    fn insert(&mut self, v: Node) {
        let (w, b) = (v as usize / 64, v as usize % 64);
        if self.bits[w] & (1 << b) == 0 {
            self.bits[w] |= 1 << b;
            self.count += 1;
        }
    }

    fn insert_range(&mut self, r: std::ops::Range<Node>) {
        for v in r {
            self.insert(v);
        }
    }

    /// Is global vertex `v` dirty?
    #[inline]
    pub fn contains(&self, v: Node) -> bool {
        let (w, b) = (v as usize / 64, v as usize % 64);
        w < self.bits.len() && self.bits[w] & (1 << b) != 0
    }

    /// Number of dirty vertices.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when no vertex is dirty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Computes the dirty set for `batch` against the old/new pure master
/// rules (see the module docs for the three dirty-set rules). Every host
/// computes an identical set — the inputs are all replicated.
pub fn dirty_set<MR: MasterRule>(
    old_rule: &MR,
    new_rule: &MR,
    old_n: u64,
    new_n: u64,
    parts: PartId,
    batch: &[GraphEvent],
) -> DirtySet {
    debug_assert!(new_n >= old_n, "graphs never shrink under a WAL batch");
    let mut dirty = DirtySet::new(new_n);
    for ev in batch {
        dirty.insert(ev.src());
    }
    dirty.insert_range(old_n as Node..new_n as Node);
    // Master shifts: a vertex whose new owner differs from its old owner.
    // Both rules assign contiguous per-part ranges, so the shifted vertices
    // are interval differences — `new_range(p) \ old_range(p)` per part
    // covers every shifted vertex exactly once (each vertex has one new
    // owner). Vertices beyond `old_n` are already dirty via the range rule.
    for p in 0..parts {
        let old_r = old_rule.pure_owned_range(p);
        let new_r = new_rule.pure_owned_range(p);
        if old_r == new_r {
            continue;
        }
        dirty.insert_range(new_r.start..new_r.end.min(old_r.start.max(new_r.start)));
        dirty.insert_range(old_r.end.max(new_r.start).min(new_r.end)..new_r.end);
    }
    dirty
}

/// Output of the delta edge-assignment phase: the synthesized
/// [`EdgeAssignOutcome`] plus the number of clean edges this host reuses
/// from its previous partition.
struct DeltaAssignOutcome {
    ea: EdgeAssignOutcome,
    reused_edges: u64,
}

/// Delta edge assignment: tallies kept (clean) edges from the previous
/// partition locally and exchanges only the dirty-edge metadata — sparse
/// `(src, count)` pairs instead of the full positional count vectors.
struct DeltaAssignPhase<'a, ER: EdgeRule> {
    setup: &'a Setup,
    masters: &'a ResolvedMasters,
    rule: &'a ER,
    estate: &'a ER::State,
    prev: &'a DistGraph,
    prev_csc: bool,
    dirty: &'a DirtySet,
}

impl<'a, ER: EdgeRule> Phase for DeltaAssignPhase<'a, ER> {
    const NAME: &'static str = "edge_assign";
    type Input = &'a mut SliceData;
    type Output = DeltaAssignOutcome;

    fn run(self, ctx: &mut PhaseCtx<'_>, data: &'a mut SliceData) -> DeltaAssignOutcome {
        let comm = ctx.comm;
        let me = comm.host();
        let k = comm.num_hosts();
        let lo = data.node_lo();
        let local_n = data.num_nodes();
        let masters = self.masters;
        let dirty = self.dirty;

        // --- Kept (clean) edges from the previous partition. -------------
        // Both endpoints clean ⇒ the edge's owner is unchanged ⇒ it stays
        // on this host. Positional tallies sized by the (replicated) global
        // node count keep the walk a lock-free parallel pass: `incoming[v]`
        // counts kept edges sourced at `v`, `mirror_bits` marks proxies
        // mastered elsewhere (deduplication by construction — no sort).
        let n_glob = self.setup.num_nodes as usize;
        let incoming: Vec<AtomicU32> = (0..n_glob).map(|_| AtomicU32::new(0)).collect();
        let mirror_bits: Vec<AtomicU64> =
            (0..n_glob.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        let mark_mirror = |v: Node| {
            mirror_bits[v as usize / 64].fetch_or(1 << (v % 64), Ordering::Relaxed);
        };
        let prev = self.prev;
        let csc = self.prev_csc;
        let reused_total = AtomicU64::new(0);
        do_all_with_tid(&ctx.pool, prev.num_local(), DEFAULT_GRAIN, |_tid, row| {
            let edges = prev.graph.edges(row as Node);
            if edges.is_empty() {
                return;
            }
            let g_row = prev.local2global[row];
            if dirty.contains(g_row) {
                return; // every edge of a dirty row has a dirty endpoint
            }
            let mut kept = 0u32;
            if !csc {
                // Row is the source: one tally update covers the whole run.
                for &other in edges {
                    let g_other = prev.local2global[other as usize];
                    if dirty.contains(g_other) {
                        continue;
                    }
                    kept += 1;
                    if masters.of(g_other) as usize != me {
                        mark_mirror(g_other);
                    }
                }
                if kept > 0 {
                    incoming[g_row as usize].fetch_add(kept, Ordering::Relaxed);
                }
            } else {
                // Row is the destination: tally each stored source; the
                // mirror check applies to the row itself, once.
                for &other in edges {
                    let g_other = prev.local2global[other as usize];
                    if dirty.contains(g_other) {
                        continue;
                    }
                    kept += 1;
                    incoming[g_other as usize].fetch_add(1, Ordering::Relaxed);
                }
                if kept > 0 && masters.of(g_row) as usize != me {
                    mark_mirror(g_row);
                }
            }
            if kept > 0 {
                reused_total.fetch_add(kept as u64, Ordering::Relaxed);
            }
        });
        let reused_edges = reused_total.load(Ordering::Relaxed);

        // --- Dirty edges from the mutated slice (local tally). ------------
        // Same positional tally as the full phase, but only edges with a
        // dirty endpoint are decided; clean edges are skipped unseen.
        let counts: Vec<AtomicU32> = (0..k * local_n).map(|_| AtomicU32::new(0)).collect();
        let mirror_lists: PerThread<Vec<(PartId, Node)>> =
            PerThread::new(&ctx.pool, |_| Vec::new());
        data.for_each_chunk(|chunk| {
            let prop = LocalProps::new(
                self.setup.num_nodes,
                self.setup.num_edges,
                self.setup.parts,
                chunk,
            );
            let base = (chunk.node_lo - lo) as usize;
            do_all_with_tid(&ctx.pool, chunk.num_nodes(), DEFAULT_GRAIN, |tid, j| {
                let s = chunk.node_lo + j as Node;
                let edges = chunk.edges(s);
                if edges.is_empty() {
                    return;
                }
                let s_dirty = dirty.contains(s);
                let sm = masters.of(s);
                mirror_lists.with(tid, |out| {
                    for &d in edges {
                        if !s_dirty && !dirty.contains(d) {
                            continue;
                        }
                        let dm = masters.of(d);
                        let h = self.rule.get_edge_owner(&prop, s, d, sm, dm, self.estate);
                        debug_assert!(h < self.setup.parts);
                        counts[h as usize * local_n + base + j].fetch_add(1, Ordering::Relaxed);
                        if h != dm {
                            out.push((h, d));
                        }
                    }
                });
            });
        });
        let mut flat: Vec<(PartId, Node)> =
            mirror_lists.into_inner().into_iter().flatten().collect();
        flat.sort_unstable();
        flat.dedup();
        let mut mirrors_for: Vec<Vec<Node>> = vec![Vec::new(); k];
        for (h, d) in flat {
            mirrors_for[h as usize].push(d);
        }

        // --- Exchange dirty-edge metadata (sparse pairs + mirror ids). ----
        // Masters are pure, so receivers recompute them; only ids travel.
        for peer in 0..k {
            if peer == me {
                continue;
            }
            let count_slice = &counts[peer * local_n..(peer + 1) * local_n];
            let mut pairs: Vec<u32> = Vec::new();
            for (i, c) in count_slice.iter().enumerate() {
                let c = c.load(Ordering::Relaxed);
                if c > 0 {
                    pairs.push(lo + i as Node);
                    pairs.push(c);
                }
            }
            if pairs.is_empty() && mirrors_for[peer].is_empty() {
                let mut w = WireWriter::with_capacity(1);
                w.put_u8(META_EMPTY);
                comm.send_bytes(peer, TAG_EDGE_META, w.finish());
                continue;
            }
            let mut w = WireWriter::with_capacity(pairs.len() * 4 + mirrors_for[peer].len() * 4 + 32);
            w.put_u8(META_FULL);
            w.put_u64((pairs.len() / 2) as u64);
            w.put_u32_raw_slice(&pairs);
            w.put_u64(mirrors_for[peer].len() as u64);
            w.put_u32_raw_slice(&mirrors_for[peer]);
            comm.send_bytes(peer, TAG_EDGE_META, w.finish());
        }

        // --- Local dirty contributions (h == me). -------------------------
        let my_counts = &counts[me * local_n..(me + 1) * local_n];
        for (i, c) in my_counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c > 0 {
                incoming[(lo + i as Node) as usize].fetch_add(c, Ordering::Relaxed);
            }
        }
        for &d in &mirrors_for[me] {
            mark_mirror(d);
        }

        // --- Receive peer dirty metadata. ---------------------------------
        let mut to_receive = 0u64;
        for _ in 0..k.saturating_sub(1) {
            let (_src, payload) = comm.recv_any(TAG_EDGE_META);
            let mut r = WireReader::new(payload);
            let kind = r.get_u8().expect("empty delta metadata message");
            if kind == META_EMPTY {
                continue;
            }
            let np = r.get_u64().expect("malformed delta pair count") as usize;
            let mut pairs = vec![0u32; np * 2];
            r.get_u32_into(&mut pairs).expect("malformed delta pairs");
            for pair in pairs.chunks_exact(2) {
                let (s, c) = (pair[0], pair[1]);
                incoming[s as usize].fetch_add(c, Ordering::Relaxed);
                to_receive += c as u64;
            }
            let nm = r.get_u64().expect("malformed delta mirror count") as usize;
            let mut run = vec![0u32; nm];
            r.get_u32_into(&mut run).expect("malformed delta mirrors");
            for d in run {
                mark_mirror(d);
            }
        }

        // --- Synthesize the outcome allocation consumes. ------------------
        // Both tallies are positional, so scanning them yields the sorted
        // vectors directly — no hash drain, no sort, no dedup.
        let mut incoming_srcs: Vec<(Node, u32, PartId)> = Vec::new();
        for (v, c) in incoming.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c > 0 {
                incoming_srcs.push((v as Node, c, masters.of(v as Node)));
            }
        }
        let mut mirrors: Vec<(Node, PartId)> = Vec::new();
        for (w, bits) in mirror_bits.iter().enumerate() {
            let mut b = bits.load(Ordering::Relaxed);
            while b != 0 {
                let v = (w * 64 + b.trailing_zeros() as usize) as Node;
                b &= b - 1;
                mirrors.push((v, masters.of(v)));
            }
        }

        DeltaAssignOutcome {
            ea: EdgeAssignOutcome {
                incoming_srcs,
                mirrors,
                my_master_nodes: None,
                to_receive,
            },
            reused_edges,
        }
    }
}

/// Invokes `f(src, dst, edge_index)` (global ids, previous-partition edge
/// index) for every edge of `prev` whose endpoints are both clean.
///
/// `csc` says the previous partition stores in-edges (the
/// `OutputFormat::Csc` transpose), in which case each row is the edge's
/// *destination* and each stored id its source.
fn for_each_kept_edge(
    prev: &DistGraph,
    csc: bool,
    dirty: &DirtySet,
    mut f: impl FnMut(Node, Node, usize),
) {
    for row in 0..prev.num_local() {
        let edges = prev.graph.edges(row as Node);
        if edges.is_empty() {
            continue;
        }
        let g_row = prev.local2global[row];
        if dirty.contains(g_row) {
            continue; // every edge of a dirty row has a dirty endpoint
        }
        let e0 = prev.graph.first_edge(row as Node) as usize;
        for (i, &other) in edges.iter().enumerate() {
            let g_other = prev.local2global[other as usize];
            if dirty.contains(g_other) {
                continue;
            }
            let (src, dst) = if csc { (g_other, g_row) } else { (g_row, g_other) };
            f(src, dst, e0 + i);
        }
    }
}

/// Delta construction: copies kept edges out of the previous partition
/// (no decision, no communication) and streams only dirty edges through
/// the wire protocol — byte-identical record format to the full phase.
struct DeltaConstructPhase<'a, ER: EdgeRule> {
    setup: &'a Setup,
    masters: &'a ResolvedMasters,
    rule: &'a ER,
    estate: &'a ER::State,
    prev: &'a DistGraph,
    prev_csc: bool,
    dirty: &'a DirtySet,
    to_receive: u64,
}

impl<'a, ER: EdgeRule> Phase for DeltaConstructPhase<'a, ER> {
    const NAME: &'static str = "construct";
    type Input = (&'a mut SliceData, &'a mut crate::phases::alloc::AllocOutcome);
    type Output = (Csr, Option<Vec<u32>>);

    fn run(self, ctx: &mut PhaseCtx<'_>, (data, alloc): Self::Input) -> Self::Output {
        let comm = ctx.comm;
        let me = comm.host();
        let k = comm.num_hosts();
        let weighted = data.weighted();
        let scalar = ctx.cfg.scalar_codec;
        let dirty = self.dirty;
        let masters = self.masters;
        debug_assert_eq!(weighted, alloc.edge_data.is_some());
        debug_assert_eq!(weighted, self.prev.edge_data.is_some());

        let dest_ptr = DestPtr(alloc.dests.as_mut_ptr());
        let data_ptr = DataPtr(
            alloc
                .edge_data
                .as_mut()
                .map_or(std::ptr::null_mut(), |d| d.as_mut_ptr()),
        );
        let alloc_ref: &crate::phases::alloc::AllocOutcome = alloc;

        // --- 1. Copy kept edges from the previous partition. --------------
        // Pure memory movement: globalize the destination, carry the weight,
        // insert into the freshly reserved slots. No rule, no wire.
        if !self.prev_csc {
            // Rows are sources: each clean row's kept run is one record,
            // and the atomic cursors make the inserts safe to parallelize.
            let prev = self.prev;
            let scratch: PerThread<(Vec<Node>, Vec<u32>)> =
                PerThread::new(&ctx.pool, |_| (Vec::new(), Vec::new()));
            do_all_with_tid(&ctx.pool, prev.num_local(), DEFAULT_GRAIN, |tid, row| {
                let edges = prev.graph.edges(row as Node);
                if edges.is_empty() {
                    return;
                }
                let g_row = prev.local2global[row];
                if dirty.contains(g_row) {
                    return;
                }
                let e0 = prev.graph.first_edge(row as Node) as usize;
                scratch.with(tid, |(dsts, ws)| {
                    dsts.clear();
                    ws.clear();
                    for (i, &other) in edges.iter().enumerate() {
                        let g_other = prev.local2global[other as usize];
                        if dirty.contains(g_other) {
                            continue;
                        }
                        dsts.push(g_other);
                        if let Some(d) = &prev.edge_data {
                            ws.push(d[e0 + i]);
                        }
                    }
                    if !dsts.is_empty() {
                        insert_record(
                            alloc_ref,
                            &dest_ptr,
                            &data_ptr,
                            g_row,
                            dsts,
                            weighted.then_some(ws.as_slice()),
                        );
                    }
                });
            });
        } else {
            // CSC rows are destinations, so sources vary within a row —
            // keep the grouped sequential walk (runs are consecutive
            // same-source spans of the transposed adjacency).
            let mut dsts: Vec<Node> = Vec::new();
            let mut ws: Vec<u32> = Vec::new();
            let mut run_src: Option<Node> = None;
            let flush =
                |src: Option<Node>, dsts: &mut Vec<Node>, ws: &mut Vec<u32>| {
                    if let Some(s) = src {
                        if !dsts.is_empty() {
                            insert_record(
                                alloc_ref,
                                &dest_ptr,
                                &data_ptr,
                                s,
                                dsts,
                                weighted.then_some(ws.as_slice()),
                            );
                        }
                    }
                    dsts.clear();
                    ws.clear();
                };
            for_each_kept_edge(self.prev, self.prev_csc, dirty, |src, dst, e| {
                if run_src != Some(src) {
                    flush(run_src, &mut dsts, &mut ws);
                    run_src = Some(src);
                }
                dsts.push(dst);
                if let Some(d) = &self.prev.edge_data {
                    ws.push(d[e]);
                }
            });
            flush(run_src, &mut dsts, &mut ws);
        }

        // --- 2. Re-decide and route dirty edges only. ----------------------
        let threshold = ctx.cfg.effective_buffer_threshold(k, data.num_edges());
        struct ThreadState {
            buffers: SendBuffers,
            buckets: Vec<Vec<Node>>,
            wbuckets: Vec<Vec<u32>>,
        }
        let mut threads: PerThread<ThreadState> = PerThread::new(&ctx.pool, |_| ThreadState {
            buffers: SendBuffers::new(k, threshold, TAG_EDGES),
            buckets: vec![Vec::new(); k],
            wbuckets: vec![Vec::new(); k],
        });
        let mut received = 0u64;
        let mut batch: Vec<bytes::Bytes> = Vec::new();
        data.for_each_chunk(|chunk| {
            let prop = LocalProps::new(
                self.setup.num_nodes,
                self.setup.num_edges,
                self.setup.parts,
                chunk,
            );
            do_all_with_tid(&ctx.pool, chunk.num_nodes(), DEFAULT_GRAIN, |tid, j| {
                let s = chunk.node_lo + j as Node;
                let edges = chunk.edges(s);
                if edges.is_empty() {
                    return;
                }
                let s_dirty = dirty.contains(s);
                let sm = masters.of(s);
                let edge_data = chunk.edge_data(s);
                threads.with(tid, |ts| {
                    for b in ts.buckets.iter_mut() {
                        b.clear();
                    }
                    for b in ts.wbuckets.iter_mut() {
                        b.clear();
                    }
                    for (i, &d) in edges.iter().enumerate() {
                        if !s_dirty && !dirty.contains(d) {
                            continue;
                        }
                        let dm = masters.of(d);
                        let h = self.rule.get_edge_owner(&prop, s, d, sm, dm, self.estate);
                        ts.buckets[h as usize].push(d);
                        if let Some(data) = edge_data {
                            ts.wbuckets[h as usize].push(data[i]);
                        }
                    }
                    for (h, bucket) in ts.buckets.iter().enumerate() {
                        if bucket.is_empty() {
                            continue;
                        }
                        let wbucket = weighted.then(|| ts.wbuckets[h].as_slice());
                        if h == me {
                            insert_record(alloc_ref, &dest_ptr, &data_ptr, s, bucket, wbucket);
                        } else {
                            ts.buffers.record(comm, h, |w| {
                                w.put_u32(s);
                                w.put_u32(bucket.len() as u32);
                                if scalar {
                                    for &d in bucket {
                                        w.put_u32(d);
                                    }
                                    if let Some(ws) = wbucket {
                                        for &x in ws {
                                            w.put_u32(x);
                                        }
                                    }
                                } else {
                                    w.put_u32_raw_slice(bucket);
                                    if let Some(ws) = wbucket {
                                        w.put_u32_raw_slice(ws);
                                    }
                                }
                            });
                        }
                    }
                });
            });
            for ts in threads.iter_mut() {
                ts.buffers.flush_all(comm);
            }
            while received < self.to_receive {
                match comm.try_recv_any(TAG_EDGES) {
                    Some((_s, p)) => {
                        received += count_edges_in(&p, weighted, scalar);
                        batch.push(p);
                    }
                    None => break,
                }
            }
            if !batch.is_empty() {
                do_all_items(&ctx.pool, &batch, 1, |payload| {
                    insert_message(alloc_ref, &dest_ptr, &data_ptr, payload.clone(), weighted, scalar);
                });
                batch.clear();
            }
        });
        drop(threads);

        // --- 3. Drain the remaining dirty-edge records. --------------------
        while received < self.to_receive {
            let (_src, payload) = comm.recv_any(TAG_EDGES);
            received += count_edges_in(&payload, weighted, scalar);
            batch.push(payload);
            while received < self.to_receive {
                match comm.try_recv_any(TAG_EDGES) {
                    Some((_s, p)) => {
                        received += count_edges_in(&p, weighted, scalar);
                        batch.push(p);
                    }
                    None => break,
                }
            }
            do_all_items(&ctx.pool, &batch, 1, |payload| {
                insert_message(alloc_ref, &dest_ptr, &data_ptr, payload.clone(), weighted, scalar);
            });
            batch.clear();
        }
        assert_eq!(received, self.to_receive, "received more edges than expected");

        for (l, cursor) in alloc.cursors.iter().enumerate() {
            assert_eq!(
                cursor.load(Ordering::Relaxed),
                alloc.offsets[l + 1],
                "node with local id {l} is missing edges after delta construction"
            );
        }

        let mut dests = std::mem::take(&mut alloc.dests);
        let mut edge_data = alloc.edge_data.take();
        if ctx.cfg.deterministic_sync {
            sort_adjacency(&alloc.offsets, &mut dests, edge_data.as_deref_mut());
        }
        let csr = Csr::from_parts(alloc.offsets.clone(), dests);
        match (ctx.cfg.output, edge_data) {
            (OutputFormat::Csr, edge_data) => (csr, edge_data),
            (OutputFormat::Csc, None) => (csr.transpose(), None),
            (OutputFormat::Csc, Some(d)) => {
                let (t, td) = csr.transpose_with_data(&d);
                (t, Some(td))
            }
        }
    }
}

/// Incrementally repartitions a mutated graph against the previous run.
///
/// `source` must be the **mutated** graph (the previous input with `batch`
/// applied, e.g. via [`cusp_graph::Csr::apply_batch`]); `prev` is this
/// host's output from the previous [`partition`] (or `partition_delta`)
/// run over the pre-mutation graph, and `batch` the applied events —
/// identical on every host. `build` must be the same deterministic policy
/// constructor the previous run used; it is evaluated against both the old
/// and the new [`Setup`].
///
/// Policies with a stateful edge rule or a non-pure master rule (and runs
/// with `force_stored_masters`) fall back to a full re-partition; the
/// returned accounting (`dirty_vertices == num_nodes`,
/// `reused_edges == 0`) makes the fallback observable.
///
/// Under `deterministic_sync` the result is bit-identical (same
/// [`crate::verify::partition_fingerprint`]) to a full re-partition of the
/// mutated graph.
pub fn partition_delta<MR, ER>(
    comm: &Comm,
    source: GraphSource,
    cfg: &CuspConfig,
    class: PartitionClass,
    build: impl Fn(&Setup) -> (MR, ER),
    prev: &PartitionOutput,
    batch: &[GraphEvent],
) -> PartitionOutput
where
    MR: MasterRule + Clone + 'static,
    ER: EdgeRule,
{
    // Delta needs pure masters (re-resolution is replicated computation)
    // and a stateless edge rule (decisions independent of history). The
    // probe runs against the old setup — identical on every host, so all
    // hosts take the same branch.
    let (old_rule, _) = build(&prev.setup);
    if !<ER as EdgeRule>::State::STATELESS || !old_rule.is_pure() || cfg.force_stored_masters {
        return partition(comm, source, cfg, class, build);
    }

    let me = comm.host();
    let mut ctx = PhaseCtx::new(comm, cfg);

    // Phase 1: re-read the mutated graph (the slice is process memory, not
    // durable state — reading always re-runs, exactly as in the full driver).
    let read = ctx.run_phase(ReadPhase { source: &source }, ());
    let setup = read.setup;
    let mut data = read.data;
    debug_assert_eq!(setup.parts, prev.setup.parts, "host count changed between runs");

    // Phase 2 (master re-resolution) is free: the rule is pure, so the new
    // assignment is replicated computation — no protocol, no barrier.
    let (master_rule, edge_rule) = build(&setup);
    debug_assert!(master_rule.is_pure(), "policy purity changed between runs");
    let masters = pure_masters(&master_rule);

    let dirty = dirty_set(
        &old_rule,
        &master_rule,
        prev.setup.num_nodes,
        setup.num_nodes,
        setup.parts,
        batch,
    );
    let dirty_vertices = dirty.len();
    let prev_csc = cfg.output == OutputFormat::Csc;

    let estate = <ER as EdgeRule>::State::new(setup.parts);

    // Phase 3: delta edge assignment (dirty edges decided, clean tallied).
    let d = ctx.run_phase(
        DeltaAssignPhase {
            setup: &setup,
            masters: &masters,
            rule: &edge_rule,
            estate: &estate,
            prev: &prev.dist_graph,
            prev_csc,
            dirty: &dirty,
        },
        &mut data,
    );

    // Phase 4: allocation — unchanged; the synthesized outcome feeds the
    // exact same deterministic local-id layout a full run would compute.
    let spec = MasterSpec::PureRange(master_rule.pure_owned_range(me as PartId));
    let mut alloc = ctx.run_phase(AllocPhase { spec, weighted: data.weighted() }, &d.ea);

    // Phase 5: delta construction (kept edges copied, dirty edges shipped).
    let (graph, edge_data) = ctx.run_phase(
        DeltaConstructPhase {
            setup: &setup,
            masters: &masters,
            rule: &edge_rule,
            estate: &estate,
            prev: &prev.dist_graph,
            prev_csc,
            dirty: &dirty,
            to_receive: d.ea.to_receive,
        },
        (&mut data, &mut alloc),
    );

    ctx.times.arena_hw_bytes = data.arena_hw_bytes();

    PartitionOutput {
        dist_graph: DistGraph {
            part_id: me as PartId,
            num_parts: setup.parts,
            global_nodes: setup.num_nodes,
            global_edges: setup.num_edges,
            num_masters: alloc.num_masters,
            local2global: alloc.local2global,
            master_of: alloc.master_of,
            graph,
            edge_data,
            class,
        },
        times: ctx.times,
        peak_resident_edges: data.peak_resident_edges(),
        setup,
        dirty_vertices,
        reused_edges: d.reused_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::masters::Contiguous;
    use cusp_graph::ReadSplit;
    use std::sync::Arc;

    fn setup(n: u64, parts: PartId) -> Setup {
        Setup {
            num_nodes: n,
            num_edges: 10 * n,
            parts,
            eb_boundaries: Arc::new(
                (0..=parts as u64).map(|p| p * n / parts as u64).collect(),
            ),
            read_splits: Arc::new(vec![ReadSplit { lo: 0, hi: n }]),
        }
    }

    #[test]
    fn dirty_set_marks_sources_growth_and_shifts() {
        let old = Contiguous::new(&setup(100, 4)); // blocks of 25
        let new = Contiguous::new(&setup(110, 4)); // blocks of 28
        let batch = [
            GraphEvent::AddEdge { src: 3, dst: 7, weight: None },
            GraphEvent::RemoveEdge { src: 90, dst: 1 },
        ];
        let d = dirty_set(&old, &new, 100, 110, 4, &batch);
        // Event sources.
        assert!(d.contains(3) && d.contains(90));
        // Grown range.
        for v in 100..110 {
            assert!(d.contains(v), "grown node {v} must be dirty");
        }
        // Shifted masters: old blocks 25, new blocks 28 → e.g. node 25
        // moved from part 1 to part 0; node 26 likewise.
        assert_eq!(old.pure_master(25), 1);
        assert_eq!(new.pure_master(25), 0);
        assert!(d.contains(25));
        // A node with unchanged inputs stays clean: node 5 is in part 0
        // both before and after and is not an event source.
        assert_eq!(old.pure_master(5), new.pure_master(5));
        assert!(!d.contains(5));
        assert!(d.len() >= 12);
        assert!(!d.is_empty());
    }

    #[test]
    fn dirty_set_is_empty_for_identity() {
        let rule = Contiguous::new(&setup(64, 4));
        let d = dirty_set(&rule, &rule, 64, 64, 4, &[]);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        for v in 0..64 {
            assert!(!d.contains(v));
        }
    }

    #[test]
    fn kept_edge_walk_respects_orientation() {
        use crate::dist_graph::PartitionClass;
        // Partition over globals {2, 5, 9}: edges 2->5, 2->9, 5->9.
        let graph = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let prev = DistGraph {
            part_id: 0,
            num_parts: 1,
            global_nodes: 10,
            global_edges: 3,
            num_masters: 3,
            local2global: vec![2, 5, 9],
            master_of: vec![0, 0, 0],
            graph,
            edge_data: Some(vec![20, 21, 22]),
            class: PartitionClass::OutEdgeCut,
        };
        let mut dirty = DirtySet::new(10);
        dirty.insert(5);
        // CSR orientation: rows are sources; only 2->9 survives (5 dirty).
        let mut seen = Vec::new();
        for_each_kept_edge(&prev, false, &dirty, |s, d, e| seen.push((s, d, e)));
        assert_eq!(seen, vec![(2, 9, 1)]);
        // CSC orientation: rows are destinations, so the same stored edges
        // read as 5->2, 9->2, 9->5; with 5 dirty the kept set is {9->2}.
        let mut seen = Vec::new();
        for_each_kept_edge(&prev, true, &dirty, |s, d, e| seen.push((s, d, e)));
        assert_eq!(seen, vec![(9, 2, 1)]);
    }
}
