//! The phase pipeline: a first-class [`Phase`] abstraction over the five
//! partitioning steps, plus the chunk-streaming slice the phases consume.
//!
//! The paper's Fig. 2 pipeline used to be hard-wired into one monolithic
//! driver body: five function calls, each preceded by an ad-hoc
//! `comm.set_phase` + `Instant::now()` pair and followed by a barrier.
//! This module makes the seams explicit:
//!
//! * [`PhaseCtx`] owns the per-host execution resources — comm handle,
//!   thread pool, config, and the per-phase wall-clock timers — and its
//!   [`PhaseCtx::run_phase`] harness tags communication, times the body,
//!   and places the inter-phase barrier. Because the tag is set by the
//!   harness itself, no phase traffic can ever land in the stats
//!   collector's `(untagged)` bucket.
//! * [`Phase`] is the unit of pipeline structure: a name (which doubles as
//!   the comm accounting tag), a barrier policy, and a typed
//!   `Input -> Output` transition. The five concrete phases are
//!   [`ReadPhase`], [`MasterPhase`], [`EdgeAssignPhase`], [`AllocPhase`]
//!   and [`ConstructPhase`].
//! * [`SliceData`] is what the reading phase hands to the edge-walking
//!   phases: either the monolithic resident [`GraphSlice`] (the
//!   `chunk_edges: None` identity case) or a [`ChunkedSlice`] stream of
//!   node-aligned bounded chunks, so peak resident edge state is O(chunk)
//!   instead of O(slice).
//! * [`ReplayReady`] is the structural form of the §IV-B4 replay
//!   invariant: [`ConstructPhase`] cannot be built without the token, and
//!   the token's only constructor resets the edge-rule state — the reset
//!   can no longer be forgotten by a driver edit.

use std::time::Instant;

use cusp_galois::ThreadPool;
use cusp_graph::{ChunkedSlice, Csr, GraphSlice, Node};
use cusp_net::Comm;

use crate::config::{CuspConfig, PhaseTimes};
use crate::phases::alloc::{allocate, AllocOutcome, MasterSpec};
use crate::phases::construct::construct;
use crate::phases::edge_assign::{assign_edges, EdgeAssignOutcome};
use crate::phases::master::{assign_masters, pure_masters, ResolvedMasters};
use crate::phases::read::{read_phase, ReadOutcome};
use crate::policy::{EdgeRule, MasterRule, Setup};
use crate::state::PartitionState;
use crate::GraphSource;

/// The host's read range as the edge-walking phases consume it: one
/// resident slice, or a bounded-memory chunk stream over the same range.
pub enum SliceData {
    /// The whole slice is resident (`CuspConfig::chunk_edges = None`).
    Whole(GraphSlice),
    /// Only the offset array is resident; edge payloads are materialized
    /// one bounded chunk at a time. Boxed: the stream's bookkeeping
    /// (arena, prefetch state, resident offsets) dwarfs the `Whole`
    /// variant, and the enum travels by value between phases.
    Chunked(Box<ChunkedSlice>),
}

impl SliceData {
    /// First node of the range (global id).
    pub fn node_lo(&self) -> Node {
        match self {
            SliceData::Whole(s) => s.node_lo,
            SliceData::Chunked(c) => c.node_lo(),
        }
    }

    /// One past the last node of the range (global id).
    pub fn node_hi(&self) -> Node {
        match self {
            SliceData::Whole(s) => s.node_hi,
            SliceData::Chunked(c) => c.node_hi(),
        }
    }

    /// Number of nodes in the range.
    pub fn num_nodes(&self) -> usize {
        (self.node_hi() - self.node_lo()) as usize
    }

    /// Number of edges in the range (across all chunks).
    pub fn num_edges(&self) -> u64 {
        match self {
            SliceData::Whole(s) => s.num_edges(),
            SliceData::Chunked(c) => c.num_edges(),
        }
    }

    /// Whether the range carries per-edge data.
    pub fn weighted(&self) -> bool {
        match self {
            SliceData::Whole(s) => s.weights.is_some(),
            SliceData::Chunked(c) => c.weighted(),
        }
    }

    /// True when the range streams as bounded chunks.
    pub fn is_chunked(&self) -> bool {
        matches!(self, SliceData::Chunked(_))
    }

    /// The resident slice of a monolithic range. Panics for chunked data —
    /// callers that need the whole slice at once (e.g. label propagation)
    /// do not support streaming and must run with `chunk_edges: None`.
    pub fn expect_whole(&self) -> &GraphSlice {
        match self {
            SliceData::Whole(s) => s,
            SliceData::Chunked(_) => {
                panic!("this code path needs the whole slice resident; run with chunk_edges: None")
            }
        }
    }

    /// Streams the chunks overlapping the global node range `[lo, hi)`, in
    /// ascending node order. `f` receives each chunk as a [`GraphSlice`]
    /// plus the sub-range of `nodes` it covers; for monolithic data it is
    /// called exactly once with the resident slice. Sequential chunk order
    /// is what keeps stateful rules' decision streams — and therefore the
    /// §IV-B4 replay — identical to the monolithic run.
    pub fn for_chunks_in(&mut self, nodes: std::ops::Range<Node>, mut f: impl FnMut(&GraphSlice, std::ops::Range<Node>)) {
        if nodes.start >= nodes.end {
            return;
        }
        match self {
            SliceData::Whole(s) => f(s, nodes),
            SliceData::Chunked(c) => {
                let first = c.chunk_index_of(nodes.start);
                let last = c.chunk_index_of(nodes.end - 1);
                for i in first..=last {
                    let (lo, hi) = c.chunk_bounds(i);
                    let sub = nodes.start.max(lo)..nodes.end.min(hi);
                    // With prefetch on, the load is mostly a wait on the
                    // background re-read — the span then measures how well
                    // the overlap hides the I/O, not the I/O itself.
                    cusp_obs::span_begin_arg("chunk", i as u64);
                    f(c.load_chunk(i), sub);
                    cusp_obs::span_end("chunk");
                }
            }
        }
    }

    /// Streams every chunk of the range once, in ascending node order.
    pub fn for_each_chunk(&mut self, mut f: impl FnMut(&GraphSlice)) {
        let full = self.node_lo()..self.node_hi();
        self.for_chunks_in(full, |chunk, _| f(chunk));
    }

    /// Largest number of edges resident at once so far: the whole range for
    /// monolithic data, the measured chunk high-water mark when streaming.
    pub fn peak_resident_edges(&self) -> u64 {
        match self {
            SliceData::Whole(s) => s.num_edges(),
            SliceData::Chunked(c) => c.peak_resident_edges(),
        }
    }

    /// High-water heap footprint of one chunk-arena buffer — 0 for
    /// monolithic data, which has no arena.
    pub fn arena_hw_bytes(&self) -> u64 {
        match self {
            SliceData::Whole(_) => 0,
            SliceData::Chunked(c) => c.arena_hw_bytes(),
        }
    }
}

/// Per-host execution context threaded through every phase: the comm
/// handle, the worker pool, the run config, and the per-phase timers that
/// [`PhaseTimes::breakdown`] later turns into the Fig. 4 table.
pub struct PhaseCtx<'a> {
    /// Communication endpoint of this host.
    pub comm: &'a Comm,
    /// Worker thread pool, created once and reused by every phase.
    pub pool: ThreadPool,
    /// The run configuration.
    pub cfg: &'a CuspConfig,
    /// Wall-clock time recorded per phase by [`PhaseCtx::run_phase`].
    pub times: PhaseTimes,
}

impl<'a> PhaseCtx<'a> {
    /// Creates the context (and the worker pool) for one partitioning run.
    pub fn new(comm: &'a Comm, cfg: &'a CuspConfig) -> Self {
        PhaseCtx {
            comm,
            pool: ThreadPool::new(cfg.threads_per_host.max(1)),
            cfg,
            times: PhaseTimes::default(),
        }
    }

    /// Runs one phase: tags all communication with [`Phase::NAME`], times
    /// the body, and — when [`Phase::BARRIER`] — barriers before stopping
    /// the clock so the per-phase times attribute cleanly across hosts.
    pub fn run_phase<P: Phase>(&mut self, phase: P, input: P::Input) -> P::Output {
        self.comm.set_phase(P::NAME);
        if self.cfg.announce_phases {
            // Line-buffered stdout flushes on the newline, so the launch
            // supervisor sees the marker before any phase work begins —
            // the anchor `--kill-seed` injection is timed against.
            println!("CUSP-WORKER-PHASE {}", P::NAME);
        }
        cusp_obs::span_begin(P::NAME);
        let t = Instant::now();
        let out = phase.run(self, input);
        if P::BARRIER {
            self.comm.barrier();
        }
        self.times.record(P::NAME, t.elapsed());
        cusp_obs::span_end(P::NAME);
        out
    }
}

/// One step of the partitioning pipeline.
///
/// A phase is consumed by [`PhaseCtx::run_phase`], which handles the
/// cross-cutting concerns (comm tagging, timing, barrier); `run` holds only
/// the phase's own logic. Rule references and other phase-lifetime
/// parameters live on the implementing struct; `Input`/`Output` carry the
/// data products that flow between phases.
pub trait Phase {
    /// Phase name — the comm accounting tag and the [`PhaseTimes`] key.
    const NAME: &'static str;
    /// Whether a barrier separates this phase from the next (true for all
    /// communicating phases; allocation is host-local and skips it).
    const BARRIER: bool = true;
    /// What the phase consumes.
    type Input;
    /// What the phase produces.
    type Output;
    /// Executes the phase body.
    fn run(self, ctx: &mut PhaseCtx<'_>, input: Self::Input) -> Self::Output;
}

/// Proof token that the edge-rule state has been reset for the §IV-B4
/// construction replay.
///
/// Graph construction re-evaluates `getEdgeOwner` for every locally read
/// edge and relies on the replay making *identical* decisions to edge
/// assignment — which for stateful rules requires resetting the state to
/// its pre-assignment value first. [`ConstructPhase`] demands this token,
/// and the only way to mint one is [`ReplayReady::arm`], which performs the
/// reset: the invariant is enforced by construction, not by the driver
/// remembering a call.
pub struct ReplayReady<'s, S: PartitionState> {
    state: &'s S,
}

impl<'s, S: PartitionState> ReplayReady<'s, S> {
    /// Resets `state` to its initial value and certifies it replay-ready.
    pub fn arm(state: &'s S) -> Self {
        state.reset();
        ReplayReady { state }
    }

    /// The reset state, for the construction replay.
    pub fn state(&self) -> &'s S {
        self.state
    }
}

/// Phase 1 — graph reading (§IV-B1). Yields the host's [`SliceData`]
/// (monolithic or chunk-streaming per `CuspConfig::chunk_edges`) and the
/// globally replicated [`Setup`].
pub struct ReadPhase<'a> {
    /// Where the input graph comes from.
    pub source: &'a GraphSource,
}

impl Phase for ReadPhase<'_> {
    const NAME: &'static str = "read";
    type Input = ();
    type Output = ReadOutcome;

    fn run(self, ctx: &mut PhaseCtx<'_>, _input: ()) -> ReadOutcome {
        read_phase(ctx.comm, self.source, ctx.cfg).expect("failed to read input graph")
    }
}

/// Phase 2 — master assignment (§IV-B2). Applies the §IV-D5 elision for
/// pure rules (unless the `force_stored_masters` ablation is on) and the
/// stored sync protocol otherwise.
pub struct MasterPhase<'a, MR: MasterRule> {
    /// Global facts the rule was built from.
    pub setup: &'a Setup,
    /// The `getMaster` half of the policy.
    pub rule: &'a MR,
    /// The rule's partitioning state (`()` when stateless).
    pub state: &'a MR::State,
}

impl<'a, MR: MasterRule + Clone + 'static> Phase for MasterPhase<'a, MR> {
    const NAME: &'static str = "master";
    type Input = &'a mut SliceData;
    type Output = ResolvedMasters;

    fn run(self, ctx: &mut PhaseCtx<'_>, data: &'a mut SliceData) -> ResolvedMasters {
        if self.rule.is_pure() && !ctx.cfg.force_stored_masters {
            pure_masters(self.rule)
        } else {
            assign_masters(ctx.comm, &ctx.pool, self.setup, data, self.rule, self.state, ctx.cfg)
        }
    }
}

/// Phase 3 — edge assignment (Algorithm 3, §IV-B3).
pub struct EdgeAssignPhase<'a, ER: EdgeRule> {
    /// Global facts the rule was built from.
    pub setup: &'a Setup,
    /// Resolved master locations from phase 2.
    pub masters: &'a ResolvedMasters,
    /// The `getEdgeOwner` half of the policy.
    pub rule: &'a ER,
    /// The rule's partitioning state (`()` when stateless).
    pub state: &'a ER::State,
}

impl<'a, ER: EdgeRule> Phase for EdgeAssignPhase<'a, ER> {
    const NAME: &'static str = "edge_assign";
    type Input = &'a mut SliceData;
    type Output = EdgeAssignOutcome;

    fn run(self, ctx: &mut PhaseCtx<'_>, data: &'a mut SliceData) -> EdgeAssignOutcome {
        assign_edges(ctx.comm, &ctx.pool, self.setup, data, self.masters, self.rule, self.state)
    }
}

/// Phase 4 — graph allocation (§IV-B4). Host-local: no communication, no
/// barrier (matching the monolithic driver, whose alloc step also ran
/// un-barriered straight into construction).
pub struct AllocPhase<'a> {
    /// Where this host's master set comes from (stored list or pure range).
    pub spec: MasterSpec<'a>,
    /// Whether per-edge data buffers must be allocated.
    pub weighted: bool,
}

impl<'a> Phase for AllocPhase<'a> {
    const NAME: &'static str = "alloc";
    const BARRIER: bool = false;
    type Input = &'a EdgeAssignOutcome;
    type Output = AllocOutcome;

    fn run(self, ctx: &mut PhaseCtx<'_>, outcome: &'a EdgeAssignOutcome) -> AllocOutcome {
        allocate(ctx.comm.host(), &ctx.pool, self.spec, outcome, self.weighted)
    }
}

/// Phase 5 — graph construction (Algorithm 4, §IV-B5). Requires the
/// [`ReplayReady`] token, making the state-reset seam between allocation
/// and construction part of the type signature.
pub struct ConstructPhase<'a, ER: EdgeRule> {
    /// Global facts the rule was built from.
    pub setup: &'a Setup,
    /// Resolved master locations from phase 2.
    pub masters: &'a ResolvedMasters,
    /// The `getEdgeOwner` half of the policy.
    pub rule: &'a ER,
    /// Reset edge-rule state for the §IV-B4 replay.
    pub replay: ReplayReady<'a, ER::State>,
    /// Edges this host will receive, from the edge-assignment exchange.
    pub to_receive: u64,
}

impl<'a, ER: EdgeRule> Phase for ConstructPhase<'a, ER> {
    const NAME: &'static str = "construct";
    type Input = (&'a mut SliceData, &'a mut AllocOutcome);
    type Output = (Csr, Option<Vec<u32>>);

    fn run(self, ctx: &mut PhaseCtx<'_>, (data, alloc): Self::Input) -> Self::Output {
        construct(
            ctx.comm,
            &ctx.pool,
            self.setup,
            data,
            self.masters,
            self.rule,
            self.replay.state(),
            alloc,
            self.to_receive,
            ctx.cfg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::LoadState;
    use cusp_graph::gen::uniform::erdos_renyi;
    use std::sync::Arc;

    fn whole_and_chunked(chunk: u64) -> (SliceData, SliceData) {
        let g = Arc::new(erdos_renyi(150, 1100, 13));
        let whole = SliceData::Whole(GraphSlice::from_csr(&g, 10, 140));
        let chunked = SliceData::Chunked(Box::new(ChunkedSlice::from_csr(g, None, 10, 140, chunk)));
        (whole, chunked)
    }

    #[test]
    fn chunked_stream_visits_same_edges_as_whole() {
        let (mut whole, mut chunked) = whole_and_chunked(40);
        assert_eq!(whole.num_edges(), chunked.num_edges());
        let walk = |d: &mut SliceData| {
            let mut seen: Vec<(Node, Vec<Node>)> = Vec::new();
            d.for_each_chunk(|chunk| {
                for v in chunk.node_lo..chunk.node_hi {
                    seen.push((v, chunk.edges(v).to_vec()));
                }
            });
            seen
        };
        assert_eq!(walk(&mut whole), walk(&mut chunked));
        assert!(chunked.peak_resident_edges() < whole.peak_resident_edges());
    }

    #[test]
    fn sub_ranges_clip_to_chunk_intersections() {
        let (mut whole, mut chunked) = whole_and_chunked(25);
        for range in [10u32..140, 37..91, 60..61, 90..90] {
            let collect = |d: &mut SliceData| {
                let mut nodes = Vec::new();
                d.for_chunks_in(range.clone(), |chunk, sub| {
                    assert!(sub.start >= chunk.node_lo && sub.end <= chunk.node_hi);
                    nodes.extend(sub.clone());
                });
                nodes
            };
            let expected: Vec<Node> = range.clone().collect();
            assert_eq!(collect(&mut whole), expected, "whole {range:?}");
            assert_eq!(collect(&mut chunked), expected, "chunked {range:?}");
        }
    }

    #[test]
    fn arming_replay_resets_state() {
        let state = LoadState::new(4);
        state.add_assignment(2, 7);
        assert_eq!(state.nodes(2), 1);
        let token = ReplayReady::arm(&state);
        assert_eq!(token.state().nodes(2), 0);
        assert_eq!(token.state().edges(2), 0);
    }

    #[test]
    #[should_panic(expected = "whole slice resident")]
    fn expect_whole_rejects_chunked_data() {
        let (_, chunked) = whole_and_chunked(16);
        let _ = chunked.expect_whole();
    }
}
