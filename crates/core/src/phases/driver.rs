//! Orchestrates the five partitioning phases on one host (paper Fig. 2).
//!
//! The driver is now a thin composition of [`Phase`] values executed by
//! [`PhaseCtx::run_phase`]; all cross-cutting machinery (comm tagging,
//! timing, barriers) lives in the pipeline harness, and the §IV-B4
//! state-reset seam between allocation and construction is the
//! [`ReplayReady`] token rather than a free-floating call.
//!
//! # Crash recovery
//!
//! When `CuspConfig::checkpoint_dir` is set, the driver writes a durable
//! [`Checkpoint`] at the master and edge-assignment phase barriers, and a
//! restarted host (`Comm::restart_epoch() > 0`) resumes from the last one
//! it can load:
//!
//! * **Graph reading always re-runs** — the input slice is process memory,
//!   not durable state. Its re-sent traffic is deduplicated receiver-side
//!   and its barrier falls through (barrier arrivals are monotone).
//! * The transport state is restored *after* the re-read
//!   ([`Comm::restore_net`]), jumping send sequences, receive floors, and
//!   the barrier count to the checkpointed boundary.
//! * Checkpointed phases are **skipped**: their outputs are rebuilt from
//!   the snapshot instead of re-communicated, so survivors parked in later
//!   phases never see re-driven protocol traffic for phases they finished.
//! * Allocation (host-local) and construction always re-run; the replay
//!   token resets the edge-rule state anyway, so a fresh state on the
//!   restarted host is bit-identical to the one a crash-free run resets.
//!
//! A corrupt or missing checkpoint falls back to full re-execution, which
//! the determinism contract makes equivalent (bit-identical partitions),
//! just slower.

use cusp_net::Comm;

use crate::checkpoint::{
    Checkpoint, CheckpointStore, EdgeAssignSnapshot, MastersSnapshot, Stage,
};
use crate::config::{CuspConfig, GraphSource, PhaseTimes};
use crate::dist_graph::{DistGraph, PartitionClass};
use crate::phases::alloc::MasterSpec;
use crate::phases::master::pure_masters;
use crate::phases::pipeline::{
    AllocPhase, ConstructPhase, EdgeAssignPhase, MasterPhase, PhaseCtx, ReadPhase, ReplayReady,
};
use crate::policy::{EdgeRule, MasterRule, Setup};
use crate::state::PartitionState;
use crate::PartId;

/// Result of partitioning on one host.
pub struct PartitionOutput {
    /// Dist graph.
    pub dist_graph: DistGraph,
    /// Per-phase wall-clock times on this host.
    pub times: PhaseTimes,
    /// High-water mark of source edges resident at once on this host: the
    /// whole read slice for monolithic runs, the largest materialized chunk
    /// when `CuspConfig::chunk_edges` streams the slice.
    pub peak_resident_edges: u64,
    /// The replicated [`Setup`] this partition was computed against —
    /// retained so [`crate::phases::delta::partition_delta`] can rebuild
    /// the previous run's rules and detect master shifts.
    pub setup: Setup,
    /// Number of vertices whose partition state was recomputed. A full run
    /// recomputes everything (`== setup.num_nodes`); a delta run recomputes
    /// only the dirty set.
    pub dirty_vertices: u64,
    /// Number of edges this host carried over from the previous partition
    /// without re-deciding or re-shipping them (0 for a full run).
    pub reused_edges: u64,
}

/// Partitions the input graph with a user-supplied policy.
///
/// `build` constructs the two rules from the [`Setup`]; it runs with
/// identical inputs on every host and must be deterministic, so all hosts
/// agree on the policy parameters.
///
/// Phases are separated by barriers so the per-phase wall-clock times
/// (paper Fig. 4) attribute cleanly; the barriers are negligible next to
/// the phases themselves.
pub fn partition<MR, ER>(
    comm: &Comm,
    source: GraphSource,
    cfg: &CuspConfig,
    class: PartitionClass,
    build: impl FnOnce(&Setup) -> (MR, ER),
) -> PartitionOutput
where
    MR: MasterRule + Clone + 'static,
    ER: EdgeRule,
{
    let me = comm.host();
    let mut ctx = PhaseCtx::new(comm, cfg);

    // Crash recovery: open the per-host checkpoint store, wipe stale files
    // on the first incarnation, and on a restart load the last completed
    // phase boundary (a corrupt file loads as `None` — full re-run).
    let store = cfg
        .checkpoint_dir
        .as_deref()
        .and_then(|dir| CheckpointStore::new(dir, comm.num_hosts(), me).ok());
    if comm.restart_epoch() == 0 {
        if let Some(s) = &store {
            s.clear();
        }
    }
    let resume = if comm.restart_epoch() > 0 {
        store.as_ref().and_then(|s| s.load())
    } else {
        None
    };

    // Phase 1: graph reading — always runs; on a restart the re-sent
    // traffic dedupes receiver-side and the barrier falls through.
    let read = ctx.run_phase(ReadPhase { source: &source }, ());
    let setup = read.setup;
    let mut data = read.data;

    // With the slice back in memory, fast-forward the transport to the
    // checkpointed boundary before skipping the phases it covers.
    if let Some(ck) = &resume {
        comm.restore_net(&ck.net);
        cusp_obs::instant("ckpt_resume", ck.net.barrier_calls);
    }

    let (master_rule, edge_rule) = build(&setup);

    // Phase 2: master assignment — skipped on resume (every checkpoint
    // stage has it); the snapshot rebuilds the resolved locations, with
    // pure rules re-deriving their replicated closure from the rule.
    let masters = match resume.as_ref().map(|ck| &ck.masters) {
        Some(snap) => snap
            .to_stored()
            .unwrap_or_else(|| pure_masters(&master_rule)),
        None => {
            let mstate = <MR as MasterRule>::State::new(setup.parts);
            let masters = ctx.run_phase(
                MasterPhase { setup: &setup, rule: &master_rule, state: &mstate },
                &mut data,
            );
            if let Some(s) = &store {
                let _ = s.save(&Checkpoint {
                    stage: Stage::Master,
                    net: comm.net_checkpoint(),
                    masters: MastersSnapshot::of(&masters),
                    edge_assign: None,
                });
            }
            masters
        }
    };

    // Phase 3: edge assignment — skipped when the checkpoint reached its
    // boundary; rebuilt from the snapshot otherwise.
    let estate = <ER as EdgeRule>::State::new(setup.parts);
    let ea = match resume.as_ref().and_then(|ck| ck.edge_assign.as_ref()) {
        Some(snap) => snap.to_outcome(),
        None => {
            let ea = ctx.run_phase(
                EdgeAssignPhase { setup: &setup, masters: &masters, rule: &edge_rule, state: &estate },
                &mut data,
            );
            if let Some(s) = &store {
                let _ = s.save(&Checkpoint {
                    stage: Stage::EdgeAssign,
                    net: comm.net_checkpoint(),
                    masters: MastersSnapshot::of(&masters),
                    edge_assign: Some(EdgeAssignSnapshot::of(&ea)),
                });
            }
            ea
        }
    };

    // Phase 4: graph allocation (host-local, no barrier).
    let spec = if masters.is_pure() {
        MasterSpec::PureRange(master_rule.pure_owned_range(me as PartId))
    } else {
        MasterSpec::Stored(
            ea.my_master_nodes
                .as_deref()
                .expect("stored master assignment produced no master list"),
        )
    };
    let mut alloc = ctx.run_phase(AllocPhase { spec, weighted: data.weighted() }, &ea);

    // Phase 5: graph construction. Arming the replay token resets the
    // edge-rule state so construction replays the assignment decisions.
    let (graph, edge_data) = ctx.run_phase(
        ConstructPhase {
            setup: &setup,
            masters: &masters,
            rule: &edge_rule,
            replay: ReplayReady::arm(&estate),
            to_receive: ea.to_receive,
        },
        (&mut data, &mut alloc),
    );

    // The chunk arena's high-water footprint travels with the phase-time
    // record (0 for monolithic runs — no arena).
    ctx.times.arena_hw_bytes = data.arena_hw_bytes();

    PartitionOutput {
        dist_graph: DistGraph {
            part_id: me as PartId,
            num_parts: setup.parts,
            global_nodes: setup.num_nodes,
            global_edges: setup.num_edges,
            num_masters: alloc.num_masters,
            local2global: alloc.local2global,
            master_of: alloc.master_of,
            graph,
            edge_data,
            class,
        },
        times: ctx.times,
        peak_resident_edges: data.peak_resident_edges(),
        dirty_vertices: setup.num_nodes,
        reused_edges: 0,
        setup,
    }
}
