//! Orchestrates the five partitioning phases on one host (paper Fig. 2).

use std::time::Instant;

use cusp_galois::ThreadPool;
use cusp_net::Comm;

use crate::config::{CuspConfig, GraphSource, PhaseTimes};
use crate::dist_graph::{DistGraph, PartitionClass};
use crate::phases::alloc::{allocate, allocate_with_pure_range};
use crate::phases::construct::construct;
use crate::phases::edge_assign::assign_edges;
use crate::phases::master::{assign_masters, pure_masters};
use crate::phases::read::read_phase;
use crate::policy::{EdgeRule, MasterRule, Setup};
use crate::state::PartitionState;
use crate::PartId;

/// Result of partitioning on one host.
pub struct PartitionOutput {
    /// Dist graph.
    pub dist_graph: DistGraph,
    /// Per-phase wall-clock times on this host.
    pub times: PhaseTimes,
}

/// Partitions the input graph with a user-supplied policy.
///
/// `build` constructs the two rules from the [`Setup`]; it runs with
/// identical inputs on every host and must be deterministic, so all hosts
/// agree on the policy parameters.
///
/// Phases are separated by barriers so the per-phase wall-clock times
/// (paper Fig. 4) attribute cleanly; the barriers are negligible next to
/// the phases themselves.
pub fn partition<MR, ER>(
    comm: &Comm,
    source: GraphSource,
    cfg: &CuspConfig,
    class: PartitionClass,
    build: impl FnOnce(&Setup) -> (MR, ER),
) -> PartitionOutput
where
    MR: MasterRule + Clone + 'static,
    ER: EdgeRule,
{
    let me = comm.host();
    let pool = ThreadPool::new(cfg.threads_per_host.max(1));
    let mut times = PhaseTimes::default();

    // Phase 1: graph reading.
    comm.set_phase("read");
    let t = Instant::now();
    let read = read_phase(comm, &source, cfg).expect("failed to read input graph");
    comm.barrier();
    times.read = t.elapsed();
    let setup = read.setup;
    let slice = read.slice;

    let (master_rule, edge_rule) = build(&setup);

    // Phase 2: master assignment.
    comm.set_phase("master");
    let t = Instant::now();
    let mstate = <MR as MasterRule>::State::new(setup.parts);
    let use_pure = master_rule.is_pure() && !cfg.force_stored_masters;
    let masters = if use_pure {
        pure_masters(&master_rule)
    } else {
        assign_masters(comm, &pool, &setup, &slice, &master_rule, &mstate, cfg)
    };
    comm.barrier();
    times.master = t.elapsed();

    // Phase 3: edge assignment.
    comm.set_phase("edge_assign");
    let t = Instant::now();
    let estate = <ER as EdgeRule>::State::new(setup.parts);
    let ea = assign_edges(comm, &pool, &setup, &slice, &masters, &edge_rule, &estate);
    comm.barrier();
    times.edge_assign = t.elapsed();

    // Phase 4: graph allocation (no communication). The edge-rule state is
    // reset here so construction replays the same decisions (§IV-B4).
    comm.set_phase("alloc");
    let t = Instant::now();
    let weighted = slice.weights.is_some();
    let mut alloc = if masters.is_pure() {
        allocate_with_pure_range(
            me,
            &pool,
            master_rule.pure_owned_range(me as PartId),
            &ea,
            weighted,
        )
    } else {
        allocate(me, &pool, &ea, weighted)
    };
    estate.reset();
    times.alloc = t.elapsed();

    // Phase 5: graph construction.
    comm.set_phase("construct");
    let t = Instant::now();
    let (graph, edge_data) = construct(
        comm,
        &pool,
        &setup,
        &slice,
        &masters,
        &edge_rule,
        &estate,
        &mut alloc,
        ea.to_receive,
        cfg,
    );
    comm.barrier();
    times.construct = t.elapsed();

    PartitionOutput {
        dist_graph: DistGraph {
            part_id: me as PartId,
            num_parts: setup.parts,
            global_nodes: setup.num_nodes,
            global_edges: setup.num_edges,
            num_masters: alloc.num_masters,
            local2global: alloc.local2global,
            master_of: alloc.master_of,
            graph,
            edge_data,
            class,
        },
        times,
    }
}
