//! Orchestrates the five partitioning phases on one host (paper Fig. 2).
//!
//! The driver is now a thin composition of [`Phase`] values executed by
//! [`PhaseCtx::run_phase`]; all cross-cutting machinery (comm tagging,
//! timing, barriers) lives in the pipeline harness, and the §IV-B4
//! state-reset seam between allocation and construction is the
//! [`ReplayReady`] token rather than a free-floating call.

use cusp_net::Comm;

use crate::config::{CuspConfig, GraphSource, PhaseTimes};
use crate::dist_graph::{DistGraph, PartitionClass};
use crate::phases::alloc::MasterSpec;
use crate::phases::pipeline::{
    AllocPhase, ConstructPhase, EdgeAssignPhase, MasterPhase, PhaseCtx, ReadPhase, ReplayReady,
};
use crate::policy::{EdgeRule, MasterRule, Setup};
use crate::state::PartitionState;
use crate::PartId;

/// Result of partitioning on one host.
pub struct PartitionOutput {
    /// Dist graph.
    pub dist_graph: DistGraph,
    /// Per-phase wall-clock times on this host.
    pub times: PhaseTimes,
    /// High-water mark of source edges resident at once on this host: the
    /// whole read slice for monolithic runs, the largest materialized chunk
    /// when `CuspConfig::chunk_edges` streams the slice.
    pub peak_resident_edges: u64,
}

/// Partitions the input graph with a user-supplied policy.
///
/// `build` constructs the two rules from the [`Setup`]; it runs with
/// identical inputs on every host and must be deterministic, so all hosts
/// agree on the policy parameters.
///
/// Phases are separated by barriers so the per-phase wall-clock times
/// (paper Fig. 4) attribute cleanly; the barriers are negligible next to
/// the phases themselves.
pub fn partition<MR, ER>(
    comm: &Comm,
    source: GraphSource,
    cfg: &CuspConfig,
    class: PartitionClass,
    build: impl FnOnce(&Setup) -> (MR, ER),
) -> PartitionOutput
where
    MR: MasterRule + Clone + 'static,
    ER: EdgeRule,
{
    let me = comm.host();
    let mut ctx = PhaseCtx::new(comm, cfg);

    // Phase 1: graph reading.
    let read = ctx.run_phase(ReadPhase { source: &source }, ());
    let setup = read.setup;
    let mut data = read.data;

    let (master_rule, edge_rule) = build(&setup);

    // Phase 2: master assignment.
    let mstate = <MR as MasterRule>::State::new(setup.parts);
    let masters = ctx.run_phase(
        MasterPhase { setup: &setup, rule: &master_rule, state: &mstate },
        &mut data,
    );

    // Phase 3: edge assignment.
    let estate = <ER as EdgeRule>::State::new(setup.parts);
    let ea = ctx.run_phase(
        EdgeAssignPhase { setup: &setup, masters: &masters, rule: &edge_rule, state: &estate },
        &mut data,
    );

    // Phase 4: graph allocation (host-local, no barrier).
    let spec = if masters.is_pure() {
        MasterSpec::PureRange(master_rule.pure_owned_range(me as PartId))
    } else {
        MasterSpec::Stored(
            ea.my_master_nodes
                .as_deref()
                .expect("stored master assignment produced no master list"),
        )
    };
    let mut alloc = ctx.run_phase(AllocPhase { spec, weighted: data.weighted() }, &ea);

    // Phase 5: graph construction. Arming the replay token resets the
    // edge-rule state so construction replays the assignment decisions.
    let (graph, edge_data) = ctx.run_phase(
        ConstructPhase {
            setup: &setup,
            masters: &masters,
            rule: &edge_rule,
            replay: ReplayReady::arm(&estate),
            to_receive: ea.to_receive,
        },
        (&mut data, &mut alloc),
    );

    PartitionOutput {
        dist_graph: DistGraph {
            part_id: me as PartId,
            num_parts: setup.parts,
            global_nodes: setup.num_nodes,
            global_edges: setup.num_edges,
            num_masters: alloc.num_masters,
            local2global: alloc.local2global,
            master_of: alloc.master_of,
            graph,
            edge_data,
            class,
        },
        times: ctx.times,
        peak_resident_edges: data.peak_resident_edges(),
    }
}
