//! Phase 1 — graph reading (paper §IV-B1).
//!
//! The edge array is divided "more or less equally among hosts so that
//! each host reads and processes a contiguous set of edges ... rounded off
//! so that the outgoing edges of a given node are not divided between
//! hosts." Each host loads only its slice; later phases read from memory.
//!
//! This phase also derives the [`Setup`] every rule is built from: the
//! global node/edge counts, the reading split, and the edge-balanced
//! blocking used by `ContiguousEB`. All hosts compute identical values
//! because they all see the same offsets array.

use std::sync::Arc;

use cusp_graph::{reading_split, GraphSlice, ReadSplit};
use cusp_net::Comm;

use crate::config::{CuspConfig, GraphSource};
use crate::policy::Setup;

/// Result of the reading phase on one host. For weighted (version-2)
/// files the slice carries the per-edge data of the host's range.
pub struct ReadOutcome {
    /// The contiguous node range (and its edges) this host read.
    pub slice: GraphSlice,
    /// Global facts identical on every host.
    pub setup: Setup,
}

/// Converts contiguous splits into a boundary array (`k + 1` entries).
fn splits_to_boundaries(splits: &[ReadSplit]) -> Vec<u64> {
    let mut b = Vec::with_capacity(splits.len() + 1);
    b.push(splits.first().map_or(0, |s| s.lo));
    for s in splits {
        b.push(s.hi);
    }
    b
}

/// Executes the reading phase.
pub fn read_phase(comm: &Comm, source: &GraphSource, cfg: &CuspConfig) -> std::io::Result<ReadOutcome> {
    let k = comm.num_hosts();
    let me = comm.host();
    match source {
        GraphSource::File(path) => {
            let mut reader = cusp_graph::RangeReader::open(path)?;
            let num_nodes = reader.num_nodes();
            let num_edges = reader.num_edges();
            let ends = reader.read_end_offsets()?;
            let read_splits = reading_split(&ends, k, cfg.node_read_weight, cfg.edge_read_weight);
            let eb = reading_split(&ends, k, 0, 1);
            let my = read_splits[me];
            let slice = reader.read_range(my.lo, my.hi)?;
            Ok(ReadOutcome {
                slice,
                setup: Setup {
                    num_nodes,
                    num_edges,
                    parts: k as u32,
                    eb_boundaries: Arc::new(splits_to_boundaries(&eb)),
                    read_splits: Arc::new(read_splits),
                },
            })
        }
        GraphSource::Memory(graph) => {
            let ends: Vec<u64> = graph.offsets()[1..].to_vec();
            let read_splits = reading_split(&ends, k, cfg.node_read_weight, cfg.edge_read_weight);
            let eb = reading_split(&ends, k, 0, 1);
            let my = read_splits[me];
            let slice = GraphSlice::from_csr(graph, my.lo as u32, my.hi as u32);
            Ok(ReadOutcome {
                slice,
                setup: Setup {
                    num_nodes: graph.num_nodes() as u64,
                    num_edges: graph.num_edges(),
                    parts: k as u32,
                    eb_boundaries: Arc::new(splits_to_boundaries(&eb)),
                    read_splits: Arc::new(read_splits),
                },
            })
        }
        GraphSource::MemoryWeighted(graph, weights) => {
            let ends: Vec<u64> = graph.offsets()[1..].to_vec();
            let read_splits = reading_split(&ends, k, cfg.node_read_weight, cfg.edge_read_weight);
            let eb = reading_split(&ends, k, 0, 1);
            let my = read_splits[me];
            let slice =
                GraphSlice::from_csr_weighted(graph, weights, my.lo as u32, my.hi as u32);
            Ok(ReadOutcome {
                slice,
                setup: Setup {
                    num_nodes: graph.num_nodes() as u64,
                    num_edges: graph.num_edges(),
                    parts: k as u32,
                    eb_boundaries: Arc::new(splits_to_boundaries(&eb)),
                    read_splits: Arc::new(read_splits),
                },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusp_graph::gen::uniform::erdos_renyi;
    use cusp_net::Cluster;

    #[test]
    fn memory_source_slices_cover_graph() {
        let g = Arc::new(erdos_renyi(500, 4000, 1));
        let g2 = Arc::clone(&g);
        let out = Cluster::run(4, move |comm| {
            let cfg = CuspConfig::default();
            let r = read_phase(comm, &GraphSource::Memory(g2.clone()), &cfg).unwrap();
            (r.slice.node_lo, r.slice.node_hi, r.slice.num_edges(), r.setup.num_edges)
        });
        let total: u64 = out.results.iter().map(|r| r.2).sum();
        assert_eq!(total, g.num_edges());
        assert_eq!(out.results[0].0, 0);
        assert_eq!(out.results[3].1 as usize, g.num_nodes());
        for w in out.results.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        assert!(out.results.iter().all(|r| r.3 == g.num_edges()));
    }

    #[test]
    fn file_source_matches_memory_source() {
        let g = Arc::new(erdos_renyi(300, 2500, 9));
        let mut path = std::env::temp_dir();
        path.push(format!("cusp-read-phase-{}.bgr", std::process::id()));
        cusp_graph::write_bgr(&path, &g).unwrap();
        let g2 = Arc::clone(&g);
        let p2 = path.clone();
        let out = Cluster::run(3, move |comm| {
            let cfg = CuspConfig::default();
            let mem = read_phase(comm, &GraphSource::Memory(g2.clone()), &cfg).unwrap();
            let file = read_phase(comm, &GraphSource::File(p2.clone()), &cfg).unwrap();
            assert_eq!(mem.slice.offsets, file.slice.offsets);
            assert_eq!(mem.slice.dests, file.slice.dests);
            assert_eq!(*mem.setup.eb_boundaries, *file.setup.eb_boundaries);
            assert_eq!(*mem.setup.read_splits, *file.setup.read_splits);
        });
        drop(out);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eb_boundaries_are_edge_balanced() {
        let g = Arc::new(erdos_renyi(1000, 20_000, 2));
        let g2 = Arc::clone(&g);
        let out = Cluster::run(4, move |comm| {
            let cfg = CuspConfig {
                node_read_weight: 1,
                edge_read_weight: 0, // node-balanced reading...
                ..CuspConfig::default()
            };
            let r = read_phase(comm, &GraphSource::Memory(g2.clone()), &cfg).unwrap();
            // ...but eb_boundaries must stay edge-balanced regardless.
            r.setup.eb_boundaries.as_ref().clone()
        });
        let b = &out.results[0];
        assert_eq!(b.len(), 5);
        for w in b.windows(2) {
            let lo = if w[0] == 0 { 0 } else { g.offsets()[w[0] as usize] };
            let hi = g.offsets()[w[1] as usize];
            let edges = hi - lo;
            assert!(
                (edges as f64 - 5000.0).abs() < 1500.0,
                "block has {edges} edges"
            );
        }
    }
}
