//! Phase 1 — graph reading (paper §IV-B1).
//!
//! The edge array is divided "more or less equally among hosts so that
//! each host reads and processes a contiguous set of edges ... rounded off
//! so that the outgoing edges of a given node are not divided between
//! hosts." Each host loads only its slice; later phases read from memory.
//!
//! With `CuspConfig::chunk_edges` set, the slice is not materialized at
//! all: this phase reads only the O(nodes) offset array of the host's
//! range and hands later phases a [`ChunkedSlice`] that re-streams the
//! edge payload in bounded, node-aligned chunks (from the file, or from
//! the shared in-memory graph standing in for the page cache).
//!
//! This phase also derives the [`Setup`] every rule is built from: the
//! global node/edge counts, the reading split, and the edge-balanced
//! blocking used by `ContiguousEB`. All hosts compute identical values
//! because they all see the same offsets array.

use std::sync::Arc;

use cusp_graph::{reading_split, ChunkBacking, ChunkedSlice, EdgeIdx, GraphSlice, Node, ReadSplit};
use cusp_net::Comm;

use crate::config::{CuspConfig, GraphSource};
use crate::phases::pipeline::SliceData;
use crate::policy::Setup;

/// Result of the reading phase on one host. For weighted (version-2)
/// files the slice carries the per-edge data of the host's range.
pub struct ReadOutcome {
    /// The contiguous node range this host reads — resident as one slice,
    /// or streamed as bounded chunks per `CuspConfig::chunk_edges`.
    pub data: SliceData,
    /// Global facts identical on every host.
    pub setup: Setup,
}

/// Converts contiguous splits into a boundary array (`k + 1` entries).
fn splits_to_boundaries(splits: &[ReadSplit]) -> Vec<u64> {
    let mut b = Vec::with_capacity(splits.len() + 1);
    b.push(splits.first().map_or(0, |s| s.lo));
    for s in splits {
        b.push(s.hi);
    }
    b
}

/// Whether spawning a background prefetch worker can possibly pay off:
/// overlap needs a spare hardware thread, otherwise the worker only adds
/// context switches to every chunk load. `CUSP_FORCE_PREFETCH=1` overrides
/// the probe (used by tests that must exercise the worker path on
/// single-core machines). Chunk content is unaffected either way — the
/// gate changes where materialization runs, never what it produces.
fn prefetch_worthwhile() -> bool {
    static WORTH: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *WORTH.get_or_init(|| {
        std::env::var("CUSP_FORCE_PREFETCH").is_ok_and(|v| v == "1")
            || std::thread::available_parallelism().map_or(1, |n| n.get()) > 1
    })
}

/// Applies the config's streaming optimizations (background prefetch,
/// chunk-arena reuse) to a freshly built chunk stream.
fn configure_chunks(mut c: ChunkedSlice, cfg: &CuspConfig) -> ChunkedSlice {
    c.set_prefetch(cfg.prefetch && prefetch_worthwhile());
    c.set_arena_reuse(cfg.arena_reuse);
    c
}

/// Rebases the global end-offsets of range `[lo, hi)` into a local offset
/// array (`hi - lo + 1` entries, first entry 0) plus the range's first
/// global edge index.
fn rebase_offsets(ends: &[EdgeIdx], lo: u64, hi: u64) -> (Vec<EdgeIdx>, EdgeIdx) {
    let base = if lo == 0 { 0 } else { ends[lo as usize - 1] };
    let mut offsets = Vec::with_capacity((hi - lo) as usize + 1);
    offsets.push(0);
    offsets.extend(ends[lo as usize..hi as usize].iter().map(|&e| e - base));
    (offsets, base)
}

/// Executes the reading phase.
pub fn read_phase(comm: &Comm, source: &GraphSource, cfg: &CuspConfig) -> std::io::Result<ReadOutcome> {
    let k = comm.num_hosts();
    let me = comm.host();
    match source {
        GraphSource::File(path) => {
            let mut reader = cusp_graph::RangeReader::open(path)?;
            let num_nodes = reader.num_nodes();
            let num_edges = reader.num_edges();
            let ends = reader.read_end_offsets()?;
            let read_splits = reading_split(&ends, k, cfg.node_read_weight, cfg.edge_read_weight);
            let eb = reading_split(&ends, k, 0, 1);
            let my = read_splits[me];
            let data = match cfg.chunk_edges {
                None => SliceData::Whole(reader.read_range(my.lo, my.hi)?),
                Some(c) => {
                    let (offsets, base) = rebase_offsets(&ends, my.lo, my.hi);
                    SliceData::Chunked(Box::new(configure_chunks(
                        ChunkedSlice::new(
                            ChunkBacking::File(reader),
                            my.lo as Node,
                            my.hi as Node,
                            offsets,
                            base,
                            c,
                        ),
                        cfg,
                    )))
                }
            };
            Ok(ReadOutcome {
                data,
                setup: Setup {
                    num_nodes,
                    num_edges,
                    parts: k as u32,
                    eb_boundaries: Arc::new(splits_to_boundaries(&eb)),
                    read_splits: Arc::new(read_splits),
                },
            })
        }
        GraphSource::Memory(graph) => {
            let ends: Vec<u64> = graph.offsets()[1..].to_vec();
            let read_splits = reading_split(&ends, k, cfg.node_read_weight, cfg.edge_read_weight);
            let eb = reading_split(&ends, k, 0, 1);
            let my = read_splits[me];
            let data = match cfg.chunk_edges {
                None => SliceData::Whole(GraphSlice::from_csr(graph, my.lo as u32, my.hi as u32)),
                Some(c) => SliceData::Chunked(Box::new(configure_chunks(
                    ChunkedSlice::from_csr(Arc::clone(graph), None, my.lo as u32, my.hi as u32, c),
                    cfg,
                ))),
            };
            Ok(ReadOutcome {
                data,
                setup: Setup {
                    num_nodes: graph.num_nodes() as u64,
                    num_edges: graph.num_edges(),
                    parts: k as u32,
                    eb_boundaries: Arc::new(splits_to_boundaries(&eb)),
                    read_splits: Arc::new(read_splits),
                },
            })
        }
        GraphSource::MemoryWeighted(graph, weights) => {
            let ends: Vec<u64> = graph.offsets()[1..].to_vec();
            let read_splits = reading_split(&ends, k, cfg.node_read_weight, cfg.edge_read_weight);
            let eb = reading_split(&ends, k, 0, 1);
            let my = read_splits[me];
            let data = match cfg.chunk_edges {
                None => SliceData::Whole(GraphSlice::from_csr_weighted(
                    graph,
                    weights,
                    my.lo as u32,
                    my.hi as u32,
                )),
                Some(c) => SliceData::Chunked(Box::new(configure_chunks(
                    ChunkedSlice::from_csr(
                        Arc::clone(graph),
                        Some(Arc::clone(weights)),
                        my.lo as u32,
                        my.hi as u32,
                        c,
                    ),
                    cfg,
                ))),
            };
            Ok(ReadOutcome {
                data,
                setup: Setup {
                    num_nodes: graph.num_nodes() as u64,
                    num_edges: graph.num_edges(),
                    parts: k as u32,
                    eb_boundaries: Arc::new(splits_to_boundaries(&eb)),
                    read_splits: Arc::new(read_splits),
                },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusp_graph::gen::uniform::erdos_renyi;
    use cusp_net::Cluster;

    #[test]
    fn memory_source_slices_cover_graph() {
        let g = Arc::new(erdos_renyi(500, 4000, 1));
        let g2 = Arc::clone(&g);
        let out = Cluster::run(4, move |comm| {
            let cfg = CuspConfig::default();
            let r = read_phase(comm, &GraphSource::Memory(g2.clone()), &cfg).unwrap();
            (r.data.node_lo(), r.data.node_hi(), r.data.num_edges(), r.setup.num_edges)
        });
        let total: u64 = out.results.iter().map(|r| r.2).sum();
        assert_eq!(total, g.num_edges());
        assert_eq!(out.results[0].0, 0);
        assert_eq!(out.results[3].1 as usize, g.num_nodes());
        for w in out.results.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        assert!(out.results.iter().all(|r| r.3 == g.num_edges()));
    }

    #[test]
    fn file_source_matches_memory_source() {
        let g = Arc::new(erdos_renyi(300, 2500, 9));
        let mut path = std::env::temp_dir();
        path.push(format!("cusp-read-phase-{}.bgr", std::process::id()));
        cusp_graph::write_bgr(&path, &g).unwrap();
        let g2 = Arc::clone(&g);
        let p2 = path.clone();
        let out = Cluster::run(3, move |comm| {
            let cfg = CuspConfig::default();
            let mem = read_phase(comm, &GraphSource::Memory(g2.clone()), &cfg).unwrap();
            let file = read_phase(comm, &GraphSource::File(p2.clone()), &cfg).unwrap();
            assert_eq!(mem.data.expect_whole().offsets, file.data.expect_whole().offsets);
            assert_eq!(mem.data.expect_whole().dests, file.data.expect_whole().dests);
            assert_eq!(*mem.setup.eb_boundaries, *file.setup.eb_boundaries);
            assert_eq!(*mem.setup.read_splits, *file.setup.read_splits);
        });
        drop(out);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_file_source_streams_the_same_edges() {
        let g = Arc::new(erdos_renyi(260, 2100, 33));
        let mut path = std::env::temp_dir();
        path.push(format!("cusp-read-chunked-{}.bgr", std::process::id()));
        cusp_graph::write_bgr(&path, &g).unwrap();
        let g2 = Arc::clone(&g);
        let p2 = path.clone();
        let out = Cluster::run(3, move |comm| {
            let whole_cfg = CuspConfig::default();
            let chunk_cfg = CuspConfig { chunk_edges: Some(50), ..CuspConfig::default() };
            let whole = read_phase(comm, &GraphSource::Memory(g2.clone()), &whole_cfg).unwrap();
            for source in [GraphSource::Memory(g2.clone()), GraphSource::File(p2.clone())] {
                let mut chunked = read_phase(comm, &source, &chunk_cfg).unwrap();
                assert!(chunked.data.is_chunked());
                assert_eq!(chunked.data.num_edges(), whole.data.num_edges());
                let ws = whole.data.expect_whole();
                let mut edges = 0u64;
                chunked.data.for_each_chunk(|chunk| {
                    for v in chunk.node_lo..chunk.node_hi {
                        assert_eq!(chunk.edges(v), ws.edges(v), "node {v}");
                        assert_eq!(chunk.first_edge(v), ws.first_edge(v), "node {v}");
                        edges += chunk.out_degree(v);
                    }
                });
                assert_eq!(edges, ws.num_edges());
                assert!(chunked.data.peak_resident_edges() <= 50.max(max_degree(ws)));
            }
        });
        drop(out);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(test)]
    fn max_degree(s: &GraphSlice) -> u64 {
        (s.node_lo..s.node_hi).map(|v| s.out_degree(v)).max().unwrap_or(0)
    }

    #[test]
    fn eb_boundaries_are_edge_balanced() {
        let g = Arc::new(erdos_renyi(1000, 20_000, 2));
        let g2 = Arc::clone(&g);
        let out = Cluster::run(4, move |comm| {
            let cfg = CuspConfig {
                node_read_weight: 1,
                edge_read_weight: 0, // node-balanced reading...
                ..CuspConfig::default()
            };
            let r = read_phase(comm, &GraphSource::Memory(g2.clone()), &cfg).unwrap();
            // ...but eb_boundaries must stay edge-balanced regardless.
            r.setup.eb_boundaries.as_ref().clone()
        });
        let b = &out.results[0];
        assert_eq!(b.len(), 5);
        for w in b.windows(2) {
            let lo = if w[0] == 0 { 0 } else { g.offsets()[w[0] as usize] };
            let hi = g.offsets()[w[1] as usize];
            let edges = hi - lo;
            assert!(
                (edges as f64 - 5000.0).abs() < 1500.0,
                "block has {edges} edges"
            );
        }
    }
}
