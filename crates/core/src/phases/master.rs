//! Phase 2 — master assignment (paper §IV-B2, §IV-D4/5).
//!
//! Each host assigns the master partition for every vertex in its read
//! range. Depending on the rule's capabilities, CuSP applies the paper's
//! three synchronization regimes:
//!
//! * **pure** rules (no state, no neighbor queries): assignment is a pure
//!   function — nothing is stored or communicated; later phases replicate
//!   the computation on demand ([`ResolvedMasters::Pure`]);
//! * **stateful, neighbor-blind** rules: the loop runs without rounds and
//!   partitioning state is reconciled once, after the phase;
//! * **neighbor-aware** rules (Fennel-family): the local range is processed
//!   in `sync_rounds` chunks; after each chunk the host *asynchronously*
//!   sends state deltas and newly assigned masters to the peers that
//!   requested them, and drains whatever has arrived without blocking —
//!   "at the end of a round, if a host finds it has received no data,
//!   it will continue onto the next round" (§IV-D5).
//!
//! The masters map is demand-driven (§IV-D5): a host only ever receives
//! assignments for nodes it asked for — the destinations of its locally
//! read edges — keeping the map proportional to its slice, not the graph.

// The explicit `for i in 0..n` indexing in the SPMD/scan loops below is
// deliberate (it mirrors per-host/per-block protocol structure).
#![allow(clippy::needless_range_loop)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

use cusp_galois::{do_all, PerThread, ThreadPool, DEFAULT_GRAIN};
use cusp_graph::Node;
use cusp_net::{Comm, WireReader, WireWriter};

use crate::config::CuspConfig;
use crate::phases::pipeline::SliceData;
use crate::policy::{MasterRule, MasterView, Setup, UNASSIGNED};
use crate::props::LocalProps;
use crate::state::PartitionState;
use crate::tags::{MSG_FINAL, MSG_SYNC, TAG_MASTER_REQ, TAG_MASTER_SYNC};
use crate::PartId;

/// Dense lookup table for the masters of requested remote nodes.
///
/// Built once from the sparse protocol-time map after master resolution.
/// The edge-assignment and construction inner loops call
/// [`ResolvedMasters::of`] up to twice *per edge*, so the `HashMap` the sync
/// protocol accumulates into is frozen here: when the requested ids span a
/// window comparable to their count, lookup is a bounds check plus an array
/// load (holes hold [`UNASSIGNED`]); for pathologically sparse id sets it
/// falls back to binary search over the sorted ids.
pub struct RemoteMasters {
    /// Requested node ids, sorted ascending.
    keys: Vec<Node>,
    /// Master of `keys[i]`.
    vals: Vec<PartId>,
    /// First id covered by `window` (meaningful only when non-empty).
    window_lo: Node,
    /// Dense id → master table covering `window_lo..window_lo + len`.
    window: Vec<PartId>,
}

impl RemoteMasters {
    /// Freezes a protocol-time map into the dense lookup form.
    pub fn from_map(map: &HashMap<Node, PartId>) -> Self {
        let mut pairs: Vec<(Node, PartId)> = map.iter().map(|(&v, &p)| (v, p)).collect();
        pairs.sort_unstable_by_key(|&(v, _)| v);
        let keys: Vec<Node> = pairs.iter().map(|&(v, _)| v).collect();
        let vals: Vec<PartId> = pairs.iter().map(|&(_, p)| p).collect();
        let (window_lo, window) = match (keys.first(), keys.last()) {
            (Some(&lo), Some(&hi)) => {
                let span = (hi - lo) as usize + 1;
                // Remote dests of a contiguous read range tend to blanket
                // the id space, so the dense form almost always applies; the
                // cap only guards against degenerate sparse sets (a few ids
                // scattered across billions).
                if span <= keys.len().saturating_mul(4).saturating_add(1024) {
                    let mut window = vec![UNASSIGNED; span];
                    for &(v, p) in &pairs {
                        window[(v - lo) as usize] = p;
                    }
                    (lo, window)
                } else {
                    (0, Vec::new())
                }
            }
            _ => (0, Vec::new()),
        };
        RemoteMasters { keys, vals, window_lo, window }
    }

    /// The master of `v`, or `None` if the protocol never delivered it.
    #[inline]
    pub fn get(&self, v: Node) -> Option<PartId> {
        if !self.window.is_empty() {
            let off = v.wrapping_sub(self.window_lo) as usize;
            if off < self.window.len() {
                let m = self.window[off];
                return (m != UNASSIGNED).then_some(m);
            }
            return None;
        }
        self.keys.binary_search(&v).ok().map(|i| self.vals[i])
    }

    /// Number of stored assignments.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no remote assignments were requested.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates `(node, master)` pairs in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = (Node, PartId)> + '_ {
        self.keys.iter().copied().zip(self.vals.iter().copied())
    }
}

/// Master assignments as visible to the later phases on one host.
pub enum ResolvedMasters {
    /// Assignment is a replicated pure function.
    Pure(Box<dyn Fn(Node) -> PartId + Send + Sync>),
    /// Assignments are stored: dense for the local read range, dense-window
    /// (or sorted-array) for the requested remote nodes.
    Stored {
        /// First node of the locally read range.
        lo: Node,
        /// Master of each node in the local range.
        local: Vec<PartId>,
        /// Masters of the requested remote nodes.
        remote: RemoteMasters,
    },
}

impl ResolvedMasters {
    /// The master partition of `v`. Panics if the protocol did not deliver
    /// it (which would be a driver bug, not a user error).
    #[inline]
    pub fn of(&self, v: Node) -> PartId {
        match self {
            ResolvedMasters::Pure(f) => f(v),
            ResolvedMasters::Stored { lo, local, remote } => {
                if v >= *lo && ((v - lo) as usize) < local.len() {
                    let m = local[(v - lo) as usize];
                    debug_assert_ne!(m, UNASSIGNED);
                    m
                } else {
                    remote
                        .get(v)
                        .unwrap_or_else(|| panic!("master of {v} unknown on this host"))
                }
            }
        }
    }

    /// Is pure.
    pub fn is_pure(&self) -> bool {
        matches!(self, ResolvedMasters::Pure(_))
    }
}

/// Runs the master assignment phase for a non-pure rule.
///
/// `sends_counter` style accounting is inherited from `comm` (the driver
/// sets the phase label before calling).
pub fn assign_masters<MR: MasterRule>(
    comm: &Comm,
    pool: &ThreadPool,
    setup: &Setup,
    data: &mut SliceData,
    rule: &MR,
    state: &MR::State,
    cfg: &CuspConfig,
) -> ResolvedMasters {
    // Note: pure rules may run through here when the §IV-D5 elision is
    // disabled (`CuspConfig::force_stored_masters` ablation).
    let me = comm.host();
    let k = comm.num_hosts();
    let lo = data.node_lo();
    let local_n = data.num_nodes();

    // --- Step 1: request the masters of my edges' destinations. --------
    let needed = remote_dests(pool, data, setup, me);
    let mut per_peer_requests: Vec<Vec<Node>> = vec![Vec::new(); k];
    for &d in &needed {
        per_peer_requests[setup.reader_of(d)].push(d);
    }
    for peer in 0..k {
        if peer == me {
            continue;
        }
        let mut w = WireWriter::with_capacity(8 + per_peer_requests[peer].len() * 4);
        w.put_u32_slice(&per_peer_requests[peer]);
        comm.send_bytes(peer, TAG_MASTER_REQ, w.finish());
    }
    // requested_by[peer]: nodes of MY range that `peer` wants, sorted.
    let mut requested_by: Vec<Vec<Node>> = vec![Vec::new(); k];
    for _ in 0..k - 1 {
        let (src, payload) = comm.recv_any(TAG_MASTER_REQ);
        let mut r = WireReader::new(payload);
        requested_by[src] = r.get_u32_vec().expect("malformed master request");
        debug_assert!(requested_by[src].windows(2).all(|w| w[0] < w[1]));
    }

    // --- Step 2: assignment loop with periodic asynchronous sync. ------
    let local: Vec<AtomicU32> = (0..local_n).map(|_| AtomicU32::new(UNASSIGNED)).collect();
    let mut remote: HashMap<Node, PartId> = HashMap::with_capacity(needed.len());

    let rounds = if rule.uses_neighbor_masters() {
        cfg.sync_rounds.max(1) as usize
    } else {
        1
    };
    let stateful = !MR::State::STATELESS;
    let chunk = local_n.div_ceil(rounds).max(1);
    // Cursor into requested_by[peer] for masters already sent.
    let mut sent_cursor = vec![0usize; k];
    let mut delta_buf: Vec<u64> = Vec::new();
    // FINAL messages may arrive while we are still in our round loop (a
    // fast peer); count them wherever they show up.
    let mut finals = 0usize;

    let mut start = 0usize;
    for round in 0..rounds {
        let end = (start + chunk).min(local_n);
        if start < end {
            let view = MasterView::Stored {
                lo,
                local: &local,
                remote: &remote,
            };
            let parallel =
                rule.uses_neighbor_masters() && pool.threads() > 1 && !cfg.deterministic_sync;
            // Stream the round's node range chunk by chunk; for monolithic
            // data this is a single pass over the resident slice.
            data.for_chunks_in(lo + start as Node..lo + end as Node, |chunk, sub| {
                let prop = LocalProps::new(setup.num_nodes, setup.num_edges, setup.parts, chunk);
                let base = (sub.start - lo) as usize;
                let n = (sub.end - sub.start) as usize;
                if parallel {
                    // Parallel within the chunk; neighbor lookups see fresh
                    // local assignments through the atomics (Galois-style
                    // thread-safe, non-deterministic streaming).
                    do_all(pool, n, DEFAULT_GRAIN, |j| {
                        let v = sub.start + j as Node;
                        let m = rule.get_master(&prop, v, state, &view);
                        debug_assert!(m < setup.parts);
                        local[base + j].store(m, Ordering::Relaxed);
                    });
                } else {
                    for j in 0..n {
                        let v = sub.start + j as Node;
                        let m = rule.get_master(&prop, v, state, &view);
                        debug_assert!(m < setup.parts);
                        local[base + j].store(m, Ordering::Relaxed);
                    }
                }
            });
        }
        start = end;
        let last = round + 1 == rounds;
        if last {
            break;
        }
        // Send SYNC: state delta + newly assignable requested masters.
        if stateful {
            state.take_delta(&mut delta_buf);
        } else {
            delta_buf.clear();
        }
        let assigned_below = lo + start as Node;
        for peer in 0..k {
            if peer == me {
                continue;
            }
            let reqs = &requested_by[peer];
            let mut pairs: Vec<(Node, PartId)> = Vec::new();
            let mut cur = sent_cursor[peer];
            while cur < reqs.len() && reqs[cur] < assigned_below {
                let idx = (reqs[cur] - lo) as usize;
                pairs.push((reqs[cur], local[idx].load(Ordering::Relaxed)));
                cur += 1;
            }
            sent_cursor[peer] = cur;
            if !cfg.deterministic_sync && pairs.is_empty() && delta_buf.iter().all(|&v| v == 0) {
                continue; // nothing new for this peer this round
            }
            comm.send_bytes(peer, TAG_MASTER_SYNC, encode_sync(MSG_SYNC, &delta_buf, &pairs));
        }
        if cfg.deterministic_sync {
            // Lockstep rounds: every host sent one SYNC to every peer above
            // (no skip-empty elision), so blocking-receive exactly one from
            // each peer, in host order. Per-channel FIFO guarantees this is
            // the peer's round-`round` SYNC, making the state every chunk
            // observes a pure function of the config and seed.
            for peer in 0..k {
                if peer == me {
                    continue;
                }
                let payload = comm.recv_from(peer, TAG_MASTER_SYNC);
                if apply_sync::<MR>(payload, state, &mut remote) {
                    finals += 1;
                }
            }
        } else {
            // Drain whatever peers have sent, without blocking.
            while let Some((_src, payload)) = comm.try_recv_any(TAG_MASTER_SYNC) {
                if apply_sync::<MR>(payload, state, &mut remote) {
                    finals += 1;
                }
            }
        }
    }

    // --- Step 3: final flush and blocking reconciliation. --------------
    if stateful {
        state.take_delta(&mut delta_buf);
    } else {
        delta_buf.clear();
    }
    for peer in 0..k {
        if peer == me {
            continue;
        }
        let reqs = &requested_by[peer];
        let pairs: Vec<(Node, PartId)> = reqs[sent_cursor[peer]..]
            .iter()
            .map(|&v| (v, local[(v - lo) as usize].load(Ordering::Relaxed)))
            .collect();
        comm.send_bytes(peer, TAG_MASTER_SYNC, encode_sync(MSG_FINAL, &delta_buf, &pairs));
    }
    if cfg.deterministic_sync {
        // Fixed-order reconciliation: drain each peer's channel through its
        // FINAL, in host order, so state folds apply in the same order on
        // every run.
        for peer in 0..k {
            if peer == me {
                continue;
            }
            loop {
                let payload = comm.recv_from(peer, TAG_MASTER_SYNC);
                if apply_sync::<MR>(payload, state, &mut remote) {
                    finals += 1;
                    break;
                }
            }
        }
        debug_assert_eq!(finals, k - 1);
    } else {
        while finals < k - 1 {
            let (_src, payload) = comm.recv_any(TAG_MASTER_SYNC);
            if apply_sync::<MR>(payload, state, &mut remote) {
                finals += 1;
            }
        }
    }

    debug_assert_eq!(remote.len(), needed.len(), "unanswered master requests");
    ResolvedMasters::Stored {
        lo,
        local: local.into_iter().map(|a| a.into_inner()).collect(),
        // Freeze the protocol-time map into the dense form the per-edge
        // lookups in edge assignment and construction read from.
        remote: RemoteMasters::from_map(&remote),
    }
}

/// Builds the pure resolver for a pure rule (no communication at all).
pub fn pure_masters<MR: MasterRule + Clone + 'static>(rule: &MR) -> ResolvedMasters {
    debug_assert!(rule.is_pure());
    let rule = rule.clone();
    ResolvedMasters::Pure(Box::new(move |v| rule.pure_master(v)))
}

/// Sorted, deduplicated destinations of the local slice that fall outside
/// the local read range (the nodes whose masters this host must request).
fn remote_dests(pool: &ThreadPool, data: &mut SliceData, setup: &Setup, me: usize) -> Vec<Node> {
    let locals: PerThread<Vec<Node>> = PerThread::new(pool, |_| Vec::new());
    data.for_each_chunk(|chunk| {
        cusp_galois::do_all_with_tid(pool, chunk.num_nodes(), DEFAULT_GRAIN, |tid, i| {
            let v = chunk.node_lo + i as Node;
            locals.with(tid, |out| {
                for &d in chunk.edges(v) {
                    if setup.reader_of(d) != me {
                        out.push(d);
                    }
                }
            });
        });
    });
    let mut all: Vec<Node> = locals.into_inner().into_iter().flatten().collect();
    all.sort_unstable();
    all.dedup();
    all
}

fn encode_sync(kind: u8, delta: &[u64], pairs: &[(Node, PartId)]) -> bytes::Bytes {
    let mut w = WireWriter::with_capacity(1 + 8 + delta.len() * 8 + 8 + pairs.len() * 8);
    w.put_u8(kind);
    w.put_u64_slice(delta);
    w.put_u64(pairs.len() as u64);
    for &(v, p) in pairs {
        w.put_u32(v);
        w.put_u32(p);
    }
    w.finish()
}

/// Applies a SYNC/FINAL message; returns true if it was FINAL.
fn apply_sync<MR: MasterRule>(
    payload: bytes::Bytes,
    state: &MR::State,
    remote: &mut HashMap<Node, PartId>,
) -> bool {
    let mut r = WireReader::new(payload);
    let kind = r.get_u8().expect("empty sync message");
    let delta = r.get_u64_vec().expect("malformed sync delta");
    if !MR::State::STATELESS && !delta.is_empty() {
        state.apply_remote(&delta);
    }
    let n = r.get_u64().expect("malformed sync pairs") as usize;
    for _ in 0..n {
        let v = r.get_u32().expect("malformed pair");
        let p = r.get_u32().expect("malformed pair");
        remote.insert(v, p);
    }
    kind == MSG_FINAL
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphSource;
    use crate::phases::read::read_phase;
    use crate::policies::masters::{ContiguousEB, FennelEB};
    use crate::state::LoadState;
    use cusp_graph::gen::uniform::erdos_renyi;
    use cusp_net::Cluster;
    use std::sync::Arc;

    /// A trivially non-pure rule for protocol tests: master = node % k.
    #[derive(Clone)]
    struct ModRule;
    impl MasterRule for ModRule {
        type State = ();
        fn get_master(
            &self,
            prop: &LocalProps,
            node: Node,
            _s: &(),
            _m: &MasterView,
        ) -> PartId {
            node % prop.num_partitions()
        }
    }

    fn run_assignment<MR: MasterRule + Clone + 'static>(
        k: usize,
        rule_of: impl Fn(&Setup) -> MR + Sync,
        rounds: u32,
    ) -> Vec<(Node, Vec<PartId>, RemoteMasters)> {
        let g = Arc::new(erdos_renyi(300, 3000, 17));
        let out = Cluster::run(k, |comm| {
            let cfg = CuspConfig {
                sync_rounds: rounds,
                threads_per_host: 2,
                ..CuspConfig::default()
            };
            let pool = ThreadPool::new(cfg.threads_per_host);
            let mut r = read_phase(comm, &GraphSource::Memory(g.clone()), &cfg).unwrap();
            let rule = rule_of(&r.setup);
            let state = MR::State::new(r.setup.parts);
            match assign_masters(comm, &pool, &r.setup, &mut r.data, &rule, &state, &cfg) {
                ResolvedMasters::Stored { lo, local, remote } => (lo, local, remote),
                _ => unreachable!(),
            }
        });
        out.results
    }

    #[test]
    fn stateless_rule_assignments_are_consistent_across_hosts() {
        let results = run_assignment(4, |_s| ModRule, 1);
        // Every remote entry must equal what the owner computed locally.
        for (_, _, remote) in &results {
            assert!(!remote.is_empty());
            for (v, p) in remote.iter() {
                assert_eq!(p, v % 4, "remote master of {v} wrong");
                assert_eq!(remote.get(v), Some(p));
            }
        }
        // Local arrays complete.
        for (lo, local, _) in &results {
            for (i, &m) in local.iter().enumerate() {
                assert_eq!(m, (lo + i as u32) % 4);
            }
        }
    }

    #[test]
    fn fennel_assignments_complete_and_agree() {
        for rounds in [1u32, 4, 32] {
            let results = run_assignment(4, FennelEB::new, rounds);
            // Build the global truth from local arrays.
            let mut truth: HashMap<Node, PartId> = HashMap::new();
            for (lo, local, _) in &results {
                for (i, &m) in local.iter().enumerate() {
                    assert_ne!(m, UNASSIGNED);
                    assert!(m < 4);
                    truth.insert(lo + i as u32, m);
                }
            }
            assert_eq!(truth.len(), 300);
            // Remote views agree with the truth.
            for (_, _, remote) in &results {
                for (v, p) in remote.iter() {
                    assert_eq!(p, truth[&v], "rounds={rounds}: master of {v} diverged");
                }
            }
        }
    }

    #[test]
    fn remote_masters_dense_and_sparse_forms_agree() {
        // Dense: contiguous-ish ids → window form.
        let dense: HashMap<Node, PartId> =
            (100u32..400).filter(|v| v % 3 != 0).map(|v| (v, v % 5)).collect();
        let rm = RemoteMasters::from_map(&dense);
        assert_eq!(rm.len(), dense.len());
        for v in 0u32..500 {
            assert_eq!(rm.get(v), dense.get(&v).copied(), "dense get({v})");
        }
        // Sparse: ids scattered far beyond the dense-window cap → sorted
        // array + binary search.
        let sparse: HashMap<Node, PartId> =
            (0u32..8).map(|i| (i.wrapping_mul(100_000_003), i)).collect();
        let rm = RemoteMasters::from_map(&sparse);
        assert_eq!(rm.len(), sparse.len());
        for (&v, &p) in &sparse {
            assert_eq!(rm.get(v), Some(p));
            assert_eq!(rm.get(v ^ 1), sparse.get(&(v ^ 1)).copied());
        }
        // Empty map.
        let rm = RemoteMasters::from_map(&HashMap::new());
        assert!(rm.is_empty());
        assert_eq!(rm.get(0), None);
    }

    #[test]
    fn state_deltas_converge_across_hosts() {
        let g = Arc::new(erdos_renyi(400, 4000, 23));
        let out = Cluster::run(4, |comm| {
            let cfg = CuspConfig {
                sync_rounds: 8,
                ..CuspConfig::default()
            };
            let pool = ThreadPool::new(2);
            let mut r = read_phase(comm, &GraphSource::Memory(g.clone()), &cfg).unwrap();
            let rule = FennelEB::new(&r.setup);
            let state = LoadState::new(r.setup.parts);
            let _ = assign_masters(comm, &pool, &r.setup, &mut r.data, &rule, &state, &cfg);
            comm.barrier();
            (0..4u32).map(|p| (state.nodes(p), state.edges(p))).collect::<Vec<_>>()
        });
        // After the final flush, every host holds the same global state.
        for host in 1..4 {
            assert_eq!(out.results[host], out.results[0], "host {host} state diverged");
        }
        // Total nodes across partitions = nodes that went through the
        // scored path (≤ 400; high-degree nodes bypass to ContiguousEB).
        let total: u64 = out.results[0].iter().map(|&(n, _)| n).sum();
        assert!(total > 0 && total <= 400);
    }

    #[test]
    fn pure_resolver_never_communicates() {
        let g = Arc::new(erdos_renyi(200, 1000, 3));
        let out = Cluster::run(3, |comm| {
            comm.set_phase("master");
            let cfg = CuspConfig::default();
            let r = read_phase(comm, &GraphSource::Memory(g.clone()), &cfg).unwrap();
            let rule = ContiguousEB::new(&r.setup);
            let resolved = pure_masters(&rule);
            // Every host can resolve every node.
            (0..200u32).map(|v| resolved.of(v)).collect::<Vec<_>>()
        });
        for host in 1..3 {
            assert_eq!(out.results[host], out.results[0]);
        }
        assert_eq!(out.stats.phase("master").unwrap().total_bytes(), 0);
    }
}
