//! The five partitioning phases (paper §IV-B, Fig. 2):
//! reading → master assignment → edge assignment → allocation →
//! construction, orchestrated by [`driver`].

pub mod alloc;
pub mod construct;
pub mod delta;
pub mod driver;
pub mod edge_assign;
pub mod master;
pub mod pipeline;
pub mod read;
