//! User partitioning state and its synchronization contract.
//!
//! Partitioning rules may be history-sensitive (paper §III-A): "each
//! partitioning rule can define its own custom type to track the state that
//! can be queried and updated by it. CuSP transparently synchronizes this
//! state across hosts." Synchronization is periodic and bulk-synchronous in
//! spirit (§IV-D4): hosts make independent updates to their copy, and at
//! round boundaries the *deltas* accumulated since the last round are
//! exchanged and folded into every host's base copy.
//!
//! The contract here makes that delta structure explicit: a state exposes a
//! fixed-length `u64` sync vector. [`PartitionState::take_delta`] drains
//! the local pending updates (folding them into the local base at the same
//! time), and [`PartitionState::apply_remote`] folds a peer's delta in.
//! Because updates are commutative sums, reconciliation is correct no
//! matter how often it runs — only partition *quality* depends on the
//! frequency (§IV-D4), which is exactly the knob Table VI/VII sweep.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::PartId;

/// State tracked by a partitioning rule and synchronized by CuSP.
///
/// Rules that need no state use `()`, for which every operation is a no-op
/// and `STATELESS` lets the driver skip synchronization entirely ("if no
/// partitioning state is used by a policy, then synchronization of that
/// state is a no-op", §IV-D4).
pub trait PartitionState: Send + Sync + Sized {
    /// Whether this state is trivially empty (enables sync elision).
    const STATELESS: bool;

    /// Creates the initial state for `parts` partitions.
    fn new(parts: PartId) -> Self;

    /// Length of the delta vector exchanged at sync points.
    fn sync_len(&self) -> usize {
        0
    }

    /// Drains local pending updates into `buf` (which is cleared first) and
    /// folds them into the local base copy.
    fn take_delta(&self, buf: &mut Vec<u64>) {
        buf.clear();
    }

    /// Folds a remote host's delta into the local base copy.
    fn apply_remote(&self, _delta: &[u64]) {}

    /// Resets to the initial state, so replaying the same decisions during
    /// graph construction yields the same answers as edge assignment
    /// (paper §IV-B4).
    fn reset(&self) {}
}

impl PartitionState for () {
    const STATELESS: bool = true;

    fn new(_parts: PartId) -> Self {}
}

/// Per-partition load tracking: the `mstate.numNodes[p]` / `numEdges[p]`
/// arrays used by the Fennel and FennelEB master rules (Algorithm 1).
///
/// Thread-safe: rules update it from parallel loops with relaxed atomics.
/// `base` holds the globally reconciled portion; `delta` holds local
/// updates not yet exchanged. The visible value is their sum.
pub struct LoadState {
    base_nodes: Vec<AtomicU64>,
    delta_nodes: Vec<AtomicU64>,
    base_edges: Vec<AtomicU64>,
    delta_edges: Vec<AtomicU64>,
}

impl LoadState {
    /// Current view of nodes assigned to partition `p`.
    #[inline]
    pub fn nodes(&self, p: PartId) -> u64 {
        self.base_nodes[p as usize].load(Ordering::Relaxed)
            + self.delta_nodes[p as usize].load(Ordering::Relaxed)
    }

    /// Current view of edges assigned to partition `p`.
    #[inline]
    pub fn edges(&self, p: PartId) -> u64 {
        self.base_edges[p as usize].load(Ordering::Relaxed)
            + self.delta_edges[p as usize].load(Ordering::Relaxed)
    }

    /// Records a node (and `edges` out-edges) assigned to partition `p`.
    #[inline]
    pub fn add_assignment(&self, p: PartId, edges: u64) {
        self.delta_nodes[p as usize].fetch_add(1, Ordering::Relaxed);
        if edges > 0 {
            self.delta_edges[p as usize].fetch_add(edges, Ordering::Relaxed);
        }
    }

    /// Number of partitions tracked.
    pub fn parts(&self) -> usize {
        self.base_nodes.len()
    }
}

impl PartitionState for LoadState {
    const STATELESS: bool = false;

    fn new(parts: PartId) -> Self {
        let make = || (0..parts).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        LoadState {
            base_nodes: make(),
            delta_nodes: make(),
            base_edges: make(),
            delta_edges: make(),
        }
    }

    fn sync_len(&self) -> usize {
        self.base_nodes.len() * 2
    }

    fn take_delta(&self, buf: &mut Vec<u64>) {
        buf.clear();
        for (d, b) in self.delta_nodes.iter().zip(&self.base_nodes) {
            let v = d.swap(0, Ordering::Relaxed);
            b.fetch_add(v, Ordering::Relaxed);
            buf.push(v);
        }
        for (d, b) in self.delta_edges.iter().zip(&self.base_edges) {
            let v = d.swap(0, Ordering::Relaxed);
            b.fetch_add(v, Ordering::Relaxed);
            buf.push(v);
        }
    }

    fn apply_remote(&self, delta: &[u64]) {
        let k = self.base_nodes.len();
        assert_eq!(delta.len(), 2 * k, "malformed LoadState delta");
        for (b, &v) in self.base_nodes.iter().zip(&delta[..k]) {
            b.fetch_add(v, Ordering::Relaxed);
        }
        for (b, &v) in self.base_edges.iter().zip(&delta[k..]) {
            b.fetch_add(v, Ordering::Relaxed);
        }
    }

    fn reset(&self) {
        for a in self
            .base_nodes
            .iter()
            .chain(&self.delta_nodes)
            .chain(&self.base_edges)
            .chain(&self.delta_edges)
        {
            a.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_state_is_stateless() {
        const { assert!(<() as PartitionState>::STATELESS) };
        <() as PartitionState>::new(4);
        let mut buf = vec![1, 2, 3];
        ().take_delta(&mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn load_state_tracks_assignments() {
        let s = LoadState::new(3);
        s.add_assignment(1, 10);
        s.add_assignment(1, 5);
        s.add_assignment(2, 0);
        assert_eq!(s.nodes(1), 2);
        assert_eq!(s.edges(1), 15);
        assert_eq!(s.nodes(2), 1);
        assert_eq!(s.edges(2), 0);
        assert_eq!(s.nodes(0), 0);
    }

    #[test]
    fn take_delta_preserves_local_view() {
        let s = LoadState::new(2);
        s.add_assignment(0, 7);
        let mut buf = Vec::new();
        s.take_delta(&mut buf);
        assert_eq!(buf, vec![1, 0, 7, 0]);
        // Local view unchanged: the delta was folded into base.
        assert_eq!(s.nodes(0), 1);
        assert_eq!(s.edges(0), 7);
        // Second take yields zeros.
        s.take_delta(&mut buf);
        assert_eq!(buf, vec![0, 0, 0, 0]);
    }

    #[test]
    fn apply_remote_merges_peers() {
        let s = LoadState::new(2);
        s.add_assignment(0, 1);
        s.apply_remote(&[5, 2, 50, 20]);
        assert_eq!(s.nodes(0), 6);
        assert_eq!(s.nodes(1), 2);
        assert_eq!(s.edges(0), 51);
        assert_eq!(s.edges(1), 20);
    }

    #[test]
    fn two_hosts_converge_to_same_totals() {
        // Simulate the sync protocol between two host-local states.
        let a = LoadState::new(2);
        let b = LoadState::new(2);
        a.add_assignment(0, 3);
        b.add_assignment(1, 4);
        let (mut da, mut db) = (Vec::new(), Vec::new());
        a.take_delta(&mut da);
        b.take_delta(&mut db);
        a.apply_remote(&db);
        b.apply_remote(&da);
        for p in 0..2 {
            assert_eq!(a.nodes(p), b.nodes(p));
            assert_eq!(a.edges(p), b.edges(p));
        }
        assert_eq!(a.nodes(0), 1);
        assert_eq!(a.edges(1), 4);
    }

    #[test]
    fn reset_restores_initial() {
        let s = LoadState::new(2);
        s.add_assignment(0, 9);
        let mut buf = Vec::new();
        s.take_delta(&mut buf);
        s.apply_remote(&[1, 1, 1, 1]);
        s.reset();
        assert_eq!(s.nodes(0), 0);
        assert_eq!(s.edges(1), 0);
        s.take_delta(&mut buf);
        assert!(buf.iter().all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn apply_remote_validates_length() {
        let s = LoadState::new(2);
        s.apply_remote(&[1, 2, 3]);
    }
}
