//! Durable phase-boundary checkpoints for host-crash recovery.
//!
//! A restarted host (see [`cusp_net::Comm::restart_epoch`]) re-runs the
//! pipeline from the top. Graph reading always re-executes — the input
//! slice is not durable state — but the expensive communicating phases
//! (master assignment, edge assignment) can be skipped if their *outputs*
//! survived the crash. This module persists exactly those outputs, one
//! file per host, written at the phase barrier right after each phase
//! completes:
//!
//! * after **master assignment** ([`Stage::Master`]): the resolved master
//!   locations ([`MastersSnapshot`]) plus the transport state
//!   ([`cusp_net::NetCheckpoint`]) that re-aligns the restarted host's
//!   sequence numbers and barrier count with its peers;
//! * after **edge assignment** ([`Stage::EdgeAssign`]): additionally the
//!   [`EdgeAssignSnapshot`] (incoming sources, mirrors, master list, edge
//!   counts) that allocation and construction consume.
//!
//! Edge-rule partitioning state is deliberately **not** checkpointed: the
//! §IV-B4 replay token ([`crate::ReplayReady`]) resets it to its initial
//! value before construction anyway, so a freshly constructed state on the
//! restarted host is bit-identical to the reset state a crash-free run
//! would have used.
//!
//! The on-disk format follows `storage.rs`: a fixed header (magic,
//! version, stage, host topology), a payload, and a trailing CRC-32.
//! Corruption is handled by *rejection*, never by partial trust — any
//! truncation, bad magic, wrong topology, or checksum mismatch makes
//! [`CheckpointStore::load`] return `None`, and the restarted host simply
//! re-runs everything from the top (still bit-identical under the
//! determinism contract, just slower). Writes go through a temp file and
//! an atomic rename so a crash mid-write leaves the previous checkpoint
//! intact rather than a torn one.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use cusp_graph::Node;
use cusp_net::{NetCheckpoint, WireReader, WireWriter};

use crate::phases::edge_assign::EdgeAssignOutcome;
use crate::phases::master::{RemoteMasters, ResolvedMasters};
use crate::PartId;

/// File magic: `CUSPCK\0\0`, little-endian.
const MAGIC: u64 = 0x0000_4B43_5053_5543;
/// Format version; bump on any layout change. v2 added the per-phase
/// traffic rows to the embedded `NetCheckpoint` (process-level recovery
/// restores Table V accounting from them); v1 files decode as absent and
/// force a safe full re-run.
const VERSION: u32 = 2;

/// Which phase boundary a checkpoint captures. The discriminants match the
/// pipeline's barrier numbers (read = 1, master = 2, edge assignment = 3),
/// which is also the [`NetCheckpoint::barrier_calls`] value stored inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Master assignment finished; edge assignment had not.
    Master,
    /// Edge assignment finished; construction had not.
    EdgeAssign,
}

impl Stage {
    fn code(self) -> u32 {
        match self {
            Stage::Master => 2,
            Stage::EdgeAssign => 3,
        }
    }

    fn from_code(code: u32) -> Option<Stage> {
        match code {
            2 => Some(Stage::Master),
            3 => Some(Stage::EdgeAssign),
            _ => None,
        }
    }
}

/// Serializable form of [`ResolvedMasters`].
///
/// A pure rule's assignment is a replicated function, so only the fact
/// that it *was* pure is recorded — the restarted host rebuilds the
/// closure from the (deterministically re-built) rule. Stored assignments
/// persist the dense local range and the remote pairs verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MastersSnapshot {
    /// The master rule was pure; rebuild via
    /// [`crate::phases::master::pure_masters`].
    Pure,
    /// Stored assignments, mirroring [`ResolvedMasters::Stored`].
    Stored {
        /// First node of the locally read range.
        lo: Node,
        /// Master of each node in the local range.
        local: Vec<PartId>,
        /// `(node, master)` pairs for the requested remote nodes.
        remote: Vec<(Node, PartId)>,
    },
}

impl MastersSnapshot {
    /// Captures the resolved masters for persistence.
    pub fn of(masters: &ResolvedMasters) -> MastersSnapshot {
        match masters {
            ResolvedMasters::Pure(_) => MastersSnapshot::Pure,
            ResolvedMasters::Stored { lo, local, remote } => MastersSnapshot::Stored {
                lo: *lo,
                local: local.clone(),
                remote: remote.iter().collect(),
            },
        }
    }

    /// Rebuilds the stored form. `None` for [`MastersSnapshot::Pure`] —
    /// the caller must rebuild the pure closure from its rule instead.
    pub fn to_stored(&self) -> Option<ResolvedMasters> {
        match self {
            MastersSnapshot::Pure => None,
            MastersSnapshot::Stored { lo, local, remote } => {
                let map: HashMap<Node, PartId> = remote.iter().copied().collect();
                Some(ResolvedMasters::Stored {
                    lo: *lo,
                    local: local.clone(),
                    remote: RemoteMasters::from_map(&map),
                })
            }
        }
    }

    fn encode(&self, w: &mut WireWriter) {
        match self {
            MastersSnapshot::Pure => w.put_u8(0),
            MastersSnapshot::Stored { lo, local, remote } => {
                w.put_u8(1);
                w.put_u32(*lo);
                w.put_u32_slice(local);
                let keys: Vec<Node> = remote.iter().map(|&(v, _)| v).collect();
                let vals: Vec<PartId> = remote.iter().map(|&(_, p)| p).collect();
                w.put_u32_slice(&keys);
                w.put_u32_slice(&vals);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Option<MastersSnapshot> {
        match r.get_u8().ok()? {
            0 => Some(MastersSnapshot::Pure),
            1 => {
                let lo = r.get_u32().ok()?;
                let local = r.get_u32_vec().ok()?;
                let keys = r.get_u32_vec().ok()?;
                let vals = r.get_u32_vec().ok()?;
                if keys.len() != vals.len() {
                    return None;
                }
                let remote = keys.into_iter().zip(vals).collect();
                Some(MastersSnapshot::Stored { lo, local, remote })
            }
            _ => None,
        }
    }
}

/// Serializable form of [`EdgeAssignOutcome`] — everything allocation and
/// construction need from the edge-assignment exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeAssignSnapshot {
    /// `(node, edge count, master partition)` of sources landing here.
    pub incoming_srcs: Vec<(Node, u32, PartId)>,
    /// `(node, master partition)` of destination proxies to create.
    pub mirrors: Vec<(Node, PartId)>,
    /// Master-proxy nodes of this partition (stored rules only).
    pub my_master_nodes: Option<Vec<Node>>,
    /// Edges this host will receive during construction.
    pub to_receive: u64,
}

impl EdgeAssignSnapshot {
    /// Captures an edge-assignment outcome for persistence.
    pub fn of(ea: &EdgeAssignOutcome) -> EdgeAssignSnapshot {
        EdgeAssignSnapshot {
            incoming_srcs: ea.incoming_srcs.clone(),
            mirrors: ea.mirrors.clone(),
            my_master_nodes: ea.my_master_nodes.clone(),
            to_receive: ea.to_receive,
        }
    }

    /// Rebuilds the outcome a live edge-assignment phase would have
    /// produced.
    pub fn to_outcome(&self) -> EdgeAssignOutcome {
        EdgeAssignOutcome {
            incoming_srcs: self.incoming_srcs.clone(),
            mirrors: self.mirrors.clone(),
            my_master_nodes: self.my_master_nodes.clone(),
            to_receive: self.to_receive,
        }
    }

    fn encode(&self, w: &mut WireWriter) {
        let nodes: Vec<Node> = self.incoming_srcs.iter().map(|&(v, _, _)| v).collect();
        let counts: Vec<u32> = self.incoming_srcs.iter().map(|&(_, c, _)| c).collect();
        let owners: Vec<PartId> = self.incoming_srcs.iter().map(|&(_, _, p)| p).collect();
        w.put_u32_slice(&nodes);
        w.put_u32_slice(&counts);
        w.put_u32_slice(&owners);
        let mnodes: Vec<Node> = self.mirrors.iter().map(|&(v, _)| v).collect();
        let mparts: Vec<PartId> = self.mirrors.iter().map(|&(_, p)| p).collect();
        w.put_u32_slice(&mnodes);
        w.put_u32_slice(&mparts);
        match &self.my_master_nodes {
            None => w.put_u8(0),
            Some(list) => {
                w.put_u8(1);
                w.put_u32_slice(list);
            }
        }
        w.put_u64(self.to_receive);
    }

    fn decode(r: &mut WireReader) -> Option<EdgeAssignSnapshot> {
        let nodes = r.get_u32_vec().ok()?;
        let counts = r.get_u32_vec().ok()?;
        let owners = r.get_u32_vec().ok()?;
        if nodes.len() != counts.len() || nodes.len() != owners.len() {
            return None;
        }
        let incoming_srcs = nodes
            .into_iter()
            .zip(counts)
            .zip(owners)
            .map(|((v, c), p)| (v, c, p))
            .collect();
        let mnodes = r.get_u32_vec().ok()?;
        let mparts = r.get_u32_vec().ok()?;
        if mnodes.len() != mparts.len() {
            return None;
        }
        let mirrors = mnodes.into_iter().zip(mparts).collect();
        let my_master_nodes = match r.get_u8().ok()? {
            0 => None,
            1 => Some(r.get_u32_vec().ok()?),
            _ => return None,
        };
        let to_receive = r.get_u64().ok()?;
        Some(EdgeAssignSnapshot { incoming_srcs, mirrors, my_master_nodes, to_receive })
    }
}

/// One host's durable phase-boundary state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Which phase boundary this captures.
    pub stage: Stage,
    /// Transport state (send sequences, receive floors, barrier count).
    pub net: NetCheckpoint,
    /// Resolved master locations.
    pub masters: MastersSnapshot,
    /// Edge-assignment outputs; present iff `stage` is
    /// [`Stage::EdgeAssign`].
    pub edge_assign: Option<EdgeAssignSnapshot>,
}

/// CRC-32 (IEEE, reflected) over `bytes` — same polynomial as gzip/zip.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Per-host checkpoint file management: `host-{h}.ckpt` under a shared
/// directory, written atomically, loaded defensively.
pub struct CheckpointStore {
    path: PathBuf,
    tmp: PathBuf,
    hosts: usize,
    host: usize,
}

impl CheckpointStore {
    /// Opens (creating the directory if needed) the store for one host of
    /// an `hosts`-host cluster.
    pub fn new(dir: &Path, hosts: usize, host: usize) -> io::Result<CheckpointStore> {
        fs::create_dir_all(dir)?;
        Ok(CheckpointStore {
            path: dir.join(format!("host-{host}.ckpt")),
            tmp: dir.join(format!("host-{host}.ckpt.tmp")),
            hosts,
            host,
        })
    }

    /// The checkpoint file this store reads and writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Serializes `ck` and atomically replaces any previous checkpoint
    /// (temp file + rename, so a torn write cannot shadow a good one).
    pub fn save(&self, ck: &Checkpoint) -> io::Result<()> {
        let mut w = WireWriter::new();
        w.put_u64(MAGIC);
        w.put_u32(VERSION);
        w.put_u32(ck.stage.code());
        w.put_u64(self.hosts as u64);
        w.put_u64(self.host as u64);
        ck.net.encode(&mut w);
        ck.masters.encode(&mut w);
        match &ck.edge_assign {
            None => w.put_u8(0),
            Some(ea) => {
                w.put_u8(1);
                ea.encode(&mut w);
            }
        }
        let body = w.finish();
        let crc = crc32(&body);
        let mut file = Vec::with_capacity(body.len() + 4);
        file.extend_from_slice(&body);
        file.extend_from_slice(&crc.to_le_bytes());
        fs::write(&self.tmp, &file)?;
        fs::rename(&self.tmp, &self.path)
    }

    /// Loads the checkpoint, or `None` when the file is missing, for a
    /// different topology, or corrupt in any way (bad magic/version/stage,
    /// truncation, checksum mismatch, trailing garbage, inconsistent
    /// payload). A corrupt checkpoint is indistinguishable from an absent
    /// one by design: the restart falls back to full re-execution.
    pub fn load(&self) -> Option<Checkpoint> {
        let raw = fs::read(&self.path).ok()?;
        if raw.len() < 4 {
            return None;
        }
        let (body, tail) = raw.split_at(raw.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().ok()?);
        if crc32(body) != stored {
            return None;
        }
        let mut r = WireReader::new(Bytes::from(body.to_vec()));
        if r.get_u64().ok()? != MAGIC || r.get_u32().ok()? != VERSION {
            return None;
        }
        let stage = Stage::from_code(r.get_u32().ok()?)?;
        if r.get_u64().ok()? != self.hosts as u64 || r.get_u64().ok()? != self.host as u64 {
            return None;
        }
        let net = NetCheckpoint::decode(&mut r, self.hosts)?;
        let masters = MastersSnapshot::decode(&mut r)?;
        let edge_assign = match r.get_u8().ok()? {
            0 => None,
            1 => Some(EdgeAssignSnapshot::decode(&mut r)?),
            _ => return None,
        };
        if edge_assign.is_some() != (stage == Stage::EdgeAssign) || !r.is_exhausted() {
            return None;
        }
        Some(Checkpoint { stage, net, masters, edge_assign })
    }

    /// Removes any stale checkpoint (called at the start of a fresh run so
    /// a previous run's files cannot leak into this one). Errors are
    /// ignored — a missing file is the goal state.
    pub fn clear(&self) {
        let _ = fs::remove_file(&self.path);
        let _ = fs::remove_file(&self.tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusp_net::MAX_TAGS;

    fn sample(stage: Stage) -> Checkpoint {
        let hosts = 3;
        let mut net = NetCheckpoint {
            send_seqs: vec![0; hosts * MAX_TAGS],
            recv_floors: vec![0; hosts * MAX_TAGS],
            barrier_calls: stage.code() as u64,
            stats: vec![cusp_net::PhaseTraffic {
                name: "read".to_string(),
                sent_bytes: vec![0; hosts],
                sent_msgs: vec![0; hosts],
                recv_bytes: vec![7; hosts],
                recv_msgs: vec![1; hosts],
            }],
        };
        net.send_seqs[5] = 17;
        net.recv_floors[2 * MAX_TAGS + 1] = 4;
        let masters = MastersSnapshot::Stored {
            lo: 10,
            local: vec![0, 1, 2, 0, 1],
            remote: vec![(3, 2), (99, 0)],
        };
        let edge_assign = (stage == Stage::EdgeAssign).then(|| EdgeAssignSnapshot {
            incoming_srcs: vec![(10, 3, 0), (11, 1, 2)],
            mirrors: vec![(99, 0)],
            my_master_nodes: Some(vec![10, 12]),
            to_receive: 42,
        });
        Checkpoint { stage, net, masters, edge_assign }
    }

    fn store(dir: &Path) -> CheckpointStore {
        CheckpointStore::new(dir, 3, 1).expect("store opens")
    }

    #[test]
    fn round_trips_both_stages() {
        let dir = std::env::temp_dir().join(format!("cusp-ckpt-rt-{}", std::process::id()));
        let s = store(&dir);
        for stage in [Stage::Master, Stage::EdgeAssign] {
            let ck = sample(stage);
            s.save(&ck).expect("saves");
            assert_eq!(s.load().expect("loads"), ck, "{stage:?}");
        }
        // Pure masters and absent master lists round-trip too.
        let mut ck = sample(Stage::EdgeAssign);
        ck.masters = MastersSnapshot::Pure;
        ck.edge_assign.as_mut().unwrap().my_master_nodes = None;
        s.save(&ck).expect("saves");
        assert_eq!(s.load().expect("loads"), ck);
        s.clear();
        assert!(s.load().is_none(), "cleared checkpoint must read as absent");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_absent() {
        let dir = std::env::temp_dir().join(format!("cusp-ckpt-miss-{}", std::process::id()));
        assert!(store(&dir).load().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_corrupt_header_fields() {
        // Flip one byte in each fixed header field; every mutation must
        // read as absent (mirrors storage.rs's corruption tests).
        let dir = std::env::temp_dir().join(format!("cusp-ckpt-hdr-{}", std::process::id()));
        let s = store(&dir);
        s.save(&sample(Stage::Master)).expect("saves");
        let good = fs::read(s.path()).expect("readable");
        for (offset, what) in [(0, "magic"), (8, "version"), (12, "stage"), (16, "hosts"), (24, "host")] {
            let mut bad = good.clone();
            bad[offset] ^= 0xFF;
            fs::write(s.path(), &bad).expect("writable");
            assert!(s.load().is_none(), "corrupt {what} accepted");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_payload_flip_truncation_and_garbage() {
        let dir = std::env::temp_dir().join(format!("cusp-ckpt-pay-{}", std::process::id()));
        let s = store(&dir);
        s.save(&sample(Stage::EdgeAssign)).expect("saves");
        let good = fs::read(s.path()).expect("readable");

        // Any single payload bit flip fails the CRC.
        let mut bad = good.clone();
        bad[good.len() / 2] ^= 0x01;
        fs::write(s.path(), &bad).expect("writable");
        assert!(s.load().is_none(), "payload flip accepted");

        // Truncations at several depths, including mid-header and mid-CRC.
        for cut in [0, 3, 11, good.len() / 2, good.len() - 1] {
            fs::write(s.path(), &good[..cut]).expect("writable");
            assert!(s.load().is_none(), "truncation at {cut} accepted");
        }

        // Trailing garbage breaks the framing even with a valid prefix.
        let mut long = good.clone();
        long.extend_from_slice(&[0u8; 8]);
        fs::write(s.path(), &long).expect("writable");
        assert!(s.load().is_none(), "trailing garbage accepted");

        // Pure garbage.
        fs::write(s.path(), b"not a checkpoint at all").expect("writable");
        assert!(s.load().is_none(), "garbage accepted");

        // And the original still loads (the mutations above were copies).
        fs::write(s.path(), &good).expect("writable");
        assert!(s.load().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_other_topology() {
        let dir = std::env::temp_dir().join(format!("cusp-ckpt-topo-{}", std::process::id()));
        let s = store(&dir);
        s.save(&sample(Stage::Master)).expect("saves");
        // Same file, read back as a different host or cluster size.
        let other_host = CheckpointStore { path: s.path.clone(), tmp: s.tmp.clone(), hosts: 3, host: 2 };
        assert!(other_host.load().is_none(), "wrong host accepted");
        let other_size = CheckpointStore { path: s.path.clone(), tmp: s.tmp.clone(), hosts: 4, host: 1 };
        assert!(other_size.load().is_none(), "wrong cluster size accepted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
