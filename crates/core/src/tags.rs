//! Message tags used by the partitioning phases.
//!
//! Each protocol stage has its own tag so that its FIFO mailbox never
//! interleaves with another stage's (the fabric guarantees per-(src, dst,
//! tag) ordering).

use cusp_net::Tag;

/// Master phase: each host's initial request list of neighbor masters.
pub const TAG_MASTER_REQ: Tag = Tag(1);

/// Master phase: periodic sync messages and the final flush (a header byte
/// distinguishes `SYNC` from `FINAL`; `FINAL` is the last message a peer
/// sends on this tag).
pub const TAG_MASTER_SYNC: Tag = Tag(2);

/// Edge assignment phase: per-peer metadata (counts, mirrors, masters).
pub const TAG_EDGE_META: Tag = Tag(5);

/// Construction phase: buffered edge payloads.
pub const TAG_EDGES: Tag = Tag(7);

/// Header byte: a periodic master-sync message (more may follow).
pub const MSG_SYNC: u8 = 0;
/// Header byte: the peer's final master-sync message.
pub const MSG_FINAL: u8 = 1;

/// Header byte: an edge-assignment metadata message with no content.
pub const META_EMPTY: u8 = 0;
/// Header byte: a full edge-assignment metadata message.
pub const META_FULL: u8 = 1;
