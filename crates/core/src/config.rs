//! Partitioner configuration, input sources, and phase timing.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use cusp_graph::Csr;

/// Output representation of the constructed partition (paper §III-A:
/// "CuSP constructs a partition on each host's memory, in either CSR or
/// CSC format, as desired by the user").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OutputFormat {
    #[default]
    /// Csr, variant.
    Csr,
    /// Build CSR, then transpose in memory (Algorithm 4, line 13).
    Csc,
}

/// Where the input graph comes from.
#[derive(Clone)]
pub enum GraphSource {
    /// A `.bgr` file on disk; each host range-reads its slice (the paper's
    /// normal mode — graph reading time is part of partitioning time).
    /// Version-2 files carry per-edge `u32` data through the pipeline.
    File(PathBuf),
    /// An in-memory graph shared by all simulated hosts; each host copies
    /// out only its slice, standing in for a hot page cache.
    Memory(Arc<Csr>),
    /// An in-memory graph with per-edge `u32` data (aligned to the CSR
    /// edge order) — the memory analogue of a version-2 file.
    MemoryWeighted(Arc<Csr>, Arc<Vec<u32>>),
}

/// Tunable knobs of the partitioner. Defaults follow the paper's
/// evaluation setup (§V-A), scaled to a simulated laptop cluster.
#[derive(Clone, Debug)]
pub struct CuspConfig {
    /// Worker threads per host ("CuSP is typically run with as many
    /// threads as cores"; here hosts share one machine, so keep it small).
    pub threads_per_host: usize,
    /// Send-buffer flush threshold in bytes (paper default 8 MB on a real
    /// cluster; 256 KiB here — Fig. 7 sweeps this).
    pub buffer_threshold: usize,
    /// Number of synchronization rounds in the master assignment phase
    /// (paper default 100; Tables VI/VII sweep this).
    pub sync_rounds: u32,
    /// Importance of node count when dividing the graph among readers
    /// (§IV-B1: users can weight node and/or edge balancing).
    pub node_read_weight: u64,
    /// Importance of edge count when dividing the graph among readers.
    pub edge_read_weight: u64,
    /// Output format of the constructed partitions.
    pub output: OutputFormat,
    /// Ablation switch: disable the §IV-D5 "replicate computation" elision
    /// and run the full stored-master protocol even for pure rules.
    pub force_stored_masters: bool,
    /// Ablation switch: serialize/deserialize construction edge records
    /// element by element instead of with the bulk slice codec. The wire
    /// bytes are identical either way — this isolates the codec's CPU cost
    /// without perturbing the communication-volume tables.
    pub scalar_codec: bool,
    /// Upper bound on edges materialized per reader chunk. `None` (the
    /// default) streams each host's whole slice as one chunk — the
    /// monolithic behaviour. With `Some(c)` the reading phase keeps only
    /// the O(nodes) offset array resident and the edge-walking phases
    /// (master, edge assignment, construction) pull node-aligned chunks of
    /// at most `c` edges on demand, flushing construction send buffers at
    /// every chunk boundary, so peak resident edge state is O(c) instead
    /// of O(slice). A single node whose degree exceeds `c` gets a chunk of
    /// its own (the bound is `max(c, d_max)`). Under `deterministic_sync`
    /// the produced partitions are bit-identical for every chunk size.
    pub chunk_edges: Option<u64>,
    /// Directory for durable phase-boundary checkpoints (host-crash
    /// recovery). `None` (the default) disables checkpointing: a restarted
    /// host then re-runs the whole pipeline, which is still correct —
    /// receivers dedupe its re-sent traffic — just slower. With `Some(dir)`
    /// each host writes `host-{h}.ckpt` after the master and edge
    /// assignment phases and, on restart, resumes from the last completed
    /// phase (corrupt or missing checkpoints silently fall back to the
    /// full re-run). Meaningful only together with a
    /// [`cusp_net::CrashPlan`]; recovery relies on the determinism
    /// contract, so crash runs should also set `deterministic_sync` and
    /// `threads_per_host: 1`.
    pub checkpoint_dir: Option<PathBuf>,
    /// Overlap chunk re-reads with computation: when streaming
    /// (`chunk_edges: Some`), a background worker materializes the next
    /// chunk while the phases process the current one (double-buffered,
    /// bounded to one chunk ahead — peak residency stays O(chunk)). Chunk
    /// content is a pure function of the chunk index, so prefetching
    /// changes timing only: partitions stay fingerprint-identical to the
    /// unprefetched and monolithic runs, including under crash injection.
    /// On by default; `false` is the ablation.
    pub prefetch: bool,
    /// Recycle retired chunk buffers across loads instead of reallocating
    /// (cleared and refilled, so contents are unchanged). On by default;
    /// `false` is the ablation. The arena's high-water footprint is
    /// reported in [`PhaseTimes::arena_hw_bytes`].
    pub arena_reuse: bool,
    /// Seed construction send-buffer thresholds from the Fig. 7 sweep
    /// model (hosts × edges → threshold) instead of using the fixed
    /// `buffer_threshold`. Off by default so explicit threshold sweeps
    /// (fig7) and the paper-default configuration stay untouched.
    pub auto_buffer: bool,
    /// Testing switch: make partitioning bitwise reproducible. Replaces the
    /// master phase's asynchronous "drain whatever arrived" rounds
    /// (§IV-D5) with lockstep rounds (every host sends one SYNC to every
    /// peer per round and blocking-receives one from each, in host order),
    /// runs neighbor-aware chunks sequentially, and sorts each node's
    /// adjacency before freezing the CSR. With `threads_per_host: 1` the
    /// same seed then yields bit-identical partitions — the determinism
    /// contract the oracle harness asserts. Off by default because
    /// lockstep sacrifices the asynchrony the paper's streaming design is
    /// built around.
    pub deterministic_sync: bool,
    /// Print `CUSP-WORKER-PHASE <name>` on stdout as each pipeline phase
    /// begins. Used by the `cusp-part launch` supervisor to drive seeded
    /// process-kill injection at deterministic phase points (`--kill-seed`).
    /// Off by default — a library embedding should not chat on stdout.
    pub announce_phases: bool,
}

impl Default for CuspConfig {
    fn default() -> Self {
        CuspConfig {
            threads_per_host: 2,
            buffer_threshold: 256 << 10,
            sync_rounds: 10,
            node_read_weight: 0,
            edge_read_weight: 1,
            output: OutputFormat::Csr,
            force_stored_masters: false,
            scalar_codec: false,
            chunk_edges: None,
            checkpoint_dir: None,
            prefetch: true,
            arena_reuse: true,
            auto_buffer: false,
            deterministic_sync: false,
            announce_phases: false,
        }
    }
}

impl CuspConfig {
    /// The construction-phase send-buffer threshold actually used for a
    /// run over `local_edges` edges across `hosts` hosts: the configured
    /// [`CuspConfig::buffer_threshold`] normally, or the Fig. 7-derived
    /// model when [`CuspConfig::auto_buffer`] is set.
    pub fn effective_buffer_threshold(&self, hosts: usize, local_edges: u64) -> usize {
        if self.auto_buffer && hosts > 1 {
            tuned_buffer_threshold(hosts, local_edges)
        } else {
            self.buffer_threshold
        }
    }
}

/// Send-buffer threshold model fitted to the fig7 sweep: throughput
/// collapses near threshold 0 (a message per record) and is flat past a
/// modest buffer size, so aim for a few dozen flushes per destination and
/// clamp to the sweep's flat region.
///
/// Each host sends roughly `local_edges / hosts` edges to each remote
/// destination at ~5 wire bytes per edge (u32 destination plus amortized
/// record header); a 1/32 fraction of that keeps per-destination messages
/// in the tens while staying far from the pathological small-buffer end.
pub fn tuned_buffer_threshold(hosts: usize, local_edges: u64) -> usize {
    let k = hosts.max(2) as u64;
    let bytes_per_dest = local_edges.saturating_mul(5) / k;
    let raw = (bytes_per_dest / 32).clamp(4 << 10, 1 << 20) as usize;
    // Power-of-two sizing matches the fig7 sweep points and the allocator.
    raw.next_power_of_two().min(1 << 20)
}

/// Wall-clock time spent in each partitioning phase (paper Fig. 4).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Graph reading (phase 1).
    pub read: Duration,
    /// Master assignment (phase 2).
    pub master: Duration,
    /// Edge assignment (phase 3).
    pub edge_assign: Duration,
    /// Graph allocation (phase 4).
    pub alloc: Duration,
    /// Graph construction (phase 5).
    pub construct: Duration,
    /// High-water heap footprint (capacity bytes) of one chunk-arena
    /// buffer during the run — 0 for monolithic (unchunked) runs, where
    /// there is no arena. Recorded by the driver from the slice stream;
    /// not a phase time, but it travels with the per-run perf record the
    /// same way the durations do.
    pub arena_hw_bytes: u64,
}

impl PhaseTimes {
    /// Canonical phase names, in pipeline order. These are also the comm
    /// accounting tags ([`crate::phases::pipeline::Phase::NAME`]), so the
    /// timing table and the byte-count tables line up by construction.
    pub const NAMES: [&'static str; 5] = ["read", "master", "edge_assign", "alloc", "construct"];

    /// Records `elapsed` against the named phase. Called by the pipeline's
    /// [`crate::phases::pipeline::PhaseCtx`] timers; unknown names panic
    /// (a `Phase` impl outside the five-phase pipeline must keep its own
    /// clock).
    pub fn record(&mut self, phase: &str, elapsed: Duration) {
        match phase {
            "read" => self.read += elapsed,
            "master" => self.master += elapsed,
            "edge_assign" => self.edge_assign += elapsed,
            "alloc" => self.alloc += elapsed,
            "construct" => self.construct += elapsed,
            other => panic!("unknown phase {other:?} (expected one of {:?})", Self::NAMES),
        }
    }

    /// The time recorded for the named phase.
    pub fn get(&self, phase: &str) -> Duration {
        match phase {
            "read" => self.read,
            "master" => self.master,
            "edge_assign" => self.edge_assign,
            "alloc" => self.alloc,
            "construct" => self.construct,
            other => panic!("unknown phase {other:?} (expected one of {:?})", Self::NAMES),
        }
    }

    /// Per-phase `(name, time, share-of-total)` rows in pipeline order —
    /// the Fig. 4-style breakdown. Shares are fractions in `[0, 1]` and
    /// sum to 1 (all zero when no time was recorded at all).
    pub fn breakdown(&self) -> [(&'static str, Duration, f64); 5] {
        let total = self.total().as_secs_f64();
        Self::NAMES.map(|name| {
            let d = self.get(name);
            let share = if total > 0.0 { d.as_secs_f64() / total } else { 0.0 };
            (name, d, share)
        })
    }

    /// Total partitioning time (the quantity in Fig. 3).
    pub fn total(&self) -> Duration {
        self.read + self.master + self.edge_assign + self.alloc + self.construct
    }

    /// Element-wise max — the cluster-level phase breakdown is the max over
    /// hosts, since phases are separated by barriers.
    pub fn max(&self, other: &PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            read: self.read.max(other.read),
            master: self.master.max(other.master),
            edge_assign: self.edge_assign.max(other.edge_assign),
            alloc: self.alloc.max(other.alloc),
            construct: self.construct.max(other.construct),
            arena_hw_bytes: self.arena_hw_bytes.max(other.arena_hw_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CuspConfig::default();
        assert!(c.threads_per_host >= 1);
        assert!(c.sync_rounds >= 1);
        assert_eq!(c.edge_read_weight, 1);
        assert_eq!(c.output, OutputFormat::Csr);
    }

    #[test]
    fn phase_times_total_and_max() {
        let a = PhaseTimes {
            read: Duration::from_millis(5),
            master: Duration::from_millis(1),
            edge_assign: Duration::from_millis(2),
            alloc: Duration::from_millis(3),
            construct: Duration::from_millis(4),
            arena_hw_bytes: 0,
        };
        assert_eq!(a.total(), Duration::from_millis(15));
        let b = PhaseTimes {
            read: Duration::from_millis(1),
            master: Duration::from_millis(9),
            ..a
        };
        let m = a.max(&b);
        assert_eq!(m.read, Duration::from_millis(5));
        assert_eq!(m.master, Duration::from_millis(9));
    }

    #[test]
    fn tuned_threshold_tracks_scale_and_clamps() {
        // Tiny inputs pin to the lower clamp; huge ones to the upper.
        assert_eq!(tuned_buffer_threshold(4, 1_000), 4 << 10);
        assert_eq!(tuned_buffer_threshold(2, u64::MAX / 8), 1 << 20);
        // Mid-scale grows with edges and shrinks with host count, in
        // power-of-two steps within the clamp window.
        let a = tuned_buffer_threshold(4, 50_000_000);
        let b = tuned_buffer_threshold(16, 50_000_000);
        assert!(a >= b, "{a} < {b}");
        assert!(a.is_power_of_two() && b.is_power_of_two());
        assert!((4 << 10..=1 << 20).contains(&a));
        // auto_buffer off (or single host) keeps the configured value.
        let cfg = CuspConfig::default();
        assert_eq!(cfg.effective_buffer_threshold(8, 1 << 30), cfg.buffer_threshold);
        let auto = CuspConfig { auto_buffer: true, ..CuspConfig::default() };
        assert_eq!(auto.effective_buffer_threshold(1, 1 << 30), auto.buffer_threshold);
        assert_ne!(auto.effective_buffer_threshold(8, 1 << 30), auto.buffer_threshold);
    }
}
