//! # cusp: a Customizable Streaming edge Partitioner
//!
//! Reproduction of *CuSP: A Customizable Streaming Edge Partitioner for
//! Distributed Graph Analytics* (Hoang, Dathathri, Gill, Pingali — IPDPS
//! 2019).
//!
//! A graph partition is completely defined by (i) the assignment of edges
//! to partitions and (ii) the choice of master vertices (paper §II). CuSP
//! therefore asks the user for exactly two functions —
//! [`MasterRule::get_master`] and [`EdgeRule::get_edge_owner`] — and turns
//! them into a five-phase, parallel, distributed partitioning pipeline
//! (§IV-B):
//!
//! 1. **Graph reading** — each host range-reads a contiguous, edge-balanced
//!    slice of the on-disk CSR.
//! 2. **Master assignment** — each host assigns masters for its slice,
//!    with periodic asynchronous synchronization of the masters map and any
//!    user partitioning state (§IV-D4/5).
//! 3. **Edge assignment** — each host computes, per peer, how many edges of
//!    each of its vertices it will send and which mirror proxies the peer
//!    must create (Algorithm 3), exchanging only positional vectors and
//!    compacted lists (§IV-D2).
//! 4. **Graph allocation** — every host now knows its exact vertex and
//!    edge counts; it builds global↔local id maps and allocates its CSR.
//! 5. **Graph construction** — edges stream to their owners in buffered
//!    messages (§IV-D3) and are inserted in parallel into the preallocated
//!    CSR (Algorithm 4), with an optional in-memory transpose to CSC.
//!
//! The six policies evaluated in the paper (Table II) are provided in
//! [`policies::catalog`]: EEC, HVC, CVC, FEC, GVC, and SVC — plus the
//! building blocks to compose new ones in a few lines.
//!
//! ```
//! use cusp::{partition_with_policy, CuspConfig, PolicyKind};
//! use cusp_graph::gen::uniform::erdos_renyi;
//! use cusp_net::Cluster;
//! use std::sync::Arc;
//!
//! let graph = Arc::new(erdos_renyi(200, 1200, 42));
//! let out = Cluster::run(4, |comm| {
//!     let cfg = CuspConfig::default();
//!     partition_with_policy(comm, cusp::GraphSource::Memory(graph.clone()), PolicyKind::Cvc, &cfg)
//! });
//! let parts: Vec<_> = out.results.into_iter().map(|r| r.dist_graph).collect();
//! cusp::metrics::validate_partitioning(&graph, &parts).unwrap();
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod dist_graph;
pub mod distributed;
pub mod metrics;
pub mod orientation;
pub mod phases;
pub mod policies;
pub mod policy;
pub mod props;
pub mod state;
pub mod storage;
pub mod tags;
pub mod tracing;
pub mod verify;

pub use checkpoint::{Checkpoint, CheckpointStore};
pub use config::{CuspConfig, GraphSource, OutputFormat, PhaseTimes};
pub use distributed::{deterministic_for_comparison, partition_with_policy_tcp, TransportChoice};
pub use dist_graph::{DistGraph, PartitionClass};
pub use phases::alloc::MasterSpec;
pub use phases::delta::{partition_delta, DirtySet};
pub use phases::driver::{partition, PartitionOutput};
pub use phases::pipeline::{Phase, PhaseCtx, ReplayReady, SliceData};
pub use policies::catalog::{partition_delta_with_policy, partition_with_policy, PolicyKind};
pub use orientation::{partition_with_policy_oriented, Orientation};
pub use policy::{EdgeRule, MasterRule, MasterView, Setup};
pub use props::LocalProps;
pub use state::{LoadState, PartitionState};
pub use storage::{read_partition, write_partition};
pub use tracing::{phase_net_rows, phase_summary, render_phase_summary};
pub use verify::{
    check_all, check_comm_stats, check_delta_equivalence, check_partition, graph_fingerprint,
    partition_fingerprint, Violation, ViolationKind,
};

/// A partition id; CuSP runs with as many hosts as partitions, so this is
/// interchangeable with `cusp_net::HostId` (which is a `usize`).
pub type PartId = u32;

/// Terminal partitioning failures a caller can react to (as opposed to
/// panics, which indicate bugs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionError {
    /// A simulated host kept crashing until its restart budget ran out
    /// (see [`cusp_net::RecoveryOptions::max_restarts`]); the cluster shut
    /// down cleanly instead of hanging. No partition was produced.
    HostLost {
        /// The host that could not be kept alive.
        host: usize,
        /// Restart attempts made before giving up.
        restarts: u32,
    },
}

impl From<cusp_net::ClusterError> for PartitionError {
    fn from(e: cusp_net::ClusterError) -> Self {
        match e {
            cusp_net::ClusterError::HostLost { host, restarts } => {
                PartitionError::HostLost { host, restarts }
            }
        }
    }
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::HostLost { host, restarts } => write!(
                f,
                "partitioning failed: host {host} lost after {restarts} restart attempt(s)"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}
