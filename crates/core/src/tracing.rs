//! Glue between the network layer's measured statistics and the
//! `cusp-obs` analysis layer.
//!
//! `cusp-obs` is a leaf crate — it cannot see [`CommStats`] or
//! [`NetworkModel`] — so the conversion from measured traffic to the
//! neutral [`PhaseNet`] rows its summary consumes lives here, next to the
//! pipeline that produces both the spans and the traffic.

use cusp_net::{CommStats, NetworkModel};
use cusp_obs::{HostNet, PhaseNet, PhaseRow, Trace};

/// Converts a [`CommStats`] snapshot into per-phase traffic rows for the
/// `cusp-obs` summary, skipping the synthetic `(untagged)` phase (the
/// pipeline harness tags all real traffic, so that bucket is empty by
/// construction).
pub fn phase_net_rows(stats: &CommStats) -> Vec<PhaseNet> {
    stats
        .iter()
        .filter(|(name, _)| *name != "(untagged)")
        .map(|(name, snap)| PhaseNet {
            name: name.to_string(),
            hosts: (0..snap.hosts())
                .map(|h| HostNet {
                    msgs_out: snap.messages_out(h),
                    msgs_in: snap.messages_in(h),
                    bytes_out: snap.bytes_out(h),
                    bytes_in: snap.bytes_in(h),
                })
                .collect(),
        })
        .collect()
}

/// Builds the per-phase critical-path rows for a traced partitioning run:
/// compute time from the trace's phase spans, traffic from `stats`,
/// modeled network time from `model`.
pub fn phase_summary(trace: &Trace, stats: &CommStats, model: &NetworkModel) -> Vec<PhaseRow> {
    cusp_obs::summarize(trace, &phase_net_rows(stats), model.cost_model())
}

/// [`phase_summary`] rendered as the text table `cusp-part` prints after a
/// traced run.
pub fn render_phase_summary(trace: &Trace, stats: &CommStats, model: &NetworkModel) -> String {
    cusp_obs::render(&phase_summary(trace, stats, model), model.cost_model())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{partition_with_policy, CuspConfig, GraphSource, PolicyKind};
    use cusp_graph::gen::uniform::erdos_renyi;
    use cusp_net::{Cluster, ClusterOptions, TraceConfig};
    use std::sync::Arc;

    #[test]
    fn traced_partition_yields_full_summary() {
        let graph = Arc::new(erdos_renyi(300, 2400, 7));
        let opts = ClusterOptions {
            trace: Some(TraceConfig::default()),
            ..ClusterOptions::default()
        };
        let out = Cluster::run_with(3, opts, |comm| {
            let cfg = CuspConfig::default();
            partition_with_policy(comm, GraphSource::Memory(graph.clone()), PolicyKind::Cvc, &cfg)
        });
        let trace = out.trace.expect("trace requested");
        let model = NetworkModel::omni_path();
        let rows = phase_summary(&trace, &out.stats, &model);

        // One row per pipeline phase, each covering all hosts.
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, crate::PhaseTimes::NAMES);
        for row in &rows {
            assert_eq!(row.hosts.len(), 3);
            // Every host executed the phase, so compute time is non-zero.
            for h in &row.hosts {
                assert!(h.compute_s > 0.0, "phase {} host {} has no span", row.name, h.host);
            }
        }
        // CVC's 2D assignment moves edges in construction: the modeled
        // network time there must be non-zero on some host.
        let construct = rows.iter().find(|r| r.name == "construct").unwrap();
        assert!(construct.hosts.iter().any(|h| h.net_s > 0.0));

        // The rendered table mentions every phase.
        let table = render_phase_summary(&trace, &out.stats, &model);
        for name in crate::PhaseTimes::NAMES {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
    }

    #[test]
    fn untagged_phase_is_filtered() {
        let out = Cluster::run(2, |comm| comm.barrier());
        let rows = phase_net_rows(&out.stats);
        assert!(rows.iter().all(|r| r.name != "(untagged)"));
    }
}
