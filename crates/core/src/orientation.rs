//! CSR vs CSC input orientation (paper §III-B).
//!
//! "Each of these policies has two variants (24 policies in total) — one
//! that reads the input graph in CSR format and another that reads it in
//! CSC format." Reading CSC means the streaming loop sees each vertex's
//! *incoming* edges: degree thresholds become in-degree thresholds,
//! `Source` keeps in-edges with the destination's master, and so on —
//! which is how PowerLyra's HVC/GVC are meant to be run ("PowerLyra
//! introduced HVC and GVC considering incoming edges and in-degrees").
//!
//! A CSC file of a graph *is* the CSR file of its transpose, so the CSC
//! variant of a policy is exactly the CSR machinery applied to the
//! transposed input; the constructed partitions then hold in-edges. This
//! module provides the transposition plumbing and a partition entry point
//! that re-expresses the result in the original edge direction.

use std::sync::Arc;

use cusp_net::Comm;

use crate::config::{CuspConfig, GraphSource};
use crate::dist_graph::PartitionClass;
use crate::phases::driver::PartitionOutput;
use crate::policies::catalog::{partition_with_policy, PolicyKind};

/// Which adjacency direction the partitioner streams over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Orientation {
    /// Stream outgoing edges (the paper's default evaluation setup).
    #[default]
    Csr,
    /// Stream incoming edges (PowerLyra-style HVC/GVC).
    Csc,
}

/// Converts a source into the stream the orientation requires.
///
/// For in-memory graphs the transpose is computed on the fly. For on-disk
/// graphs the caller must supply the transposed `.bgr` (a CSC file is the
/// transposed CSR file; `cusp-part gen`/`convert` can produce it), since
/// an on-disk transpose is a preprocessing step, not a partitioning one.
pub fn oriented_source(source: &GraphSource, orientation: Orientation) -> GraphSource {
    match (orientation, source) {
        (Orientation::Csr, s) => s.clone(),
        (Orientation::Csc, GraphSource::Memory(g)) => GraphSource::Memory(Arc::new(g.transpose())),
        (Orientation::Csc, GraphSource::MemoryWeighted(g, w)) => {
            let (t, tw) = g.transpose_with_data(w);
            GraphSource::MemoryWeighted(Arc::new(t), Arc::new(tw))
        }
        (Orientation::Csc, GraphSource::File(_)) => panic!(
            "CSC partitioning of a file source requires the pre-transposed .bgr; \
             transpose it offline and pass Orientation::Csr"
        ),
    }
}

/// Partitions with a named policy in the given orientation.
///
/// Under `Orientation::Csc` the local CSR of each returned partition holds
/// the partition's edges in **reversed** form (an in-edge `(u, v)` of the
/// original is stored as `(v, u)`); with `OutputFormat::Csc` the
/// construction phase transposes it back so the partition stores original-
/// direction edges grouped by destination.
pub fn partition_with_policy_oriented(
    comm: &Comm,
    source: GraphSource,
    kind: PolicyKind,
    orientation: Orientation,
    cfg: &CuspConfig,
) -> PartitionOutput {
    let source = oriented_source(&source, orientation);
    let mut out = partition_with_policy(comm, source, kind, cfg);
    if orientation == Orientation::Csc {
        // An out-edge-cut over the transpose is an *in*-edge-cut over the
        // original — a general vertex-cut from the out-edge perspective.
        if out.dist_graph.class == PartitionClass::OutEdgeCut {
            out.dist_graph.class = PartitionClass::GeneralVertexCut;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use cusp_graph::gen::uniform::erdos_renyi;
    use cusp_net::Cluster;

    #[test]
    fn csc_partitioning_covers_transposed_edges() {
        let graph = Arc::new(erdos_renyi(300, 2400, 61));
        let transposed = graph.transpose();
        let g = Arc::clone(&graph);
        let out = Cluster::run(4, move |comm| {
            partition_with_policy_oriented(
                comm,
                GraphSource::Memory(g.clone()),
                PolicyKind::Hvc,
                Orientation::Csc,
                &CuspConfig::default(),
            )
            .dist_graph
        });
        // The union of the partitions is the transposed edge set.
        metrics::validate_partitioning(&transposed, &out.results).unwrap();
    }

    #[test]
    fn csc_eec_colocates_in_edges() {
        // The defining property of the CSC edge-cut: every *in*-edge of a
        // vertex lands on its master's partition.
        let graph = Arc::new(erdos_renyi(200, 1800, 67));
        let g = Arc::clone(&graph);
        let out = Cluster::run(4, move |comm| {
            partition_with_policy_oriented(
                comm,
                GraphSource::Memory(g.clone()),
                PolicyKind::Eec,
                Orientation::Csc,
                &CuspConfig::default(),
            )
            .dist_graph
        });
        for p in &out.results {
            // Stored edges are reversed: (dst, src). Masters own all their
            // reversed out-edges, so mirrors have none.
            for l in p.num_masters as u32..p.num_local() as u32 {
                assert_eq!(p.graph.out_degree(l), 0);
            }
            assert_eq!(p.class, PartitionClass::GeneralVertexCut);
        }
    }

    #[test]
    fn csr_orientation_is_identity() {
        let graph = Arc::new(erdos_renyi(100, 700, 71));
        let s = GraphSource::Memory(Arc::clone(&graph));
        match oriented_source(&s, Orientation::Csr) {
            GraphSource::Memory(g) => assert_eq!(*g, *graph),
            _ => panic!("expected memory source"),
        }
    }

    #[test]
    #[should_panic(expected = "pre-transposed")]
    fn csc_file_source_is_rejected() {
        let s = GraphSource::File("nonexistent.bgr".into());
        let _ = oriented_source(&s, Orientation::Csc);
    }
}
