//! Partition-invariant oracle.
//!
//! [`check_partition`] asserts the full cross-host invariant set CuSP's
//! correctness argument rests on (paper §III-B, Table I) and returns
//! **every** violation it finds — unlike `metrics::validate_partitioning`,
//! which stops at the first — so a corrupted partition can be attributed to
//! an invariant class:
//!
//! * **edge coverage** — every input edge is assigned to exactly one host
//!   (as a multiset: no loss, no duplication, no fabrication);
//! * **master assignment** — every vertex has exactly one master, and
//!   every host holding a proxy agrees where it is;
//! * **mirror symmetry** — mirror proxy lists are consistent with the
//!   master side (a mirror always points at a partition that actually
//!   hosts the vertex as a master, never at itself);
//! * **CSR well-formedness** — sorted offsets, in-bounds destinations,
//!   id maps sorted and duplicate-free with round-tripping lookups;
//! * **weight preservation** — per-edge data survives partitioning
//!   byte-for-byte (checked as a weighted edge multiset);
//! * **communication conservation** — per phase, bytes/messages sent equal
//!   bytes/messages received (the Table V accounting identity), via
//!   [`check_comm_stats`].
//!
//! The oracle is pure observation: it never mutates the partitions and is
//! safe to run from tests, benches, or debugging sessions.

use std::collections::HashMap;

use cusp_graph::{Csr, Node};
use cusp_net::CommStats;

use crate::dist_graph::DistGraph;
use crate::PartId;

/// The invariant class a [`Violation`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// An input edge is missing, duplicated, or fabricated.
    EdgeCoverage,
    /// A vertex has zero or multiple masters, or a proxy disagrees about
    /// where the master lives.
    MasterAssignment,
    /// A mirror's master pointer is not symmetric with the master side.
    MirrorSymmetry,
    /// A partition's CSR or id map is structurally broken.
    CsrWellFormed,
    /// Per-edge data was altered by partitioning.
    WeightPreservation,
    /// A phase sent bytes/messages that were never received (or vice
    /// versa).
    CommConservation,
    /// An incremental (delta) repartition diverged from the full
    /// re-partition of the same mutated graph.
    DeltaDivergence,
}

/// One concrete invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The invariant class that failed.
    pub kind: ViolationKind,
    /// The partition the violation was observed on, when attributable.
    pub part: Option<PartId>,
    /// Human-readable description with the offending ids/values.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.part {
            Some(p) => write!(f, "[{:?}] part {}: {}", self.kind, p, self.detail),
            None => write!(f, "[{:?}] {}", self.kind, self.detail),
        }
    }
}

/// Detailed violations reported per kind before summarizing with a count
/// (keeps mutation tests readable when thousands of edges are corrupted).
const MAX_DETAILED: usize = 16;

struct Reporter {
    out: Vec<Violation>,
    counts: HashMap<ViolationKind, usize>,
}

impl Reporter {
    fn new() -> Self {
        Reporter { out: Vec::new(), counts: HashMap::new() }
    }

    fn push(&mut self, kind: ViolationKind, part: Option<PartId>, detail: String) {
        let n = self.counts.entry(kind).or_insert(0);
        *n += 1;
        if *n <= MAX_DETAILED {
            self.out.push(Violation { kind, part, detail });
        }
    }

    fn finish(mut self) -> Vec<Violation> {
        for (&kind, &n) in &self.counts {
            if n > MAX_DETAILED {
                self.out.push(Violation {
                    kind,
                    part: None,
                    detail: format!("...and {} more {kind:?} violations", n - MAX_DETAILED),
                });
            }
        }
        self.out
    }
}

/// Checks every partition-level invariant of `parts` against the original
/// graph, returning all violations (empty means the partition is valid).
///
/// `original_data` must be the per-edge data aligned with `original`'s edge
/// order for weighted inputs, or `None` for unweighted ones.
pub fn check_partition(
    original: &Csr,
    original_data: Option<&[u32]>,
    parts: &[DistGraph],
) -> Vec<Violation> {
    let mut r = Reporter::new();
    let n = original.num_nodes() as u64;
    let k = parts.len();

    // --- Per-part structural checks. -----------------------------------
    for (idx, p) in parts.iter().enumerate() {
        let pid = Some(p.part_id);
        if p.part_id as usize != idx {
            r.push(
                ViolationKind::CsrWellFormed,
                pid,
                format!("part_id {} at index {idx}", p.part_id),
            );
        }
        if p.num_parts as usize != k {
            r.push(
                ViolationKind::CsrWellFormed,
                pid,
                format!("num_parts {} but {} partitions exist", p.num_parts, k),
            );
        }
        if p.global_nodes != n || p.global_edges != original.num_edges() {
            r.push(
                ViolationKind::CsrWellFormed,
                pid,
                format!(
                    "global shape {}x{} disagrees with input {}x{}",
                    p.global_nodes,
                    p.global_edges,
                    n,
                    original.num_edges()
                ),
            );
        }
        if p.master_of.len() != p.num_local() {
            r.push(
                ViolationKind::CsrWellFormed,
                pid,
                format!("master_of has {} entries for {} proxies", p.master_of.len(), p.num_local()),
            );
        }
        if p.num_masters > p.num_local() {
            r.push(
                ViolationKind::CsrWellFormed,
                pid,
                format!("num_masters {} exceeds {} proxies", p.num_masters, p.num_local()),
            );
        }
        // Id map: both segments strictly ascending, all ids in range.
        for (name, seg) in [("master", p.master_globals()), ("mirror", p.mirror_globals())] {
            for w in seg.windows(2) {
                if w[0] >= w[1] {
                    r.push(
                        ViolationKind::CsrWellFormed,
                        pid,
                        format!("{name} segment not strictly ascending at {} >= {}", w[0], w[1]),
                    );
                }
            }
            for &g in seg {
                if g as u64 >= n {
                    r.push(
                        ViolationKind::CsrWellFormed,
                        pid,
                        format!("{name} proxy for nonexistent global vertex {g}"),
                    );
                }
            }
        }
        // CSR shape: offsets sorted, destinations in bounds, weights sized.
        let nl = p.num_local();
        if p.graph.num_nodes() != nl {
            r.push(
                ViolationKind::CsrWellFormed,
                pid,
                format!("CSR has {} nodes for {} proxies", p.graph.num_nodes(), nl),
            );
        }
        let offsets = p.graph.offsets();
        for w in offsets.windows(2) {
            if w[0] > w[1] {
                r.push(
                    ViolationKind::CsrWellFormed,
                    pid,
                    format!("offsets not sorted: {} > {}", w[0], w[1]),
                );
            }
        }
        for &d in p.graph.dests() {
            if d as usize >= nl {
                r.push(
                    ViolationKind::CsrWellFormed,
                    pid,
                    format!("edge destination local id {d} out of range ({nl} proxies)"),
                );
            }
        }
        match (&p.edge_data, original_data) {
            (Some(d), _) if d.len() as u64 != p.graph.num_edges() => {
                r.push(
                    ViolationKind::WeightPreservation,
                    pid,
                    format!("{} weights for {} edges", d.len(), p.graph.num_edges()),
                );
            }
            (Some(_), None) => {
                r.push(
                    ViolationKind::WeightPreservation,
                    pid,
                    "partition carries weights but the input had none".to_string(),
                );
            }
            (None, Some(_)) => {
                r.push(
                    ViolationKind::WeightPreservation,
                    pid,
                    "input weights were dropped by partitioning".to_string(),
                );
            }
            _ => {}
        }
    }

    // --- Master uniqueness, coverage, and proxy agreement. --------------
    // master_home[v] = the partition hosting v's master proxy.
    let mut master_home: Vec<Option<PartId>> = vec![None; original.num_nodes()];
    for p in parts {
        for &g in p.master_globals() {
            if (g as u64) >= n {
                continue; // already reported above
            }
            match master_home[g as usize] {
                None => master_home[g as usize] = Some(p.part_id),
                Some(prev) => r.push(
                    ViolationKind::MasterAssignment,
                    Some(p.part_id),
                    format!("vertex {g} has masters on both part {prev} and part {}", p.part_id),
                ),
            }
        }
    }
    for (v, home) in master_home.iter().enumerate() {
        if home.is_none() {
            r.push(
                ViolationKind::MasterAssignment,
                None,
                format!("vertex {v} has no master on any partition"),
            );
        }
    }
    for p in parts {
        for (l, (&g, &claimed)) in p.local2global.iter().zip(&p.master_of).enumerate() {
            if (g as u64) >= n {
                continue;
            }
            if claimed as usize >= parts.len() {
                r.push(
                    ViolationKind::MasterAssignment,
                    Some(p.part_id),
                    format!("proxy of {g} claims nonexistent master partition {claimed}"),
                );
                continue;
            }
            let is_master = l < p.num_masters;
            if is_master {
                if claimed != p.part_id {
                    r.push(
                        ViolationKind::MasterAssignment,
                        Some(p.part_id),
                        format!("master proxy of {g} points at part {claimed}, not itself"),
                    );
                }
            } else {
                // Mirror symmetry: the claimed master partition must host v
                // as a master, and a mirror never points at its own part.
                if claimed == p.part_id {
                    r.push(
                        ViolationKind::MirrorSymmetry,
                        Some(p.part_id),
                        format!("mirror of {g} points at its own partition"),
                    );
                } else if master_home[g as usize] != Some(claimed) {
                    r.push(
                        ViolationKind::MirrorSymmetry,
                        Some(p.part_id),
                        format!(
                            "mirror of {g} points at part {claimed}, but the master lives on {:?}",
                            master_home[g as usize]
                        ),
                    );
                }
            }
        }
    }

    // --- Edge multiset coverage (and weight preservation). --------------
    // balance > 0: the input edge is missing; < 0: extra/duplicated.
    let mut unweighted: HashMap<(Node, Node), i64> = HashMap::with_capacity(original.num_edges() as usize);
    for (u, v) in original.iter_edges() {
        *unweighted.entry((u, v)).or_insert(0) += 1;
    }
    let mut weighted: HashMap<(Node, Node, u32), i64> = HashMap::new();
    if let Some(data) = original_data {
        for ((u, v), &w) in original.iter_edges().zip(data) {
            *weighted.entry((u, v, w)).or_insert(0) += 1;
        }
    }
    for p in parts {
        for (e, (lu, lv)) in p.graph.iter_edges().enumerate() {
            let (Some(&gu), Some(&gv)) =
                (p.local2global.get(lu as usize), p.local2global.get(lv as usize))
            else {
                continue; // out-of-range local id, already reported
            };
            *unweighted.entry((gu, gv)).or_insert(0) -= 1;
            if let (Some(_), Some(data)) = (original_data, &p.edge_data) {
                if let Some(&w) = data.get(e) {
                    *weighted.entry((gu, gv, w)).or_insert(0) -= 1;
                }
            }
        }
    }
    let mut coverage_ok = true;
    for (&(u, v), &bal) in unweighted.iter() {
        if bal > 0 {
            coverage_ok = false;
            r.push(
                ViolationKind::EdgeCoverage,
                None,
                format!("edge {u}->{v} assigned to no host ({bal} copies missing)"),
            );
        } else if bal < 0 {
            coverage_ok = false;
            r.push(
                ViolationKind::EdgeCoverage,
                None,
                format!("edge {u}->{v} over-assigned ({} extra copies)", -bal),
            );
        }
    }
    // Weight mismatches only make sense to report when the (u, v) multiset
    // itself balances — otherwise they restate the coverage failure.
    if coverage_ok && original_data.is_some() {
        for (&(u, v, w), &bal) in weighted.iter() {
            if bal != 0 {
                r.push(
                    ViolationKind::WeightPreservation,
                    None,
                    format!("edge {u}->{v} weight {w} imbalance {bal}"),
                );
            }
        }
    }

    r.finish()
}

/// Checks the per-phase communication conservation invariant: everything
/// sent was delivered to and consumed by the receiving application
/// (Table V accounting balances on both sides of the wire).
pub fn check_comm_stats(stats: &CommStats) -> Vec<Violation> {
    let mut r = Reporter::new();
    for (name, pairs) in stats.unconserved_phases() {
        for (src, dst) in pairs {
            let p = stats.phase(name).expect("phase exists");
            r.push(
                ViolationKind::CommConservation,
                None,
                format!(
                    "phase '{name}': {}->{} sent {}B/{} msgs, received {}B/{} msgs",
                    src,
                    dst,
                    p.bytes_between(src, dst),
                    p.messages_between(src, dst),
                    p.recv_bytes_between(src, dst),
                    p.recv_messages_between(src, dst),
                ),
            );
        }
    }
    r.finish()
}

/// Runs [`check_partition`] and [`check_comm_stats`] together.
pub fn check_all(
    original: &Csr,
    original_data: Option<&[u32]>,
    parts: &[DistGraph],
    stats: &CommStats,
) -> Vec<Violation> {
    let mut out = check_partition(original, original_data, parts);
    out.extend(check_comm_stats(stats));
    out
}

/// Incremental-equivalence oracle for `partition_delta` (ISSUE 8, paper
/// §V's determinism argument extended to mutation batches).
///
/// Asserts the delta-maintained partitions are (a) invariant-clean against
/// the **mutated** graph via [`check_partition`], and (b) when
/// `deterministic` is set (the run used `CuspConfig::deterministic_sync`),
/// [`partition_fingerprint`]-identical to `full_parts`, a from-scratch
/// re-partition of the same mutated graph under the same policy and
/// config. Divergence is reported as [`ViolationKind::DeltaDivergence`]
/// with both fingerprints in the detail.
pub fn check_delta_equivalence(
    mutated: &Csr,
    mutated_data: Option<&[u32]>,
    delta_parts: &[DistGraph],
    full_parts: &[DistGraph],
    deterministic: bool,
) -> Vec<Violation> {
    let mut out = check_partition(mutated, mutated_data, delta_parts);
    if delta_parts.len() != full_parts.len() {
        out.push(Violation {
            kind: ViolationKind::DeltaDivergence,
            part: None,
            detail: format!(
                "delta produced {} partitions, full re-partition {}",
                delta_parts.len(),
                full_parts.len()
            ),
        });
        return out;
    }
    if deterministic {
        let d = partition_fingerprint(delta_parts);
        let f = partition_fingerprint(full_parts);
        if d != f {
            out.push(Violation {
                kind: ViolationKind::DeltaDivergence,
                part: None,
                detail: format!(
                    "delta fingerprint {d:#018x} != full re-partition fingerprint {f:#018x} \
                     under deterministic_sync"
                ),
            });
        }
    }
    out
}

/// FNV-1a fingerprint over every structural byte of the partitions, in
/// partition order. Two runs produce the same fingerprint iff they built
/// bit-identical partitions (id maps, master pointers, CSR arrays, weights,
/// and class) — the quantity the determinism harness compares.
pub fn partition_fingerprint(parts: &[DistGraph]) -> u64 {
    let mut h = Fnv::new();
    h.u64(parts.len() as u64);
    for p in parts {
        h.u64(p.part_id as u64);
        h.u64(p.num_masters as u64);
        h.u64(p.global_nodes);
        h.u64(p.global_edges);
        h.u64(p.class as u64);
        h.u64(p.local2global.len() as u64);
        for &g in &p.local2global {
            h.u64(g as u64);
        }
        for &m in &p.master_of {
            h.u64(m as u64);
        }
        for &o in p.graph.offsets() {
            h.u64(o);
        }
        for &d in p.graph.dests() {
            h.u64(d as u64);
        }
        match &p.edge_data {
            None => h.u64(0),
            Some(data) => {
                h.u64(1 + data.len() as u64);
                for &w in data {
                    h.u64(w as u64);
                }
            }
        }
    }
    h.finish()
}

/// FNV-1a fingerprint over every structural byte of an *input* graph
/// (offsets, destinations, optional per-edge weights). This is the
/// graph-identity half of a serving-layer cache key: two graphs share a
/// fingerprint iff their CSR representations are bit-identical, so a
/// cached partition of one is valid for the other. Complements
/// [`partition_fingerprint`], which hashes the *output*.
pub fn graph_fingerprint(graph: &Csr, weights: Option<&[u32]>) -> u64 {
    let mut h = Fnv::new();
    h.u64(graph.num_nodes() as u64);
    h.u64(graph.num_edges());
    for &o in graph.offsets() {
        h.u64(o);
    }
    for &d in graph.dests() {
        h.u64(d as u64);
    }
    match weights {
        None => h.u64(0),
        Some(ws) => {
            h.u64(1 + ws.len() as u64);
            for &w in ws {
                h.u64(w as u64);
            }
        }
    }
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_graph::PartitionClass;

    /// A hand-built valid 2-partition of the 4-cycle 0->1->2->3->0.
    fn valid_parts() -> (Csr, Vec<DistGraph>) {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        // Part 0 masters {0,1}, mirrors {2}; holds edges 0->1, 1->2.
        // Part 1 masters {2,3}, mirrors {0}; holds edges 2->3, 3->0.
        let p0 = DistGraph {
            part_id: 0,
            num_parts: 2,
            global_nodes: 4,
            global_edges: 4,
            num_masters: 2,
            local2global: vec![0, 1, 2],
            master_of: vec![0, 0, 1],
            graph: Csr::from_edges(3, &[(0, 1), (1, 2)]),
            edge_data: None,
            class: PartitionClass::OutEdgeCut,
        };
        let p1 = DistGraph {
            part_id: 1,
            num_parts: 2,
            global_nodes: 4,
            global_edges: 4,
            num_masters: 2,
            local2global: vec![2, 3, 0],
            master_of: vec![1, 1, 0],
            graph: Csr::from_edges(3, &[(0, 1), (1, 2)]),
            edge_data: None,
            class: PartitionClass::OutEdgeCut,
        };
        (g, vec![p0, p1])
    }

    #[test]
    fn valid_partition_has_no_violations() {
        let (g, parts) = valid_parts();
        assert!(check_partition(&g, None, &parts).is_empty());
    }

    #[test]
    fn missing_edge_is_edge_coverage() {
        let (g, mut parts) = valid_parts();
        parts[0].graph = Csr::from_edges(3, &[(0, 1)]); // drops 1->2
        let v = check_partition(&g, None, &parts);
        assert!(v.iter().any(|v| v.kind == ViolationKind::EdgeCoverage), "{v:?}");
    }

    #[test]
    fn duplicate_master_is_master_assignment() {
        let (g, mut parts) = valid_parts();
        // Part 1 also claims vertex 0 as a master.
        parts[1].num_masters = 3;
        parts[1].local2global = vec![0, 2, 3];
        parts[1].master_of = vec![1, 1, 1];
        parts[1].graph = Csr::from_edges(3, &[(1, 2), (2, 0)]);
        let v = check_partition(&g, None, &parts);
        assert!(v.iter().any(|v| v.kind == ViolationKind::MasterAssignment), "{v:?}");
    }

    #[test]
    fn wrong_mirror_pointer_is_mirror_symmetry() {
        let (g, mut parts) = valid_parts();
        parts[0].master_of[2] = 0; // mirror of vertex 2 points at itself
        let v = check_partition(&g, None, &parts);
        assert!(v.iter().any(|v| v.kind == ViolationKind::MirrorSymmetry), "{v:?}");
    }

    #[test]
    fn out_of_range_dest_is_csr_well_formed() {
        let (g, mut parts) = valid_parts();
        // Destination local id 7 with only 3 proxies.
        parts[0].graph = Csr::from_parts(vec![0, 1, 2, 2], vec![1, 7]);
        let v = check_partition(&g, None, &parts);
        assert!(v.iter().any(|v| v.kind == ViolationKind::CsrWellFormed), "{v:?}");
    }

    #[test]
    fn graph_fingerprint_tracks_structure_and_weights() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let a = graph_fingerprint(&g, None);
        assert_eq!(a, graph_fingerprint(&g, None), "not deterministic");
        let shuffled = Csr::from_edges(4, &[(0, 1), (1, 3), (2, 3)]);
        assert_ne!(a, graph_fingerprint(&shuffled, None));
        // Weights change the identity; identical weights agree.
        let w = vec![5u32, 6, 7];
        assert_ne!(a, graph_fingerprint(&g, Some(&w)));
        assert_eq!(graph_fingerprint(&g, Some(&w)), graph_fingerprint(&g, Some(&w)));
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let (_, parts) = valid_parts();
        let a = partition_fingerprint(&parts);
        let (_, mut tweaked) = valid_parts();
        tweaked[1].master_of[2] = 1;
        assert_ne!(a, partition_fingerprint(&tweaked));
        let (_, same) = valid_parts();
        assert_eq!(a, partition_fingerprint(&same));
    }

    #[test]
    fn violation_reporting_is_capped() {
        let g = Csr::from_edges(2, &[(0, 1)]);
        // A single empty partition: every vertex lacks a master and the
        // edge is uncovered; with many vertices the report must stay small.
        let big = Csr::from_edges(1000, &(0..999).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let p = DistGraph {
            part_id: 0,
            num_parts: 1,
            global_nodes: 1000,
            global_edges: 999,
            num_masters: 0,
            local2global: vec![],
            master_of: vec![],
            graph: Csr::from_edges(0, &[]),
            edge_data: None,
            class: PartitionClass::GeneralVertexCut,
        };
        let v = check_partition(&big, None, &[p]);
        assert!(!v.is_empty());
        assert!(v.len() <= 2 * (MAX_DETAILED + 1) + 4, "report exploded: {} entries", v.len());
        let _ = g;
    }
}
