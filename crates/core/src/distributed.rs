//! Running the partitioner across real OS processes.
//!
//! [`partition_with_policy`] is already transport-agnostic — it only ever
//! talks to a [`cusp_net::Comm`] — so distributing it is a matter of
//! standing the five-phase pipeline on a [`TcpTransport`] instead of the
//! in-process simulator. This module is that plumbing: one worker process
//! per host, each calling [`partition_with_policy_tcp`] over an
//! established mesh, with every process reading the shared input graph
//! itself (range reads mean each host touches only its slice, exactly as
//! on a real cluster with a shared filesystem).
//!
//! Under [`CuspConfig::deterministic_sync`] the produced partitions are
//! bit-identical to a simulated run with the same configuration — the
//! cross-process oracle `tests/cross_process.rs` asserts merged
//! [`crate::partition_fingerprint`] equality end to end.

use cusp_net::{Cluster, ClusterOptions, TcpRunOutput, TcpTransport};

use crate::config::{CuspConfig, GraphSource};
use crate::phases::driver::PartitionOutput;
use crate::policies::catalog::{partition_with_policy, PolicyKind};
use crate::PartitionError;

/// Which transport a partition run should execute over.
///
/// The in-process simulator is the default everywhere; TCP is chosen
/// explicitly by the multi-process tooling (`cusp-part worker`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportChoice {
    /// All hosts are threads of this process sharing one fabric.
    #[default]
    Sim,
    /// This process is one host of a TCP mesh of worker processes.
    Tcp,
}

/// Runs the five-phase pipeline as **one host of a multi-process
/// cluster**: the peers are other worker processes executing this same
/// function over their own ends of the TCP mesh.
///
/// A peer process dying mid-run surfaces as
/// [`PartitionError::HostLost`] — never a hang. The returned
/// [`TcpRunOutput`] carries this host's partition plus its local view of
/// the communication statistics (its send rows and receive rows); the
/// orchestrator merges those across workers for conservation checks.
pub fn partition_with_policy_tcp(
    transport: TcpTransport,
    source: GraphSource,
    kind: PolicyKind,
    cfg: &CuspConfig,
) -> Result<TcpRunOutput<PartitionOutput>, PartitionError> {
    Cluster::try_run_tcp(transport, ClusterOptions::default(), |comm| {
        partition_with_policy(comm, source, kind, cfg)
    })
    .map_err(PartitionError::from)
}

/// Pins `cfg` to the determinism contract required for cross-transport
/// fingerprint comparison: one worker thread per host and
/// [`CuspConfig::deterministic_sync`], so a TCP run and a simulated run
/// of the same input produce bit-identical partitions regardless of
/// arrival order.
pub fn deterministic_for_comparison(mut cfg: CuspConfig) -> CuspConfig {
    cfg.deterministic_sync = true;
    cfg.threads_per_host = 1;
    cfg
}
