//! Partition persistence ("These partitions can be written to disk if
//! desired", paper §III-A).
//!
//! Format (`.part`, little-endian):
//!
//! ```text
//! magic          u64   0x5452_4150_5355_43 ("CUSPART")
//! version        u64   1
//! part_id        u32
//! num_parts      u32
//! global_nodes   u64
//! global_edges   u64
//! num_masters    u64
//! num_local      u64
//! class          u8    (0 = OutEdgeCut, 1 = TwoDimensional, 2 = GeneralVertexCut)
//! weighted       u8    (1 = per-edge u32 data follows dests)
//! local2global   u32 × num_local
//! master_of      u32 × num_local
//! offsets        u64 × (num_local + 1)
//! dests          u32 × num_edges
//! data           u32 × num_edges   (weighted only)
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use cusp_graph::Csr;

use crate::dist_graph::{DistGraph, PartitionClass};

const MAGIC: u64 = 0x0054_5241_5053_5543;
const VERSION: u64 = 1;

fn class_tag(c: PartitionClass) -> u8 {
    match c {
        PartitionClass::OutEdgeCut => 0,
        PartitionClass::TwoDimensional => 1,
        PartitionClass::GeneralVertexCut => 2,
    }
}

fn class_from(tag: u8) -> io::Result<PartitionClass> {
    Ok(match tag {
        0 => PartitionClass::OutEdgeCut,
        1 => PartitionClass::TwoDimensional,
        2 => PartitionClass::GeneralVertexCut,
        t => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown partition class tag {t}"),
            ))
        }
    })
}

/// Writes one partition to `path`.
pub fn write_partition(path: &Path, dg: &DistGraph) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&dg.part_id.to_le_bytes())?;
    w.write_all(&dg.num_parts.to_le_bytes())?;
    w.write_all(&dg.global_nodes.to_le_bytes())?;
    w.write_all(&dg.global_edges.to_le_bytes())?;
    w.write_all(&(dg.num_masters as u64).to_le_bytes())?;
    w.write_all(&(dg.num_local() as u64).to_le_bytes())?;
    w.write_all(&[class_tag(dg.class)])?;
    w.write_all(&[u8::from(dg.edge_data.is_some())])?;
    for &g in &dg.local2global {
        w.write_all(&g.to_le_bytes())?;
    }
    for &m in &dg.master_of {
        w.write_all(&m.to_le_bytes())?;
    }
    for &o in dg.graph.offsets() {
        w.write_all(&o.to_le_bytes())?;
    }
    for &d in dg.graph.dests() {
        w.write_all(&d.to_le_bytes())?;
    }
    if let Some(data) = &dg.edge_data {
        for &x in data {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Fixed header size: magic + version + part_id + num_parts +
/// global_nodes + global_edges + num_masters + num_local + 2 tag bytes.
const HEADER_BYTES: u64 = 8 + 8 + 4 + 4 + 8 + 8 + 8 + 8 + 2;

/// Reads a partition written by [`write_partition`].
///
/// Claimed element counts are bounded against the file's actual size
/// *before* any allocation: a corrupt-but-plausible header must surface
/// as `InvalidData` (so cache loads fall back to recompute), never as an
/// allocation-failure abort.
pub fn read_partition(path: &Path) -> io::Result<DistGraph> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut r = BufReader::new(file);
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    if read_u64(&mut r)? != MAGIC {
        return Err(bad("bad partition magic".into()));
    }
    let version = read_u64(&mut r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported partition version {version}")));
    }
    let part_id = read_u32(&mut r)?;
    let num_parts = read_u32(&mut r)?;
    let global_nodes = read_u64(&mut r)?;
    let global_edges = read_u64(&mut r)?;
    let num_masters = read_u64(&mut r)?;
    let num_local = read_u64(&mut r)?;
    let mut tag = [0u8; 2];
    r.read_exact(&mut tag)?;
    let class = class_from(tag[0])?;
    let weighted = tag[1] != 0;
    if num_masters > num_local {
        return Err(bad("num_masters exceeds num_local".into()));
    }
    // Each local node costs 4 (local2global) + 4 (master_of) + 8
    // (offset) = 16 bytes, plus one trailing 8-byte offset.
    let body_bytes = file_len.saturating_sub(HEADER_BYTES);
    let node_bytes = match num_local.checked_mul(16).and_then(|b| b.checked_add(8)) {
        Some(b) if b <= body_bytes => b,
        _ => {
            return Err(bad(format!(
                "corrupt partition: {num_local} local nodes cannot fit in {file_len}-byte file"
            )))
        }
    };
    let num_masters = num_masters as usize;
    let num_local = num_local as usize;
    let mut local2global = Vec::with_capacity(num_local);
    for _ in 0..num_local {
        local2global.push(read_u32(&mut r)?);
    }
    let mut master_of = Vec::with_capacity(num_local);
    for _ in 0..num_local {
        master_of.push(read_u32(&mut r)?);
    }
    let mut offsets = Vec::with_capacity(num_local + 1);
    for _ in 0..=num_local {
        offsets.push(read_u64(&mut r)?);
    }
    // Validate CSR shape here rather than letting Csr::from_parts assert:
    // a corrupted body must surface as InvalidData, not a panic.
    if offsets.first() != Some(&0) || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad("corrupt partition: CSR offsets not monotone from zero".into()));
    }
    let num_edges = *offsets.last().unwrap_or(&0);
    // Monotone-but-huge edge counts must also be bounded by the bytes
    // that actually remain after the per-node arrays.
    let per_edge: u64 = if weighted { 8 } else { 4 };
    match num_edges.checked_mul(per_edge) {
        Some(b) if b <= body_bytes - node_bytes => {}
        _ => {
            return Err(bad(format!(
                "corrupt partition: {num_edges} edges cannot fit in {file_len}-byte file"
            )))
        }
    }
    let num_edges = num_edges as usize;
    let mut dests = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        dests.push(read_u32(&mut r)?);
    }
    let edge_data = if weighted {
        let mut data = Vec::with_capacity(num_edges);
        for _ in 0..num_edges {
            data.push(read_u32(&mut r)?);
        }
        Some(data)
    } else {
        None
    };
    Ok(DistGraph {
        part_id,
        num_parts,
        global_nodes,
        global_edges,
        num_masters,
        local2global,
        master_of,
        graph: Csr::from_parts(offsets, dests),
        edge_data,
        class,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DistGraph {
        DistGraph {
            part_id: 1,
            num_parts: 4,
            global_nodes: 100,
            global_edges: 500,
            num_masters: 2,
            local2global: vec![10, 20, 5, 99],
            master_of: vec![1, 1, 0, 3],
            graph: Csr::from_edges(4, &[(0, 2), (0, 3), (1, 2)]),
            edge_data: Some(vec![7, 8, 9]),
            class: PartitionClass::TwoDimensional,
        }
    }

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cusp-storage-{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trip() {
        let dg = sample();
        let path = temp("roundtrip.part");
        write_partition(&path, &dg).unwrap();
        let back = read_partition(&path).unwrap();
        assert_eq!(back.part_id, dg.part_id);
        assert_eq!(back.num_parts, dg.num_parts);
        assert_eq!(back.global_nodes, dg.global_nodes);
        assert_eq!(back.global_edges, dg.global_edges);
        assert_eq!(back.num_masters, dg.num_masters);
        assert_eq!(back.local2global, dg.local2global);
        assert_eq!(back.master_of, dg.master_of);
        assert_eq!(back.graph, dg.graph);
        assert_eq!(back.edge_data, dg.edge_data);
        assert_eq!(back.class, dg.class);
        std::fs::remove_file(&path).ok();
    }

    /// Round-trips every class tag, both weighted and unweighted — the
    /// class byte and the weighted flag are the only format branches, so
    /// this covers the whole header matrix.
    #[test]
    fn round_trip_all_classes_and_weights() {
        for class in [
            PartitionClass::OutEdgeCut,
            PartitionClass::TwoDimensional,
            PartitionClass::GeneralVertexCut,
        ] {
            for weighted in [false, true] {
                let dg = DistGraph {
                    class,
                    edge_data: weighted.then(|| vec![7, 8, 9]),
                    ..sample()
                };
                let path = temp(&format!("rt-{}-{weighted}.part", class_tag(class)));
                write_partition(&path, &dg).unwrap();
                let back = read_partition(&path).unwrap();
                assert_eq!(back.class, class);
                assert_eq!(back.edge_data, dg.edge_data);
                assert_eq!(back.graph, dg.graph);
                std::fs::remove_file(&path).ok();
            }
        }
    }

    /// Corrupts one header field at a time and checks the reader names
    /// the problem rather than mis-parsing the rest of the file.
    #[test]
    fn rejects_corrupt_header_fields() {
        let dg = sample();
        let path = temp("header.part");
        write_partition(&path, &dg).unwrap();
        let clean = std::fs::read(&path).unwrap();

        // Byte offsets from the format doc: magic @0, version @8,
        // class tag @56.
        let cases: [(usize, u8, &str); 3] =
            [(0, 0xFF, "magic"), (8, 9, "version"), (56, 3, "class tag")];
        for (offset, value, what) in cases {
            let mut bytes = clean.clone();
            bytes[offset] = value;
            std::fs::write(&path, &bytes).unwrap();
            let err = read_partition(&path)
                .err()
                .unwrap_or_else(|| panic!("corrupt {what} accepted"));
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "corrupt {what}");
        }
        // The untouched copy still reads back fine.
        std::fs::write(&path, &clean).unwrap();
        assert!(read_partition(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    /// A header claiming element counts far beyond the file's actual
    /// size must come back as `InvalidData` — not drive a giant
    /// `Vec::with_capacity` that aborts the process on allocation
    /// failure. That contract is what lets the serve cache treat any
    /// load failure as "recompute".
    #[test]
    fn rejects_absurd_counts_without_allocating() {
        let dg = sample();
        let path = temp("absurd.part");
        write_partition(&path, &dg).unwrap();
        let clean = std::fs::read(&path).unwrap();

        // num_local lives at byte 48 (see the format doc). Claim 2^60
        // local nodes in a ~150-byte file.
        let mut bytes = clean.clone();
        bytes[48..56].copy_from_slice(&(1u64 << 60).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err =
            read_partition(&path).err().unwrap_or_else(|| panic!("huge num_local accepted"));
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "huge num_local");

        // The final CSR offset (num_edges) lives at byte
        // 58 + 4*4 + 4*4 + 4*8 = 122 for the 4-node sample. 2^60 is
        // monotone w.r.t. the earlier offsets but cannot fit.
        let mut bytes = clean.clone();
        bytes[122..130].copy_from_slice(&(1u64 << 60).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err =
            read_partition(&path).err().unwrap_or_else(|| panic!("huge num_edges accepted"));
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "huge num_edges");

        // The untouched copy still reads back fine.
        std::fs::write(&path, &clean).unwrap();
        assert!(read_partition(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let path = temp("garbage.part");
        std::fs::write(&path, vec![7u8; 128]).unwrap();
        assert!(read_partition(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated() {
        let dg = sample();
        let path = temp("trunc.part");
        write_partition(&path, &dg).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(read_partition(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
