//! The `prop` structure of the paper (§III-A): static graph properties a
//! partitioning rule may query.
//!
//! `prop` exposes *global* scalars (node/edge/partition counts) plus
//! *local* structural queries — out-degree, first-edge index, and neighbor
//! list — valid only for the nodes whose edges this host read from disk.
//! The rules in Algorithms 1 and 2 only ever query the node (or edge
//! source) currently being assigned, which is always locally read; the
//! accessors panic loudly if a custom rule violates that contract instead
//! of silently returning wrong data.

use cusp_graph::{EdgeIdx, GraphSlice, Node};

use crate::PartId;

/// Static graph properties queryable by partitioning rules.
pub struct LocalProps<'a> {
    num_nodes: u64,
    num_edges: u64,
    num_partitions: PartId,
    slice: &'a GraphSlice,
}

impl<'a> LocalProps<'a> {
    /// Builds the property view for one host.
    pub fn new(num_nodes: u64, num_edges: u64, num_partitions: PartId, slice: &'a GraphSlice) -> Self {
        LocalProps {
            num_nodes,
            num_edges,
            num_partitions,
            slice,
        }
    }

    /// `prop.getNumNodes()`.
    #[inline]
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// `prop.getNumEdges()`.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// `prop.getNumPartitions()`.
    #[inline]
    pub fn num_partitions(&self) -> PartId {
        self.num_partitions
    }

    /// First node of the locally read range.
    #[inline]
    pub fn local_lo(&self) -> Node {
        self.slice.node_lo
    }

    /// One past the last node of the locally read range.
    #[inline]
    pub fn local_hi(&self) -> Node {
        self.slice.node_hi
    }

    #[inline]
    fn check_local(&self, v: Node) {
        assert!(
            v >= self.slice.node_lo && v < self.slice.node_hi,
            "rule queried structural property of node {v}, which is outside \
             this host's read range [{}, {})",
            self.slice.node_lo,
            self.slice.node_hi
        );
    }

    /// `prop.getNodeOutDegree(v)` — `v` must be locally read.
    #[inline]
    pub fn out_degree(&self, v: Node) -> u64 {
        self.check_local(v);
        self.slice.out_degree(v)
    }

    /// `prop.getNodeOutEdge(v, 0)` — global index of `v`'s first out-edge.
    #[inline]
    pub fn first_edge(&self, v: Node) -> EdgeIdx {
        self.check_local(v);
        self.slice.first_edge(v)
    }

    /// `prop.getNodeOutNeighbors(v)` — `v` must be locally read.
    #[inline]
    pub fn out_neighbors(&self, v: Node) -> &[Node] {
        self.check_local(v);
        self.slice.edges(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusp_graph::Csr;

    fn props_over(lo: Node, hi: Node) -> (Csr, GraphSlice) {
        let g = Csr::from_edges(6, &[(0, 1), (2, 3), (2, 4), (3, 0), (5, 5)]);
        let s = GraphSlice::from_csr(&g, lo, hi);
        (g, s)
    }

    #[test]
    fn exposes_globals_and_locals() {
        let (_g, s) = props_over(2, 4);
        let p = LocalProps::new(6, 5, 3, &s);
        assert_eq!(p.num_nodes(), 6);
        assert_eq!(p.num_edges(), 5);
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.out_degree(2), 2);
        assert_eq!(p.out_degree(3), 1);
        assert_eq!(p.out_neighbors(2), &[3, 4]);
        assert_eq!(p.first_edge(2), 1);
        assert_eq!(p.first_edge(3), 3);
        assert_eq!(p.local_lo(), 2);
        assert_eq!(p.local_hi(), 4);
    }

    #[test]
    #[should_panic(expected = "outside this host's read range")]
    fn nonlocal_query_panics() {
        let (_g, s) = props_over(2, 4);
        let p = LocalProps::new(6, 5, 3, &s);
        let _ = p.out_degree(5);
    }
}
