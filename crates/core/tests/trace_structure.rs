//! Determinism of the recorded event *structure*.
//!
//! Timestamps and interleavings vary run to run, but under
//! `deterministic_sync` (lockstep sync rounds, one worker thread,
//! unbuffered sends) the multiset of *algorithmic* events — which phase
//! spans ran on which host, and how many messages flowed per
//! (src, dst, tag) edge — is a function of the input alone. These tests
//! pin that down: the trace is usable as a regression fingerprint, not
//! just a profile.
//!
//! Runtime-internal spans are excluded: how many pool dispatches the
//! construction phase needs depends on when records *arrive* (it drains
//! opportunistically), so `pool_task`/`steal` counts are
//! scheduling-dependent even when the produced partition is
//! bit-identical.

use std::sync::Arc;

use cusp::{partition_with_policy, CuspConfig, GraphSource, PolicyKind};
use cusp_graph::gen::uniform::erdos_renyi;
use cusp_net::{Cluster, ClusterOptions, TraceConfig};
use cusp_obs::Structure;

const HOSTS: usize = 3;

fn det_config(chunk_edges: Option<u64>) -> CuspConfig {
    CuspConfig {
        deterministic_sync: true,
        threads_per_host: 1,
        // Unbuffered: one message per record, so the send multiset does
        // not depend on flush boundaries (chunked runs flush extra).
        buffer_threshold: 0,
        chunk_edges,
        ..CuspConfig::default()
    }
}

fn traced_structure(cfg: &CuspConfig) -> Structure {
    let graph = Arc::new(erdos_renyi(240, 1900, 11));
    let cfg = cfg.clone();
    let opts = ClusterOptions {
        trace: Some(TraceConfig::default()),
        ..ClusterOptions::default()
    };
    let out = Cluster::run_with(HOSTS, opts, move |comm| {
        partition_with_policy(comm, GraphSource::Memory(graph.clone()), PolicyKind::Cvc, &cfg)
    });
    let trace = out.trace.expect("trace requested");
    assert_eq!(trace.dropped_events, 0, "ring too small for this test");
    Structure::of(&trace)
}

/// Outside runtime-internal dispatch, two identical deterministic runs
/// record the identical event structure, down to per-(src, dst, tag)
/// message counts.
#[test]
fn deterministic_runs_have_identical_structure() {
    let a = traced_structure(&det_config(None));
    let b = traced_structure(&det_config(None));
    assert!(a.total_sends() > 0, "expected CVC to move messages");
    assert_eq!(
        a.without_names(&["pool_task", "steal"]),
        b.without_names(&["pool_task", "steal"])
    );
}

/// Chunked execution re-reads and flushes per chunk but must do the same
/// logical work: outside the chunk bookkeeping spans, its event structure
/// matches the monolithic run's.
#[test]
fn chunked_matches_monolithic_structure() {
    let mono = traced_structure(&det_config(None));
    let chunked = traced_structure(&det_config(Some(512)));

    // The chunked run has "chunk" spans the monolithic run lacks and
    // dispatches pool tasks per chunk instead of per phase; every other
    // span, instant, and — crucially — message count must agree.
    let mono_cmp = mono.without_names(&["chunk", "pool_task", "steal"]);
    let chunked_cmp = chunked.without_names(&["chunk", "pool_task", "steal"]);
    assert_eq!(mono_cmp, chunked_cmp);

    // And the chunked run really did record chunk spans.
    assert!(
        chunked
            .span_counts
            .keys()
            .any(|(_, name)| *name == "chunk"),
        "chunked run recorded no chunk spans"
    );
}
