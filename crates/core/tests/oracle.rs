//! Differential partition oracle.
//!
//! Every policy in the catalog is run at 1/2/4/8 hosts with 3 graph seeds,
//! with and without an active [`FaultPlan`], and each run is checked
//! against the full invariant oracle ([`cusp::check_partition`] /
//! [`cusp::check_comm_stats`]), against a single-host reference partition
//! (edge-multiset differential), and against itself (same seed ⇒
//! bit-identical partitions and CommStats, faults on or off).
//!
//! Mutation tests then corrupt real partitions one invariant class at a
//! time and assert the oracle attributes the damage correctly — proving
//! the oracle would actually catch each bug class, not just that clean
//! runs are clean.

use std::sync::Arc;

use cusp::{
    check_comm_stats, check_delta_equivalence, check_partition, partition_delta_with_policy,
    partition_fingerprint, partition_with_policy, CuspConfig, DistGraph, GraphSource,
    PartitionOutput, PolicyKind, ViolationKind,
};
use cusp_graph::gen::uniform::erdos_renyi;
use cusp_graph::wal::seeded_batch;
use cusp_graph::{Csr, GraphEvent, Wal};
use cusp_net::{Cluster, ClusterOptions, CommStats, FaultPlan, FaultReport, Tag};

const HOSTS: [usize; 4] = [1, 2, 4, 8];
const SEEDS: [u64; 3] = [11, 29, 47];
const NODES: usize = 150;
const EDGES: usize = 800;

/// The chaos seed for oracle runs: `CUSP_FAULT_SEED` (set by the CI chaos
/// job) or a fixed default.
fn env_seed() -> u64 {
    std::env::var("CUSP_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

/// The reproducibility configuration the determinism contract requires.
///
/// `CUSP_CHUNK_EDGES` (set by the CI chaos job) re-runs the entire oracle
/// suite with chunk-streaming slices of that size — the partitions must be
/// bit-identical to monolithic runs, so every oracle check carries over.
fn det_cfg() -> CuspConfig {
    CuspConfig {
        threads_per_host: 1,
        sync_rounds: 4,
        deterministic_sync: true,
        chunk_edges: std::env::var("CUSP_CHUNK_EDGES")
            .ok()
            .and_then(|s| s.parse().ok()),
        ..CuspConfig::default()
    }
}

fn run(
    hosts: usize,
    kind: PolicyKind,
    source: GraphSource,
    fault: Option<FaultPlan>,
) -> (Vec<DistGraph>, CommStats, Option<FaultReport>) {
    let out = Cluster::run_with(hosts, ClusterOptions { fault, ..ClusterOptions::default() }, move |comm| {
        partition_with_policy(comm, source.clone(), kind, &det_cfg())
    });
    let parts = out.results.into_iter().map(|r| r.dist_graph).collect();
    (parts, out.stats, out.faults)
}

/// Sorted multiset of global edges across all partitions.
fn global_edges(parts: &[DistGraph]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for p in parts {
        for (lu, lv) in p.graph.iter_edges() {
            out.push((p.local2global[lu as usize], p.local2global[lv as usize]));
        }
    }
    out.sort_unstable();
    out
}

fn assert_clean(parts: &[DistGraph], stats: &CommStats, graph: &Csr, label: &str) {
    let v = check_partition(graph, None, parts);
    assert!(v.is_empty(), "{label}: partition violations: {v:#?}");
    let c = check_comm_stats(stats);
    assert!(c.is_empty(), "{label}: conservation violations: {c:#?}");
}

/// The full matrix for one policy: hosts × seeds × faults on/off, each run
/// oracle-checked, differential-checked against the 1-host reference, and
/// fingerprint-compared between the clean and the faulty run.
fn matrix(kind: PolicyKind) {
    // The bulk codec packs a whole phase into a handful of messages, so a
    // single small run can legitimately draw zero faults; assert the chaos
    // plan fired across the matrix as a whole instead of per run.
    let mut chaos_total = 0u64;
    for &seed in &SEEDS {
        let graph = Arc::new(erdos_renyi(NODES, EDGES, seed));
        let src = GraphSource::Memory(graph.clone());
        let (reference, ref_stats, _) = run(1, kind, src.clone(), None);
        assert_clean(&reference, &ref_stats, &graph, &format!("{kind:?} ref seed {seed}"));
        let ref_edges = global_edges(&reference);

        for &hosts in &HOSTS {
            let label = format!("{kind:?} hosts {hosts} seed {seed}");
            let (clean, clean_stats, _) = run(hosts, kind, src.clone(), None);
            assert_clean(&clean, &clean_stats, &graph, &label);
            assert_eq!(
                global_edges(&clean),
                ref_edges,
                "{label}: edge multiset diverged from single-host reference"
            );

            let plan = FaultPlan::chaos(env_seed() ^ seed ^ hosts as u64);
            let (faulty, faulty_stats, report) = run(hosts, kind, src.clone(), Some(plan));
            assert_clean(&faulty, &faulty_stats, &graph, &format!("{label} +faults"));
            assert_eq!(
                partition_fingerprint(&clean),
                partition_fingerprint(&faulty),
                "{label}: faults changed the partition"
            );
            assert_eq!(
                clean_stats, faulty_stats,
                "{label}: faults leaked into CommStats"
            );
            chaos_total += report.expect("fault plan was active").total();
        }
    }
    assert!(chaos_total > 0, "{kind:?}: chaos plans injected nothing across the whole matrix");
}

macro_rules! oracle_matrix {
    ($($name:ident => $kind:ident),* $(,)?) => {$(
        #[test]
        fn $name() { matrix(PolicyKind::$kind); }
    )*};
}

oracle_matrix! {
    oracle_matrix_eec => Eec,
    oracle_matrix_hvc => Hvc,
    oracle_matrix_cvc => Cvc,
    oracle_matrix_fec => Fec,
    oracle_matrix_gvc => Gvc,
    oracle_matrix_svc => Svc,
    oracle_matrix_cec => Cec,
    oracle_matrix_fnc => Fnc,
    oracle_matrix_hdrf => Hdrf,
    oracle_matrix_ldg => Ldg,
    oracle_matrix_bvc => Bvc,
    oracle_matrix_jvc => Jvc,
}

/// Same seed ⇒ bit-identical partitions, CommStats, and fault report —
/// for a stateless and a stateful (HDRF) policy, faults on and off.
#[test]
fn same_seed_is_bit_identical() {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 7));
    let src = GraphSource::Memory(graph.clone());
    for kind in [PolicyKind::Cvc, PolicyKind::Hdrf] {
        let (a, a_stats, _) = run(4, kind, src.clone(), None);
        let (b, b_stats, _) = run(4, kind, src.clone(), None);
        assert_eq!(partition_fingerprint(&a), partition_fingerprint(&b), "{kind:?} clean");
        assert_eq!(a_stats, b_stats, "{kind:?} clean stats");

        let plan = FaultPlan::chaos(env_seed());
        let (c, c_stats, c_rep) = run(4, kind, src.clone(), Some(plan));
        let (d, d_stats, d_rep) = run(4, kind, src.clone(), Some(plan));
        assert_eq!(partition_fingerprint(&c), partition_fingerprint(&d), "{kind:?} chaos");
        assert_eq!(c_stats, d_stats, "{kind:?} chaos stats");
        assert_eq!(c_rep, d_rep, "{kind:?} fault report must replay per seed");
        assert_eq!(partition_fingerprint(&a), partition_fingerprint(&c), "{kind:?} faults");
    }
}

/// A weighted pipeline preserves per-edge data exactly, faults on or off.
#[test]
fn weighted_pipeline_preserves_edge_data() {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 13));
    let data: Arc<Vec<u32>> = Arc::new(
        (0..graph.num_edges())
            .map(|i| (i as u32).wrapping_mul(2_654_435_761))
            .collect(),
    );
    let src = GraphSource::MemoryWeighted(graph.clone(), data.clone());
    for fault in [None, Some(FaultPlan::chaos(env_seed() ^ 13))] {
        let (parts, stats, _) = run(4, PolicyKind::Hvc, src.clone(), fault);
        let v = check_partition(&graph, Some(&data), &parts);
        assert!(v.is_empty(), "weighted violations: {v:#?}");
        assert!(check_comm_stats(&stats).is_empty());
    }
}

// --- Mutation-equivalence rows: delta repartition vs full re-partition ---
// of the same mutated graph (ISSUE 8 acceptance criterion).

/// Like [`run`], but keeps the whole [`PartitionOutput`] (delta needs the
/// retained `Setup` and reports its accounting through it).
fn run_full(
    hosts: usize,
    kind: PolicyKind,
    source: GraphSource,
) -> (Vec<PartitionOutput>, CommStats) {
    let out = Cluster::run(hosts, move |comm| {
        partition_with_policy(comm, source.clone(), kind, &det_cfg())
    });
    (out.results, out.stats)
}

/// One mutation-equivalence row: partition the base graph, push a seeded
/// batch through a WAL round-trip, apply it, then check the delta
/// repartition against a from-scratch re-partition of the mutated graph —
/// invariant-clean and fingerprint-identical, faults on and off.
fn delta_matrix(kind: PolicyKind, seed: u64) {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, seed));
    let src = GraphSource::Memory(graph.clone());

    // The batch every host replays: WAL write → load round-trip, so the
    // durable byte path is on the oracle's critical path (the CI chaos job
    // re-runs this very test with a date-derived CUSP_FAULT_SEED).
    let wal_path = std::env::temp_dir().join(format!(
        "cusp-oracle-wal-{kind:?}-{seed}-{}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&wal_path);
    let wal = Wal::new(&wal_path);
    let batch = seeded_batch(&graph, false, seed ^ 0xD1517, 24);
    wal.append(&batch).expect("WAL append");
    let replayed: Vec<GraphEvent> = wal
        .load()
        .expect("WAL load")
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(replayed, batch, "WAL round-trip changed the batch");
    let _ = std::fs::remove_file(&wal_path);

    let applied = graph.apply_batch(None, &batch).expect("batch applies");
    let mutated = Arc::new(applied.graph);
    let mutated_src = GraphSource::Memory(mutated.clone());

    for &hosts in &HOSTS {
        let label = format!("{kind:?} delta hosts {hosts} seed {seed}");
        let (prevs, _) = run_full(hosts, kind, src.clone());
        let (full, _, _) = run(hosts, kind, mutated_src.clone(), None);

        for fault in [None, Some(FaultPlan::chaos(env_seed() ^ seed ^ hosts as u64))] {
            let faulty = fault.is_some();
            let out = Cluster::run_with(
                hosts,
                ClusterOptions { fault: fault.clone(), ..ClusterOptions::default() },
                |comm| {
                    partition_delta_with_policy(
                        comm,
                        mutated_src.clone(),
                        kind,
                        &det_cfg(),
                        &prevs[comm.host()],
                        &batch,
                    )
                },
            );
            let delta_outs = out.results;
            let delta_parts: Vec<DistGraph> =
                delta_outs.iter().map(|r| r.dist_graph.clone()).collect();
            let v = check_delta_equivalence(&mutated, None, &delta_parts, &full, true);
            assert!(v.is_empty(), "{label} faults={faulty}: {v:#?}");

            // Accounting: a truly incremental run recomputes fewer
            // vertices than a full one and reuses edges somewhere
            // (hosts > 1 can leave one host with nothing to keep);
            // a fallback run reports full-recompute accounting.
            let n = mutated.num_nodes() as u64;
            let dirty = delta_outs[0].dirty_vertices;
            let reused: u64 = delta_outs.iter().map(|r| r.reused_edges).sum();
            if kind.has_streaming_masters() || kind == PolicyKind::Hdrf {
                assert_eq!(dirty, n, "{label}: fallback must report a full recompute");
                assert_eq!(reused, 0, "{label}: fallback reuses nothing");
            } else {
                assert!(dirty < n, "{label}: dirty set {dirty} not smaller than {n}");
                assert!(reused > 0, "{label}: no edges reused");
            }
        }
    }
}

macro_rules! delta_oracle {
    ($($name:ident => ($kind:ident, $seed:expr)),* $(,)?) => {$(
        #[test]
        fn $name() { delta_matrix(PolicyKind::$kind, $seed); }
    )*};
}

// ≥3 policies spanning the three partition classes (edge-cut, 2D,
// general vertex-cut) plus a streaming-masters policy exercising the
// full-repartition fallback.
delta_oracle! {
    delta_oracle_eec => (Eec, 11),
    delta_oracle_hvc => (Hvc, 29),
    delta_oracle_cvc => (Cvc, 47),
    delta_oracle_jvc => (Jvc, 11),
    delta_oracle_fec_fallback => (Fec, 29),
}

/// Weighted delta row: AddEdge-with-weight, RemoveEdge, and SetWeight
/// events, delta vs full, weights preserved bit-for-bit.
#[test]
fn delta_weighted_matches_full() {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 59));
    let data: Arc<Vec<u32>> = Arc::new(
        (0..graph.num_edges())
            .map(|i| (i as u32).wrapping_mul(2_654_435_761))
            .collect(),
    );
    let src = GraphSource::MemoryWeighted(graph.clone(), data.clone());
    let batch = seeded_batch(&graph, true, 0xBEEF, 24);
    let applied = graph.apply_batch(Some(&data), &batch).expect("batch applies");
    let mutated = Arc::new(applied.graph);
    let mutated_w = Arc::new(applied.weights.expect("weighted output"));
    let mutated_src = GraphSource::MemoryWeighted(mutated.clone(), mutated_w.clone());

    for hosts in [1, 4] {
        let kind = PolicyKind::Hvc;
        let (prevs, _) = run_full(hosts, kind, src.clone());
        let (full, _, _) = run(hosts, kind, mutated_src.clone(), None);
        let out = Cluster::run(hosts, |comm| {
            partition_delta_with_policy(
                comm,
                mutated_src.clone(),
                kind,
                &det_cfg(),
                &prevs[comm.host()],
                &batch,
            )
        });
        let delta_parts: Vec<DistGraph> =
            out.results.into_iter().map(|r| r.dist_graph).collect();
        let v = check_delta_equivalence(&mutated, Some(&mutated_w), &delta_parts, &full, true);
        assert!(v.is_empty(), "weighted delta hosts {hosts}: {v:#?}");
    }
}

/// An empty batch is the degenerate delta: nothing dirty, everything
/// reused, fingerprint unchanged from the previous partition.
#[test]
fn delta_empty_batch_is_identity() {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 23));
    let src = GraphSource::Memory(graph.clone());
    let (prevs, _) = run_full(4, PolicyKind::Cvc, src.clone());
    let prev_fp =
        partition_fingerprint(&prevs.iter().map(|r| r.dist_graph.clone()).collect::<Vec<_>>());
    let out = Cluster::run(4, |comm| {
        partition_delta_with_policy(
            comm,
            src.clone(),
            PolicyKind::Cvc,
            &det_cfg(),
            &prevs[comm.host()],
            &[],
        )
    });
    let outs = out.results;
    assert_eq!(outs[0].dirty_vertices, 0, "empty batch dirtied vertices");
    assert_eq!(
        outs.iter().map(|r| r.reused_edges).sum::<u64>(),
        graph.num_edges(),
        "empty batch must reuse every edge"
    );
    let delta_parts: Vec<DistGraph> = outs.into_iter().map(|r| r.dist_graph).collect();
    assert_eq!(partition_fingerprint(&delta_parts), prev_fp, "identity delta diverged");
}

// --- Mutation tests: corrupt one invariant class of a *real* partition ---
// and assert the oracle attributes the damage to that class.

fn real_partition() -> (Arc<Csr>, Vec<DistGraph>) {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 3));
    let (parts, _, _) = run(4, PolicyKind::Cvc, GraphSource::Memory(graph.clone()), None);
    (graph, parts)
}

fn kinds(v: &[cusp::Violation]) -> Vec<ViolationKind> {
    let mut k: Vec<_> = v.iter().map(|v| v.kind).collect();
    k.dedup();
    k
}

/// Find a partition with at least one edge and return its index.
fn busy_part(parts: &[DistGraph]) -> usize {
    parts
        .iter()
        .position(|p| p.graph.num_edges() > 0)
        .expect("some partition holds edges")
}

#[test]
fn mutation_dropped_edge_is_caught() {
    let (graph, mut parts) = real_partition();
    let i = busy_part(&parts);
    let p = &mut parts[i];
    let mut dests = p.graph.dests().to_vec();
    dests.pop();
    let n = dests.len() as u64;
    let offsets: Vec<u64> = p.graph.offsets().iter().map(|&o| o.min(n)).collect();
    p.graph = Csr::from_parts(offsets, dests);
    let v = check_partition(&graph, None, &parts);
    assert!(
        v.iter().any(|v| v.kind == ViolationKind::EdgeCoverage),
        "expected EdgeCoverage, got {:?}",
        kinds(&v)
    );
}

#[test]
fn mutation_duplicated_edge_is_caught() {
    let (graph, mut parts) = real_partition();
    let i = busy_part(&parts);
    let p = &mut parts[i];
    let mut dests = p.graph.dests().to_vec();
    dests.push(*dests.last().unwrap());
    let mut offsets = p.graph.offsets().to_vec();
    *offsets.last_mut().unwrap() += 1;
    p.graph = Csr::from_parts(offsets, dests);
    let v = check_partition(&graph, None, &parts);
    assert!(
        v.iter().any(|v| v.kind == ViolationKind::EdgeCoverage),
        "expected EdgeCoverage, got {:?}",
        kinds(&v)
    );
}

#[test]
fn mutation_stolen_master_is_caught() {
    let (graph, mut parts) = real_partition();
    // A master proxy that points away from its own partition breaks the
    // single-master agreement.
    let i = parts.iter().position(|p| p.num_masters > 0).unwrap();
    parts[i].master_of[0] = (parts[i].part_id + 1) % parts[i].num_parts;
    let v = check_partition(&graph, None, &parts);
    assert!(
        v.iter().any(|v| v.kind == ViolationKind::MasterAssignment),
        "expected MasterAssignment, got {:?}",
        kinds(&v)
    );
}

#[test]
fn mutation_demoted_master_is_caught() {
    let (graph, mut parts) = real_partition();
    // Shrinking the master segment orphans the last master: no partition
    // claims the vertex any more.
    let i = parts.iter().position(|p| p.num_masters > 0).unwrap();
    parts[i].num_masters -= 1;
    let v = check_partition(&graph, None, &parts);
    assert!(
        v.iter().any(|v| v.kind == ViolationKind::MasterAssignment),
        "expected MasterAssignment, got {:?}",
        kinds(&v)
    );
}

#[test]
fn mutation_lying_mirror_is_caught() {
    let (graph, mut parts) = real_partition();
    let (i, l) = parts
        .iter()
        .enumerate()
        .find_map(|(i, p)| (p.num_mirrors() > 0).then_some((i, p.num_masters)))
        .expect("some partition has mirrors");
    // Point the mirror at a partition that does not host the master.
    let truth = parts[i].master_of[l];
    parts[i].master_of[l] = (truth + 1) % parts[i].num_parts;
    let v = check_partition(&graph, None, &parts);
    assert!(
        v.iter().any(|v| matches!(
            v.kind,
            ViolationKind::MirrorSymmetry | ViolationKind::MasterAssignment
        )),
        "expected MirrorSymmetry, got {:?}",
        kinds(&v)
    );
}

#[test]
fn mutation_out_of_range_dest_is_caught() {
    let (graph, mut parts) = real_partition();
    let i = busy_part(&parts);
    let p = &mut parts[i];
    let mut dests = p.graph.dests().to_vec();
    let last = dests.len() - 1;
    dests[last] = p.num_local() as u32 + 1000;
    p.graph = Csr::from_parts(p.graph.offsets().to_vec(), dests);
    let v = check_partition(&graph, None, &parts);
    assert!(
        v.iter().any(|v| v.kind == ViolationKind::CsrWellFormed),
        "expected CsrWellFormed, got {:?}",
        kinds(&v)
    );
}

#[test]
fn mutation_shuffled_id_map_is_caught() {
    let (graph, mut parts) = real_partition();
    let i = parts.iter().position(|p| p.num_masters >= 2).unwrap();
    parts[i].local2global.swap(0, 1);
    let v = check_partition(&graph, None, &parts);
    assert!(
        v.iter().any(|v| v.kind == ViolationKind::CsrWellFormed),
        "expected CsrWellFormed, got {:?}",
        kinds(&v)
    );
}

#[test]
fn mutation_altered_weight_is_caught() {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 5));
    let data: Arc<Vec<u32>> = Arc::new((0..graph.num_edges()).map(|i| i as u32).collect());
    let src = GraphSource::MemoryWeighted(graph.clone(), data.clone());
    let (mut parts, _, _) = run(4, PolicyKind::Eec, src, None);
    let i = busy_part(&parts);
    parts[i].edge_data.as_mut().unwrap()[0] ^= 1;
    let v = check_partition(&graph, Some(&data), &parts);
    assert!(
        v.iter().any(|v| v.kind == ViolationKind::WeightPreservation),
        "expected WeightPreservation, got {:?}",
        kinds(&v)
    );
}

#[test]
fn mutation_leaky_phase_breaks_conservation() {
    // A host that sends a message nobody consumes must show up as a
    // CommConservation violation.
    let out = Cluster::run(2, |comm| {
        comm.set_phase("leak");
        if comm.host() == 0 {
            comm.send_bytes(1, Tag(9), bytes::Bytes::from_static(b"orphan"));
        }
        comm.barrier();
    });
    let v = check_comm_stats(&out.stats);
    assert!(
        v.iter().any(|v| v.kind == ViolationKind::CommConservation),
        "expected CommConservation, got {:?}",
        kinds(&v)
    );
}
