//! Protocol-level tests of the partitioning phases: message framing,
//! synchronization elisions, and cross-configuration equivalence.

use std::sync::Arc;

use cusp::{metrics, partition_with_policy, CuspConfig, DistGraph, GraphSource, PolicyKind};
use cusp_graph::gen::powerlaw;
use cusp_graph::gen::uniform::erdos_renyi;
use cusp_graph::gen::PowerLawConfig;
use cusp_net::Cluster;

fn parts_with(cfg: CuspConfig, kind: PolicyKind, seed: u64) -> Vec<DistGraph> {
    let graph = Arc::new(erdos_renyi(400, 4800, seed));
    let g = Arc::clone(&graph);
    let out = Cluster::run(4, move |comm| {
        partition_with_policy(comm, GraphSource::Memory(g.clone()), kind, &cfg).dist_graph
    });
    metrics::validate_partitioning(&graph, &out.results).unwrap();
    out.results
}

/// The §IV-D5 elision must not change the result, only the traffic:
/// forcing the stored-master protocol for a pure rule yields bit-identical
/// partitions.
#[test]
fn forced_stored_masters_is_bit_identical() {
    for kind in [PolicyKind::Eec, PolicyKind::Hvc, PolicyKind::Cvc] {
        let a = parts_with(CuspConfig::default(), kind, 7);
        let b = parts_with(
            CuspConfig {
                force_stored_masters: true,
                ..CuspConfig::default()
            },
            kind,
            7,
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.local2global, y.local2global, "{kind}");
            assert_eq!(x.graph, y.graph, "{kind}");
            assert_eq!(x.master_of, y.master_of, "{kind}");
            assert_eq!(x.num_masters, y.num_masters, "{kind}");
        }
    }
}

/// Buffer threshold changes traffic shape, never results.
#[test]
fn buffering_is_result_invariant() {
    let a = parts_with(
        CuspConfig {
            buffer_threshold: 0,
            ..CuspConfig::default()
        },
        PolicyKind::Cvc,
        11,
    );
    let b = parts_with(
        CuspConfig {
            buffer_threshold: 8 << 20,
            ..CuspConfig::default()
        },
        PolicyKind::Cvc,
        11,
    );
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.graph, y.graph);
        assert_eq!(x.local2global, y.local2global);
    }
}

/// Thread count changes scheduling, never results, for stateless policies.
#[test]
fn thread_count_is_result_invariant_for_stateless_policies() {
    for threads in [1usize, 2, 4] {
        let parts = parts_with(
            CuspConfig {
                threads_per_host: threads,
                ..CuspConfig::default()
            },
            PolicyKind::Hvc,
            13,
        );
        let reference = parts_with(CuspConfig::default(), PolicyKind::Hvc, 13);
        for (x, y) in parts.iter().zip(&reference) {
            assert_eq!(x.graph, y.graph, "threads={threads}");
            assert_eq!(x.local2global, y.local2global, "threads={threads}");
        }
    }
}

/// The edge-assignment metadata honors the "empty message" shortcut
/// (§IV-D2): under EEC nothing substantive flows, and the phase's total
/// bytes stay at the few-bytes-per-pair floor.
#[test]
fn eec_metadata_is_minimal() {
    let graph = Arc::new(erdos_renyi(500, 6000, 17));
    let out = Cluster::run(4, move |comm| {
        partition_with_policy(
            comm,
            GraphSource::Memory(graph.clone()),
            PolicyKind::Eec,
            &CuspConfig::default(),
        )
        .dist_graph
        .num_local_edges()
    });
    let meta = out.stats.phase("edge_assign").unwrap();
    // 4 hosts × 3 peers, 1-byte empty markers plus nothing else.
    assert_eq!(meta.total_messages(), 12);
    assert_eq!(meta.total_bytes(), 12);
}

/// Master-phase traffic scales with the requested set, not the graph: a
/// policy that needs no neighbor masters (stateless, non-pure path forced)
/// sends only requests + answers, bounded by the number of distinct remote
/// destinations.
#[test]
fn master_traffic_bounded_by_demand() {
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(1000, 8.0, 19)));
    let remote_dests_upper = graph.num_edges(); // loose upper bound
    let g = Arc::clone(&graph);
    let out = Cluster::run(4, move |comm| {
        partition_with_policy(
            comm,
            GraphSource::Memory(g.clone()),
            PolicyKind::Eec,
            &CuspConfig {
                force_stored_masters: true,
                ..CuspConfig::default()
            },
        )
        .dist_graph
        .part_id
    });
    let master = out.stats.phase("master").unwrap();
    // Each requested node costs ≤ 12 bytes (4 request + 8 answer) plus
    // framing; the total must be well under "send everything to everyone".
    let ceiling = remote_dests_upper * 16 + 4 * 4 * 64;
    assert!(
        master.total_bytes() < ceiling,
        "master traffic {} exceeds demand ceiling {}",
        master.total_bytes(),
        ceiling
    );
}

/// Stateful (FennelEB) partitions stay valid across thread counts even
/// though the assignment itself is scheduling-dependent.
#[test]
fn fennel_valid_across_thread_counts() {
    for threads in [1usize, 3] {
        let _ = parts_with(
            CuspConfig {
                threads_per_host: threads,
                sync_rounds: 7,
                ..CuspConfig::default()
            },
            PolicyKind::Svc,
            23,
        );
    }
}
