//! Prefetch/arena equivalence suite.
//!
//! Background chunk prefetch and chunk-arena reuse are pure *latency*
//! knobs: they overlap the next chunk's byte-range re-read with the
//! current chunk's processing and recycle the chunk buffers, but they
//! must never change a single byte of the partition. Under
//! `deterministic_sync` every optimized run is required to be
//! bit-identical (by [`partition_fingerprint`]) to the same run with the
//! optimizations off — per backing (File vs Memory), host count, and
//! chunking — and the equivalence must survive host crashes that land
//! while a prefetch is in flight.

use std::path::PathBuf;
use std::sync::Arc;

use cusp::{
    check_all, partition_fingerprint, partition_with_policy, CuspConfig, DistGraph, GraphSource,
    PolicyKind,
};
use cusp_graph::gen::uniform::erdos_renyi;
use cusp_net::{Cluster, ClusterOptions, CommStats, CrashPlan, RecoveryOptions};

const NODES: usize = 150;
const EDGES: usize = 800;

/// Deterministic config with explicit optimization toggles.
fn cfg(chunk_edges: Option<u64>, prefetch: bool, arena: bool) -> CuspConfig {
    CuspConfig {
        threads_per_host: 1,
        sync_rounds: 4,
        deterministic_sync: true,
        chunk_edges,
        prefetch,
        arena_reuse: arena,
        ..CuspConfig::default()
    }
}

fn run(
    hosts: usize,
    kind: PolicyKind,
    source: GraphSource,
    cfg: CuspConfig,
) -> (Vec<DistGraph>, CommStats) {
    let out = Cluster::run(hosts, move |comm| {
        partition_with_policy(comm, source.clone(), kind, &cfg).dist_graph
    });
    (out.results, out.stats)
}

fn bgr_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cusp-prefetch-{}-{tag}.bgr", std::process::id()))
}

/// The core contract: for both backings, both host counts, and both
/// chunked and monolithic runs, every combination of {prefetch, arena}
/// produces the same fingerprint as the all-off run. Monolithic runs
/// ignore the toggles entirely, which this matrix also proves.
#[test]
fn prefetch_and_arena_never_change_the_partition() {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 83));
    let path = bgr_path("matrix");
    cusp_graph::write_bgr(&path, &graph).unwrap();

    let sources =
        [("mem", GraphSource::Memory(graph.clone())), ("file", GraphSource::File(path.clone()))];
    for (src_name, source) in sources {
        for hosts in [1usize, 4] {
            for chunk in [None, Some(9)] {
                let (baseline, _) =
                    run(hosts, PolicyKind::Cvc, source.clone(), cfg(chunk, false, false));
                let reference = partition_fingerprint(&baseline);
                for (prefetch, arena) in [(true, true), (true, false), (false, true)] {
                    let (parts, stats) = run(
                        hosts,
                        PolicyKind::Cvc,
                        source.clone(),
                        cfg(chunk, prefetch, arena),
                    );
                    let label = format!(
                        "{src_name} hosts {hosts} chunk {chunk:?} prefetch {prefetch} arena {arena}"
                    );
                    assert_eq!(partition_fingerprint(&parts), reference, "{label}");
                    let v = check_all(&graph, None, &parts, &stats);
                    assert!(v.is_empty(), "{label}: {v:#?}");
                }
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

/// Stateful policies replay edge-rule decisions across chunks; prefetch
/// must preserve the sequential chunk order that replay depends on.
#[test]
fn stateful_policies_survive_prefetch() {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 59));
    let src = GraphSource::Memory(graph.clone());
    for kind in [PolicyKind::Fec, PolicyKind::Hdrf] {
        let (off, _) = run(4, kind, src.clone(), cfg(Some(17), false, false));
        let (on, stats) = run(4, kind, src.clone(), cfg(Some(17), true, true));
        assert_eq!(
            partition_fingerprint(&on),
            partition_fingerprint(&off),
            "{kind:?}: prefetch changed a stateful-policy partition"
        );
        let v = check_all(&graph, None, &on, &stats);
        assert!(v.is_empty(), "{kind:?}: {v:#?}");
    }
}

/// Weighted inputs stream per-edge data through the same recycled
/// buffers; fingerprints (which hash edge data) must still match.
#[test]
fn weighted_prefetch_matches_baseline() {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 31));
    let data: Arc<Vec<u32>> = Arc::new(
        (0..graph.num_edges())
            .map(|i| (i as u32).wrapping_mul(2_654_435_761))
            .collect(),
    );
    let src = GraphSource::MemoryWeighted(graph.clone(), data.clone());
    let (off, _) = run(4, PolicyKind::Hvc, src.clone(), cfg(Some(11), false, false));
    let (on, stats) = run(4, PolicyKind::Hvc, src.clone(), cfg(Some(11), true, true));
    assert_eq!(partition_fingerprint(&on), partition_fingerprint(&off));
    let v = check_all(&graph, Some(&data), &on, &stats);
    assert!(v.is_empty(), "{v:#?}");
}

/// Crash-during-prefetch: a host killed mid-phase while its prefetcher
/// has a request in flight must restart cleanly (the dying incarnation's
/// worker thread is shut down by the `ChunkedSlice` drop, the restarted
/// one spawns a fresh stream) and still converge to the crash-free
/// fingerprint. Mirrors the recovery-suite matrix, File-backed so the
/// prefetch thread is doing real I/O when the crash lands.
#[test]
fn crash_during_prefetch_recovers_bit_identical() {
    let hosts = 4;
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 29));
    let path = bgr_path("crash");
    cusp_graph::write_bgr(&path, &graph).unwrap();
    let src = GraphSource::File(path.clone());
    let pf_cfg = || cfg(Some(13), true, true);

    let recovery = RecoveryOptions {
        heartbeat_timeout: std::time::Duration::from_millis(30),
        max_restarts: 3,
        restart_backoff: std::time::Duration::from_millis(2),
    };
    let run_crash = |crash: Option<CrashPlan>| {
        let src = src.clone();
        let opts = ClusterOptions { crash, recovery: recovery.clone(), ..ClusterOptions::default() };
        let out = Cluster::try_run_with(hosts, opts, move |comm| {
            partition_with_policy(comm, src.clone(), PolicyKind::Cvc, &pf_cfg()).dist_graph
        })
        .expect("cluster run");
        (out.results, out.stats, out.recovery)
    };

    let (baseline, base_stats, _) = run_crash(None);
    let v = check_all(&graph, None, &baseline, &base_stats);
    assert!(v.is_empty(), "clean prefetch run: {v:#?}");
    let base_fp = partition_fingerprint(&baseline);

    // The chunk-consuming phases: read builds the stream, edge_assign and
    // construct iterate it (and thus have prefetches in flight).
    let mut fired = 0u64;
    for phase in ["read", "edge_assign", "construct"] {
        for seed in 0..4u64 {
            let label = format!("prefetch crash phase {phase} seed {seed}");
            let plan = CrashPlan::once(0xDEC0DE ^ seed, 1, phase, 3);
            let (parts, stats, rec) = run_crash(Some(plan));
            assert_eq!(partition_fingerprint(&parts), base_fp, "{label}");
            let v = check_all(&graph, None, &parts, &stats);
            assert!(v.is_empty(), "{label}: {v:#?}");
            fired += rec.expect("crash plan was armed").crashes;
        }
    }
    assert!(fired >= 3, "crash plans fired only {fired} times");
    std::fs::remove_file(&path).ok();
}
