//! Wire-format parity: the bulk slice codec must be a pure CPU optimization.
//! Running the full pipeline with `scalar_codec` on and off must produce
//! bit-identical partitions AND bit-identical per-phase communication stats
//! (every host-pair's byte and message counts) — the Table V invariant.

use std::sync::Arc;

use cusp::{partition_with_policy, CuspConfig, GraphSource, PolicyKind};
use cusp_graph::gen::{powerlaw, PowerLawConfig};
use cusp_graph::Csr;
use cusp_net::{Cluster, CommStats};

fn hash_weights(g: &Csr) -> Vec<u32> {
    g.iter_edges().map(|(u, v)| (u.wrapping_mul(31).wrapping_add(v) % 1000) + 1).collect()
}

fn run(weighted: bool, scalar: bool) -> (CommStats, Vec<cusp::DistGraph>) {
    let graph = Arc::new(powerlaw(PowerLawConfig::webcrawl(800, 6.0, 42)));
    let weights = Arc::new(hash_weights(&graph));
    let out = Cluster::run(4, move |comm| {
        let source = if weighted {
            GraphSource::MemoryWeighted(graph.clone(), weights.clone())
        } else {
            GraphSource::Memory(graph.clone())
        };
        // One thread per host: send-buffer flush boundaries are then a
        // deterministic function of the record stream, so message counts
        // are comparable across runs, not just byte counts.
        let cfg = CuspConfig {
            threads_per_host: 1,
            scalar_codec: scalar,
            ..CuspConfig::default()
        };
        partition_with_policy(comm, source, PolicyKind::Hvc, &cfg).dist_graph
    });
    (out.stats, out.results)
}

fn assert_stats_identical(a: &CommStats, b: &CommStats) {
    assert_eq!(a.phase_names(), b.phase_names());
    for (name, pa) in a.iter() {
        let pb = b.phase(name).unwrap();
        assert_eq!(pa.hosts(), pb.hosts());
        for s in 0..pa.hosts() {
            for d in 0..pa.hosts() {
                assert_eq!(
                    pa.bytes_between(s, d),
                    pb.bytes_between(s, d),
                    "phase {name}: bytes {s}->{d} diverged between scalar and bulk codec"
                );
                assert_eq!(
                    pa.messages_between(s, d),
                    pb.messages_between(s, d),
                    "phase {name}: messages {s}->{d} diverged between scalar and bulk codec"
                );
            }
        }
    }
}

fn check(weighted: bool) {
    let (bulk_stats, bulk_parts) = run(weighted, false);
    let (scalar_stats, scalar_parts) = run(weighted, true);
    assert_stats_identical(&bulk_stats, &scalar_stats);
    // The constructed partitions must match bit for bit as well.
    for (x, y) in bulk_parts.iter().zip(&scalar_parts) {
        assert_eq!(x.graph, y.graph);
        assert_eq!(x.local2global, y.local2global);
        assert_eq!(x.edge_data, y.edge_data);
    }
    // Sanity: the comparison is not vacuous — Hvc moves edges, so the
    // construct phase must actually have traffic.
    let construct = bulk_stats.phase("construct").unwrap();
    assert!(construct.total_bytes() > 0, "no construct traffic to compare");
}

#[test]
fn scalar_and_bulk_codec_are_byte_identical_unweighted() {
    check(false);
}

#[test]
fn scalar_and_bulk_codec_are_byte_identical_weighted() {
    check(true);
}
