//! Chunk-streaming equivalence suite.
//!
//! `CuspConfig::chunk_edges` must be a pure memory/latency knob: under
//! `deterministic_sync` a chunked run is required to produce partitions
//! bit-identical (by [`partition_fingerprint`]) to the monolithic run, for
//! every chunk size, host count, and policy — while actually bounding the
//! resident edge state to O(max(chunk, d_max)) and keeping the per-phase
//! communication conserved.

use std::sync::Arc;

use cusp::{
    check_all, check_comm_stats, partition_fingerprint, partition_with_policy, CuspConfig,
    DistGraph, GraphSource, PolicyKind,
};
use cusp_graph::gen::uniform::erdos_renyi;
use cusp_graph::Csr;
use cusp_net::{Cluster, CommStats};

const NODES: usize = 150;
const EDGES: usize = 800;

/// Deterministic config with the given chunking (None = monolithic).
fn cfg(chunk_edges: Option<u64>) -> CuspConfig {
    CuspConfig {
        threads_per_host: 1,
        sync_rounds: 4,
        deterministic_sync: true,
        chunk_edges,
        ..CuspConfig::default()
    }
}

/// Partitions `source` on `hosts` hosts; returns the parts, the per-host
/// peak resident edge counts, and the run's comm stats.
fn run(
    hosts: usize,
    kind: PolicyKind,
    source: GraphSource,
    chunk_edges: Option<u64>,
) -> (Vec<DistGraph>, Vec<u64>, CommStats) {
    let out = Cluster::run(hosts, move |comm| {
        let r = partition_with_policy(comm, source.clone(), kind, &cfg(chunk_edges));
        (r.dist_graph, r.peak_resident_edges)
    });
    let (parts, peaks) = out.results.into_iter().unzip();
    (parts, peaks, out.stats)
}

fn max_degree(g: &Csr) -> u64 {
    g.offsets().windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0)
}

/// Chunk sizes covering the degenerate (one node per chunk), the prime
/// mid-size, and the larger-than-slice cases.
const CHUNKS: [u64; 3] = [1, 7, 1024];

/// Policies spanning the rule space: CVC (stateless 2D rules), FEC
/// (stateful load-aware master rule), HDRF (stateful edge rule that
/// replays during construction).
const POLICIES: [PolicyKind; 3] = [PolicyKind::Cvc, PolicyKind::Fec, PolicyKind::Hdrf];

/// The tentpole contract: chunked runs are bit-identical to monolithic
/// ones, for every chunk size × host count × policy, and all oracle
/// invariants keep holding.
#[test]
fn chunked_runs_match_monolithic_fingerprints() {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 71));
    for kind in POLICIES {
        for hosts in [1usize, 4] {
            let src = GraphSource::Memory(graph.clone());
            let (whole, _, _) = run(hosts, kind, src.clone(), None);
            let reference = partition_fingerprint(&whole);
            for chunk in CHUNKS {
                let (parts, _, stats) = run(hosts, kind, src.clone(), Some(chunk));
                assert_eq!(
                    partition_fingerprint(&parts),
                    reference,
                    "{kind:?} at {hosts} hosts, chunk_edges {chunk}"
                );
                let v = check_all(&graph, None, &parts, &stats);
                assert!(v.is_empty(), "{kind:?} chunk {chunk}: {v:#?}");
            }
        }
    }
}

/// Streaming must actually bound memory: the measured per-host peak is at
/// most max(chunk_edges, d_max) — a chunk always holds at least one whole
/// node — and strictly below the host's full slice for small chunks.
#[test]
fn peak_resident_edges_is_bounded_by_chunk_size() {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 71));
    let d_max = max_degree(&graph);
    let src = GraphSource::Memory(graph.clone());
    let (_, whole_peaks, _) = run(2, PolicyKind::Cvc, src.clone(), None);
    // Monolithic runs report their full slice: the per-host peaks are
    // exactly the read slices, which partition the edge set.
    assert!(whole_peaks.iter().all(|&p| p > 0));
    assert_eq!(whole_peaks.iter().sum::<u64>(), graph.num_edges());
    for chunk in CHUNKS {
        let (_, peaks, _) = run(2, PolicyKind::Cvc, src.clone(), Some(chunk));
        for &peak in &peaks {
            assert!(
                peak <= chunk.max(d_max),
                "chunk_edges {chunk}: peak {peak} exceeds bound {}",
                chunk.max(d_max)
            );
        }
    }
    // A small chunk is a real reduction, not a no-op.
    let (_, small_peaks, _) = run(2, PolicyKind::Cvc, src, Some(7));
    assert!(small_peaks.iter().all(|&p| p < graph.num_edges() / 2));
}

/// Per-chunk send-buffer flushes change message boundaries but must not
/// lose or invent traffic: every tagged phase stays conserved, and nothing
/// lands in the untagged bucket now that the Phase harness sets the tag.
#[test]
fn chunked_comm_stays_conserved_and_tagged() {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 29));
    for chunk in [None, Some(7), Some(64)] {
        let (_, _, stats) = run(4, PolicyKind::Hvc, GraphSource::Memory(graph.clone()), chunk);
        assert!(check_comm_stats(&stats).is_empty(), "chunk {chunk:?}");
        if let Some(untagged) = stats.phase("(untagged)") {
            assert_eq!(
                untagged.total_bytes(),
                0,
                "phase-tagged pipeline leaked untagged traffic (chunk {chunk:?})"
            );
        }
    }
}

/// Weighted inputs stream their per-edge data chunk-aligned with the
/// destinations; fingerprints (which hash edge data) must still match.
#[test]
fn weighted_chunked_runs_match_monolithic() {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 13));
    let data: Arc<Vec<u32>> = Arc::new(
        (0..graph.num_edges())
            .map(|i| (i as u32).wrapping_mul(2_654_435_761))
            .collect(),
    );
    let src = GraphSource::MemoryWeighted(graph.clone(), data.clone());
    let (whole, _, _) = run(4, PolicyKind::Hvc, src.clone(), None);
    let reference = partition_fingerprint(&whole);
    for chunk in CHUNKS {
        let (parts, _, stats) = run(4, PolicyKind::Hvc, src.clone(), Some(chunk));
        assert_eq!(partition_fingerprint(&parts), reference, "chunk {chunk}");
        let v = check_all(&graph, Some(&data), &parts, &stats);
        assert!(v.is_empty(), "chunk {chunk}: {v:#?}");
    }
}

/// The file-backed reader must stream the same partitions as the in-memory
/// backing (it re-reads byte ranges instead of copying windows).
#[test]
fn file_backed_chunks_match_memory_backed() {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 47));
    let mut path = std::env::temp_dir();
    path.push(format!("cusp-chunking-{}.bgr", std::process::id()));
    cusp_graph::write_bgr(&path, &graph).unwrap();
    let (mem, _, _) = run(4, PolicyKind::Cvc, GraphSource::Memory(graph.clone()), Some(7));
    let (file, _, _) = run(4, PolicyKind::Cvc, GraphSource::File(path.clone()), Some(7));
    assert_eq!(partition_fingerprint(&mem), partition_fingerprint(&file));
    std::fs::remove_file(&path).ok();
}
