//! End-to-end host-crash recovery oracle.
//!
//! Every cell of the crash matrix — victim host × crash phase × cluster
//! size × seed × chunking, with and without durable checkpoints — must
//! produce a partition **bit-identical** to the crash-free deterministic
//! run (same `partition_fingerprint`), pass the full invariant oracle
//! ([`cusp::check_partition`]), and keep communication accounting
//! conserved ([`cusp::check_comm_stats`]) — replayed traffic is tracked in
//! its own counters, outside the conserved per-phase matrices.
//!
//! Recovery leans on the determinism contract (`deterministic_sync`,
//! one worker thread): a restarted host re-executes phases and
//! regenerates byte-identical per-channel send streams, which receivers
//! dedupe by sequence number. Checkpoints only change *how much* is
//! re-executed, never the result.

use std::path::PathBuf;
use std::sync::Arc;

use cusp::{
    check_comm_stats, check_partition, partition_fingerprint, partition_with_policy, CuspConfig,
    DistGraph, GraphSource, PartitionError, PolicyKind,
};
use cusp_graph::gen::uniform::erdos_renyi;
use cusp_graph::Csr;
use cusp_net::{
    Cluster, ClusterError, ClusterOptions, CommStats, CrashPlan, RecoveryOptions, RecoveryReport,
    TraceConfig,
};

const NODES: usize = 150;
const EDGES: usize = 800;

/// Crash phases and the op budget the plan draws its trigger from: `read`
/// and `alloc` are killed right at phase entry (they are re-run wholesale
/// anyway), communicating phases somewhere in their first few operations.
const PHASES: [(&str, u64); 5] = [
    ("read", 1),
    ("master", 3),
    ("edge_assign", 3),
    ("alloc", 1),
    ("construct", 3),
];

/// The crash seed for recovery runs: `CUSP_CRASH_SEED` (set by the CI
/// chaos job to the current date) or a fixed default.
fn env_seed() -> u64 {
    std::env::var("CUSP_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDEC0DE)
}

/// Tight timings so the matrix runs in seconds: detection within tens of
/// milliseconds, short backoff, generous restart budget.
fn fast_recovery() -> RecoveryOptions {
    RecoveryOptions {
        heartbeat_timeout: std::time::Duration::from_millis(30),
        max_restarts: 3,
        restart_backoff: std::time::Duration::from_millis(2),
    }
}

/// The reproducibility configuration the recovery contract requires.
fn det_cfg(chunk: Option<u64>, ckpt: Option<PathBuf>) -> CuspConfig {
    CuspConfig {
        threads_per_host: 1,
        sync_rounds: 4,
        deterministic_sync: true,
        chunk_edges: chunk,
        checkpoint_dir: ckpt,
        ..CuspConfig::default()
    }
}

fn run(
    hosts: usize,
    kind: PolicyKind,
    source: GraphSource,
    crash: Option<CrashPlan>,
    cfg: CuspConfig,
    trace: Option<TraceConfig>,
) -> Result<(Vec<DistGraph>, CommStats, Option<RecoveryReport>, Option<cusp_obs::Trace>), ClusterError>
{
    let opts = ClusterOptions {
        crash,
        recovery: fast_recovery(),
        trace,
        ..ClusterOptions::default()
    };
    let out = Cluster::try_run_with(hosts, opts, move |comm| {
        partition_with_policy(comm, source.clone(), kind, &cfg)
    })?;
    let parts = out.results.into_iter().map(|r| r.dist_graph).collect();
    Ok((parts, out.stats, out.recovery, out.trace))
}

fn assert_clean(parts: &[DistGraph], stats: &CommStats, graph: &Csr, label: &str) {
    let v = check_partition(graph, None, parts);
    assert!(v.is_empty(), "{label}: partition violations: {v:#?}");
    let c = check_comm_stats(stats);
    assert!(c.is_empty(), "{label}: conservation violations: {c:#?}");
}

fn cell_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cusp-recovery-{}-{tag}", std::process::id()))
}

/// The full matrix for one cluster size: victims {first, last} × the five
/// phases × two crash seeds × {monolithic, chunked}, all checkpointed.
/// Whether a given cell's plan actually fires depends on the seeded op
/// threshold versus how many ops the victim executes in that phase, so
/// firing is asserted in aggregate (like the fault-injection oracle); every
/// cell's *result* must be bit-identical to the crash-free baseline either
/// way.
fn crash_matrix(hosts: usize) {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 29));
    let src = GraphSource::Memory(graph.clone());
    let victims = if hosts > 1 { vec![0, hosts - 1] } else { vec![0] };
    let seeds = [env_seed(), 0xFACADE];
    let chunks = [None, Some(64)];

    let mut fired = 0u64;
    for &chunk in &chunks {
        let cfg = det_cfg(chunk, None);
        let (baseline, base_stats, _, _) =
            run(hosts, PolicyKind::Cvc, src.clone(), None, cfg, None).expect("clean run");
        assert_clean(&baseline, &base_stats, &graph, &format!("hosts {hosts} baseline"));
        let base_fp = partition_fingerprint(&baseline);
        assert_eq!(base_stats.replayed_bytes(), 0, "clean run must replay nothing");

        for &victim in &victims {
            for &(phase, max_ops) in &PHASES {
                for &seed in &seeds {
                    let label = format!(
                        "hosts {hosts} victim {victim} phase {phase} seed {seed:#x} chunk {chunk:?}"
                    );
                    let dir = cell_dir(&format!("{hosts}-{victim}-{phase}-{seed}-{}", chunk.is_some()));
                    let cfg = det_cfg(chunk, Some(dir.clone()));
                    let plan = CrashPlan::once(seed, victim, phase, max_ops);
                    let (parts, stats, rec, _) =
                        run(hosts, PolicyKind::Cvc, src.clone(), Some(plan), cfg, None)
                            .unwrap_or_else(|e| panic!("{label}: {e}"));
                    let _ = std::fs::remove_dir_all(&dir);

                    assert_clean(&parts, &stats, &graph, &label);
                    assert_eq!(
                        partition_fingerprint(&parts),
                        base_fp,
                        "{label}: crash changed the partition"
                    );
                    let rec = rec.expect("crash plan was armed");
                    if rec.crashes > 0 {
                        assert!(rec.restarts >= 1, "{label}: crashed without restart");
                        fired += rec.crashes;
                    } else {
                        assert_eq!(stats.replayed_messages(), 0, "{label}: replay without crash");
                    }
                }
            }
        }
    }
    assert!(
        fired >= 8,
        "crash plans fired only {fired} times across the hosts={hosts} matrix"
    );
}

#[test]
fn crash_matrix_2_hosts() {
    crash_matrix(2);
}

#[test]
fn crash_matrix_4_hosts() {
    crash_matrix(4);
}

#[test]
fn crash_matrix_8_hosts() {
    crash_matrix(8);
}

/// Without checkpoints the restarted host re-runs the whole pipeline; the
/// result must still be bit-identical (pure re-execution + receiver-side
/// dedup), it just replays more.
#[test]
fn uncheckpointed_restart_is_bit_identical() {
    let hosts = 4;
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 47));
    let src = GraphSource::Memory(graph.clone());
    let (baseline, _, _, _) =
        run(hosts, PolicyKind::Cvc, src.clone(), None, det_cfg(None, None), None).expect("clean");
    let base_fp = partition_fingerprint(&baseline);

    let mut fired = 0u64;
    for &(phase, max_ops) in &PHASES {
        for seed in 0..4u64 {
            let label = format!("no-ckpt phase {phase} seed {seed}");
            let plan = CrashPlan::once(env_seed() ^ seed, 1, phase, max_ops);
            let (parts, stats, rec, _) =
                run(hosts, PolicyKind::Cvc, src.clone(), Some(plan), det_cfg(None, None), None)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_clean(&parts, &stats, &graph, &label);
            assert_eq!(partition_fingerprint(&parts), base_fp, "{label}");
            fired += rec.expect("armed").crashes;
        }
    }
    assert!(fired >= 3, "crash plans fired only {fired} times");
}

/// Checkpoints must actually skip work: for the same construct-phase crash,
/// the checkpointed run replays strictly less traffic than the full
/// restart (the master and edge-assignment exchanges are not re-sent).
/// Stored masters (forced) make the skipped phases traffic-heavy, and a
/// stateful edge rule (HDRF) proves snapshot-resume preserves the replay
/// determinism of partitioning state.
#[test]
fn checkpoint_skips_reexecution_traffic() {
    let hosts = 4;
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 11));
    let src = GraphSource::Memory(graph.clone());
    let stored_cfg = |ckpt: Option<PathBuf>| CuspConfig {
        force_stored_masters: true,
        ..det_cfg(None, ckpt)
    };

    // Find a seed whose plan actually fires during construction on host 2.
    let seed = (0..500u64)
        .find(|&s| CrashPlan::once(s, 2, "construct", 3).decide(2, "construct") == Some(2))
        .expect("a firing seed exists");
    let plan = CrashPlan::once(seed, 2, "construct", 3);

    let (clean, clean_stats, _, _) =
        run(hosts, PolicyKind::Hdrf, src.clone(), None, stored_cfg(None), None).expect("clean");
    assert_clean(&clean, &clean_stats, &graph, "hdrf clean");
    let fp = partition_fingerprint(&clean);

    let (full, full_stats, full_rec, _) =
        run(hosts, PolicyKind::Hdrf, src.clone(), Some(plan), stored_cfg(None), None)
            .expect("full restart");
    let full_rec = full_rec.expect("armed");
    assert_eq!(full_rec.crashes, 1, "plan must fire");
    assert_eq!(partition_fingerprint(&full), fp, "full restart diverged");

    let dir = cell_dir("skip");
    let (ckpt, ckpt_stats, ckpt_rec, _) =
        run(hosts, PolicyKind::Hdrf, src.clone(), Some(plan), stored_cfg(Some(dir.clone())), None)
            .expect("checkpointed restart");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(ckpt_rec.expect("armed").crashes, 1, "plan must fire");
    assert_eq!(partition_fingerprint(&ckpt), fp, "checkpointed restart diverged");
    assert_clean(&ckpt, &ckpt_stats, &graph, "hdrf ckpt");

    assert!(
        ckpt_stats.replayed_bytes() < full_stats.replayed_bytes(),
        "checkpoint did not reduce replayed traffic ({} vs {})",
        ckpt_stats.replayed_bytes(),
        full_stats.replayed_bytes()
    );
}

/// A host that keeps dying exhausts its restart budget and surfaces as a
/// typed error — mapped into [`PartitionError::HostLost`] — instead of a
/// hang or a panic.
#[test]
fn exhausted_restarts_surface_as_partition_error() {
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 7));
    let src = GraphSource::Memory(graph);
    let plan = CrashPlan::repeating(3, 0, "edge_assign");
    let err = run(2, PolicyKind::Cvc, src, Some(plan), det_cfg(None, None), None)
        .err()
        .expect("restart budget must exhaust");
    let pe = PartitionError::from(err);
    assert_eq!(
        pe,
        PartitionError::HostLost { host: 0, restarts: fast_recovery().max_restarts }
    );
    let msg = pe.to_string();
    assert!(msg.contains("host 0"), "{msg}");
}

/// A traced crashed-and-recovered partitioning run records the outage as
/// first-class events and still exports a structurally valid trace (the
/// crashed incarnation's open phase spans are closed synthetically).
#[test]
fn traced_crash_run_validates() {
    let hosts = 4;
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 29));
    let src = GraphSource::Memory(graph.clone());
    let seed = (0..500u64)
        .find(|&s| CrashPlan::once(s, 1, "construct", 3).decide(1, "construct") == Some(2))
        .expect("a firing seed exists");
    let plan = CrashPlan::once(seed, 1, "construct", 3);
    let dir = cell_dir("traced");
    let (parts, stats, rec, trace) = run(
        hosts,
        PolicyKind::Cvc,
        src,
        Some(plan),
        det_cfg(None, Some(dir.clone())),
        Some(TraceConfig::default()),
    )
    .expect("recovered run");
    let _ = std::fs::remove_dir_all(&dir);
    assert_clean(&parts, &stats, &graph, "traced crash");
    assert_eq!(rec.expect("armed").crashes, 1);

    let trace = trace.expect("trace requested");
    let json = cusp_obs::export_chrome_trace(&trace);
    let check = cusp_obs::validate_trace_json(&json).expect("valid trace");
    assert_eq!(check.processes, hosts);
    assert_eq!(check.crash_events, 1, "host_crash instant missing");
    assert_eq!(check.restart_events, 1, "host_restart instant missing");
}

/// Replayed traffic is accounted outside the conserved phase matrices:
/// the counters move exactly when a crash fired, and conservation holds
/// regardless.
#[test]
fn replay_counters_track_recovery() {
    let hosts = 2;
    let graph = Arc::new(erdos_renyi(NODES, EDGES, 13));
    let src = GraphSource::Memory(graph.clone());
    let mut saw_replay = false;
    for seed in 0..6u64 {
        let plan = CrashPlan::once(seed, 1, "construct", 3);
        let (parts, stats, rec, _) =
            run(hosts, PolicyKind::Cvc, src.clone(), Some(plan), det_cfg(None, None), None)
                .expect("recovered");
        assert_clean(&parts, &stats, &graph, &format!("seed {seed}"));
        let rec = rec.expect("armed");
        if rec.crashes > 0 && stats.replayed_messages() > 0 {
            assert!(stats.replayed_bytes() > 0);
            saw_replay = true;
        }
        if rec.crashes == 0 {
            assert_eq!(stats.replayed_messages(), 0);
        }
    }
    assert!(saw_replay, "no construct-phase crash replayed traffic across seeds");
}
