//! Structural digest of a trace for determinism testing.
//!
//! Two runs of a deterministic pipeline never produce identical traces —
//! timestamps differ — but their *structure* must not: the same spans open
//! on the same hosts the same number of times, and the same message counts
//! flow over each `(src, dst, tag)` channel. [`Structure`] collapses a
//! [`Trace`] to exactly that, in ordered maps so equality and diffs are
//! stable, and offers a name filter to exclude intentionally variable
//! events (chunk spans when comparing chunked vs. monolithic execution,
//! steal instants which depend on scheduling).

use std::collections::BTreeMap;

use crate::event::EventKind;
use crate::recorder::Trace;

/// Scheduling-independent shape of a trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Structure {
    /// `(host, span name)` → number of times the span opened.
    pub span_counts: BTreeMap<(u32, &'static str), u64>,
    /// `(host, instant name)` → occurrences.
    pub instant_counts: BTreeMap<(u32, &'static str), u64>,
    /// `(src, dst, tag)` → messages sent.
    pub send_counts: BTreeMap<(u32, u32, u8), u64>,
    /// `(src, dst, tag)` → messages delivered.
    pub recv_counts: BTreeMap<(u32, u32, u8), u64>,
}

impl Structure {
    /// Digests a drained trace.
    pub fn of(trace: &Trace) -> Self {
        let mut s = Structure::default();
        for e in &trace.events {
            match e.kind {
                EventKind::SpanBegin { name, .. } => {
                    *s.span_counts.entry((e.host, name)).or_insert(0) += 1;
                }
                EventKind::Instant { name, .. } => {
                    *s.instant_counts.entry((e.host, name)).or_insert(0) += 1;
                }
                EventKind::MsgSend { dst, tag, .. } => {
                    *s.send_counts.entry((e.host, dst, tag)).or_insert(0) += 1;
                }
                EventKind::MsgRecv { src, tag, .. } => {
                    *s.recv_counts.entry((src, e.host, tag)).or_insert(0) += 1;
                }
                EventKind::SpanEnd { .. } | EventKind::Counter { .. } => {}
            }
        }
        s
    }

    /// A copy with the named spans and instants removed — for comparisons
    /// where some event families legitimately vary (e.g. `"chunk"` spans
    /// across chunked vs. monolithic runs, `"steal"` instants across any
    /// two runs with work stealing).
    pub fn without_names(&self, names: &[&str]) -> Self {
        let keep = |k: &(u32, &'static str)| !names.contains(&k.1);
        Structure {
            span_counts: self
                .span_counts
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (*k, *v))
                .collect(),
            instant_counts: self
                .instant_counts
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (*k, *v))
                .collect(),
            send_counts: self.send_counts.clone(),
            recv_counts: self.recv_counts.clone(),
        }
    }

    /// Total messages sent, summed over channels.
    pub fn total_sends(&self) -> u64 {
        self.send_counts.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn record(steals: u64) -> Trace {
        let rec = Recorder::new();
        let _g = rec.attach(0, "main");
        crate::span_begin("read");
        crate::msg_send(1, 5, 0, 64, true);
        crate::msg_send(1, 5, 1, 64, true);
        crate::msg_recv(1, 5, 0, 32);
        for v in 0..steals {
            crate::instant("steal", v);
        }
        crate::span_end("read");
        drop(_g);
        rec.drain()
    }

    #[test]
    fn identical_recordings_have_equal_structure() {
        assert_eq!(Structure::of(&record(2)), Structure::of(&record(2)));
    }

    #[test]
    fn counts_are_keyed_by_channel() {
        let s = Structure::of(&record(0));
        assert_eq!(s.span_counts.get(&(0, "read")), Some(&1));
        assert_eq!(s.send_counts.get(&(0, 1, 5)), Some(&2));
        assert_eq!(s.recv_counts.get(&(1, 0, 5)), Some(&1));
        assert_eq!(s.total_sends(), 2);
    }

    #[test]
    fn without_names_masks_variable_events() {
        let a = Structure::of(&record(1));
        let b = Structure::of(&record(5));
        assert_ne!(a, b);
        assert_eq!(a.without_names(&["steal"]), b.without_names(&["steal"]));
        // Message counts survive the filter.
        assert_eq!(a.without_names(&["steal"]).total_sends(), 2);
    }
}
