//! Fixed-size event records and their raw ring encoding.
//!
//! Events are stored in the per-thread rings as `EVENT_WORDS` `u64` words so
//! that recording never allocates: span/counter names are `&'static str`s
//! whose pointer and length are stored verbatim (and reconstructed at drain
//! time), message events are purely numeric. One slot is 64 bytes — a cache
//! line — so consecutive records from one thread never share a line with
//! another thread's ring.

/// Number of `u64` words per event slot (64 bytes: one cache line).
pub const EVENT_WORDS: usize = 8;

/// A raw, still-encoded event as stored in a ring slot.
pub(crate) type RawEvent = [u64; EVENT_WORDS];

const KIND_SPAN_BEGIN: u64 = 1;
const KIND_SPAN_END: u64 = 2;
const KIND_INSTANT: u64 = 3;
const KIND_COUNTER: u64 = 4;
const KIND_MSG_SEND: u64 = 5;
const KIND_MSG_RECV: u64 = 6;

/// One decoded trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Simulated host (Chrome-trace process) the recording thread belongs to.
    pub host: u32,
    /// Recorder-scoped thread id (Chrome-trace thread).
    pub tid: u32,
    /// Nanoseconds since the recorder's epoch.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of an [`Event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened on the recording thread.
    SpanBegin {
        /// Span name (doubles as the structural identity of the span).
        name: &'static str,
        /// Free-form argument (e.g. chunk index); 0 when unused.
        arg: u64,
    },
    /// The innermost open span of that name closed.
    SpanEnd {
        /// Span name, matching the begin event.
        name: &'static str,
    },
    /// A point event (e.g. a successful steal).
    Instant {
        /// Event name.
        name: &'static str,
        /// Free-form argument (e.g. the steal victim's thread id).
        arg: u64,
    },
    /// A sampled counter value.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Sampled value.
        value: u64,
    },
    /// A message handed to the fabric by `Comm::send_bytes`. The source
    /// host is the event's `host`; `(src, dst, tag, seq)` identifies the
    /// message end to end (the fabric's per-channel sequence number).
    MsgSend {
        /// Destination host.
        dst: u32,
        /// Message tag (mailbox class).
        tag: u8,
        /// Per-(src, dst, tag) sequence number.
        seq: u64,
        /// Payload length in bytes.
        bytes: u64,
        /// False for self-sends (not network traffic).
        remote: bool,
    },
    /// A message handed to the application by the resequencer. The
    /// destination host is the event's `host`.
    MsgRecv {
        /// Source host.
        src: u32,
        /// Message tag (mailbox class).
        tag: u8,
        /// Per-(src, dst, tag) sequence number.
        seq: u64,
        /// Payload length in bytes.
        bytes: u64,
    },
}

#[inline]
fn name_words(name: &'static str) -> (u64, u64) {
    (name.as_ptr() as usize as u64, name.len() as u64)
}

/// # Safety
/// `ptr`/`len` must have been produced by [`name_words`] from a
/// `&'static str`, which the recording API guarantees.
unsafe fn name_back(ptr: u64, len: u64) -> &'static str {
    let slice = std::slice::from_raw_parts(ptr as usize as *const u8, len as usize);
    std::str::from_utf8_unchecked(slice)
}

#[inline]
pub(crate) fn raw_span_begin(ts: u64, name: &'static str, arg: u64) -> RawEvent {
    let (p, l) = name_words(name);
    [KIND_SPAN_BEGIN, ts, p, l, arg, 0, 0, 0]
}

#[inline]
pub(crate) fn raw_span_end(ts: u64, name: &'static str) -> RawEvent {
    let (p, l) = name_words(name);
    [KIND_SPAN_END, ts, p, l, 0, 0, 0, 0]
}

#[inline]
pub(crate) fn raw_instant(ts: u64, name: &'static str, arg: u64) -> RawEvent {
    let (p, l) = name_words(name);
    [KIND_INSTANT, ts, p, l, arg, 0, 0, 0]
}

#[inline]
pub(crate) fn raw_counter(ts: u64, name: &'static str, value: u64) -> RawEvent {
    let (p, l) = name_words(name);
    [KIND_COUNTER, ts, p, l, value, 0, 0, 0]
}

#[inline]
pub(crate) fn raw_msg_send(ts: u64, dst: u32, tag: u8, seq: u64, bytes: u64, remote: bool) -> RawEvent {
    [
        KIND_MSG_SEND,
        ts,
        dst as u64,
        tag as u64 | (u64::from(remote) << 8),
        seq,
        bytes,
        0,
        0,
    ]
}

#[inline]
pub(crate) fn raw_msg_recv(ts: u64, src: u32, tag: u8, seq: u64, bytes: u64) -> RawEvent {
    [KIND_MSG_RECV, ts, src as u64, tag as u64, seq, bytes, 0, 0]
}

/// Decodes one raw slot recorded by this thread's ring; `None` for a slot
/// whose kind word is unrecognized (possible only if a ring was drained
/// while its owner thread still recorded, which the recorder contract
/// forbids).
pub(crate) fn decode(raw: &RawEvent, host: u32, tid: u32) -> Option<Event> {
    let ts_ns = raw[1];
    let kind = match raw[0] {
        // SAFETY: words 2/3 hold the pointer/length of a `&'static str`
        // stored by the raw_* constructors above.
        KIND_SPAN_BEGIN => EventKind::SpanBegin {
            name: unsafe { name_back(raw[2], raw[3]) },
            arg: raw[4],
        },
        KIND_SPAN_END => EventKind::SpanEnd {
            name: unsafe { name_back(raw[2], raw[3]) },
        },
        KIND_INSTANT => EventKind::Instant {
            name: unsafe { name_back(raw[2], raw[3]) },
            arg: raw[4],
        },
        KIND_COUNTER => EventKind::Counter {
            name: unsafe { name_back(raw[2], raw[3]) },
            value: raw[4],
        },
        KIND_MSG_SEND => EventKind::MsgSend {
            dst: raw[2] as u32,
            tag: (raw[3] & 0xff) as u8,
            seq: raw[4],
            bytes: raw[5],
            remote: (raw[3] >> 8) & 1 == 1,
        },
        KIND_MSG_RECV => EventKind::MsgRecv {
            src: raw[2] as u32,
            tag: (raw[3] & 0xff) as u8,
            seq: raw[4],
            bytes: raw[5],
        },
        _ => return None,
    };
    Some(Event { host, tid, ts_ns, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_kinds() {
        let cases = [
            raw_span_begin(10, "phase", 3),
            raw_span_end(11, "phase"),
            raw_instant(12, "steal", 2),
            raw_counter(13, "bytes", 99),
            raw_msg_send(14, 7, 3, 41, 1024, true),
            raw_msg_recv(15, 2, 3, 41, 1024),
        ];
        let decoded: Vec<Event> = cases.iter().map(|r| decode(r, 5, 1).unwrap()).collect();
        assert_eq!(
            decoded[0].kind,
            EventKind::SpanBegin { name: "phase", arg: 3 }
        );
        assert_eq!(decoded[1].kind, EventKind::SpanEnd { name: "phase" });
        assert_eq!(decoded[2].kind, EventKind::Instant { name: "steal", arg: 2 });
        assert_eq!(decoded[3].kind, EventKind::Counter { name: "bytes", value: 99 });
        assert_eq!(
            decoded[4].kind,
            EventKind::MsgSend { dst: 7, tag: 3, seq: 41, bytes: 1024, remote: true }
        );
        assert_eq!(
            decoded[5].kind,
            EventKind::MsgRecv { src: 2, tag: 3, seq: 41, bytes: 1024 }
        );
        assert!(decoded.iter().all(|e| e.host == 5 && e.tid == 1));
        assert_eq!(decoded[0].ts_ns, 10);
    }

    #[test]
    fn self_send_not_remote() {
        let e = decode(&raw_msg_send(0, 0, 0, 0, 8, false), 0, 0).unwrap();
        assert_eq!(
            e.kind,
            EventKind::MsgSend { dst: 0, tag: 0, seq: 0, bytes: 8, remote: false }
        );
    }

    #[test]
    fn unknown_kind_skipped() {
        assert!(decode(&[99, 0, 0, 0, 0, 0, 0, 0], 0, 0).is_none());
    }
}
