//! Chrome trace-event JSON export and validation.
//!
//! The exporter renders a drained [`Trace`] in the Chrome trace-event
//! format (the `traceEvents` array flavor), loadable in Perfetto or
//! `chrome://tracing`:
//!
//! * one *process* per simulated host (`pid` = host id, labeled via a
//!   `process_name` metadata event), one *thread* per attached thread;
//! * spans become `B`/`E` duration events, instants `i`, counters `C`;
//! * each delivered message becomes a flow-event pair (`s` at the send,
//!   `f` at the delivery) whose id encodes the envelope key
//!   `(src, dst, tag, seq)` — Perfetto draws these as arrows between
//!   hosts. Sends without a recorded delivery (faulted runs, wrapped
//!   rings) emit no flow arrow so the output always validates.
//!
//! The same module carries a small self-contained JSON parser (the
//! workspace vendors no serde) powering [`validate_trace_json`], used by
//! tests, `cusp-part trace-check`, and the CI smoke job.

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

use crate::event::EventKind;
use crate::recorder::Trace;

/// Renders a drained trace as Chrome trace-event JSON.
pub fn export_chrome_trace(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.events.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, ev: &str| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(ev);
    };

    // Metadata: name each host process and thread track.
    let hosts: BTreeSet<u32> = trace.threads.iter().map(|t| t.host).collect();
    for h in &hosts {
        push(
            &mut out,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{h},\"tid\":0,\
                 \"args\":{{\"name\":\"host-{h}\"}}}}"
            ),
        );
    }
    for t in &trace.threads {
        push(
            &mut out,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":{}}}}}",
                t.host,
                t.tid,
                json_string(&t.name)
            ),
        );
    }

    // Flow arrows only for messages whose delivery was also recorded.
    let mut recv_keys: BTreeSet<(u32, u32, u8, u64)> = BTreeSet::new();
    let mut send_keys: BTreeSet<(u32, u32, u8, u64)> = BTreeSet::new();
    for e in &trace.events {
        match e.kind {
            EventKind::MsgSend { dst, tag, seq, .. } => {
                send_keys.insert((e.host, dst, tag, seq));
            }
            EventKind::MsgRecv { src, tag, seq, .. } => {
                recv_keys.insert((src, e.host, tag, seq));
            }
            _ => {}
        }
    }

    // Open-span tracking: a crashed host's thread dies mid-phase, so its
    // explicit `span_begin` never sees the matching `span_end`. The export
    // closes such spans synthetically at the thread's last timestamp (LIFO,
    // so nesting stays well-formed) — the truncated span then renders as
    // "cut off at the crash" in Perfetto instead of invalidating the file.
    let mut open_spans: HashMap<(u32, u32), Vec<&'static str>> = HashMap::new();
    let mut last_thread_ts: HashMap<(u32, u32), u64> = HashMap::new();

    for e in &trace.events {
        let (pid, tid) = (e.host, e.tid);
        let ts = e.ts_ns as f64 / 1000.0;
        last_thread_ts
            .entry((pid, tid))
            .and_modify(|t| *t = (*t).max(e.ts_ns))
            .or_insert(e.ts_ns);
        match e.kind {
            EventKind::SpanBegin { name, .. } => {
                open_spans.entry((pid, tid)).or_default().push(name);
            }
            EventKind::SpanEnd { name } => {
                if let Some(stack) = open_spans.get_mut(&(pid, tid)) {
                    if let Some(i) = stack.iter().rposition(|n| *n == name) {
                        stack.remove(i);
                    }
                }
            }
            _ => {}
        }
        match e.kind {
            EventKind::SpanBegin { name, arg } => push(
                &mut out,
                &format!(
                    "{{\"name\":{},\"cat\":\"span\",\"ph\":\"B\",\"ts\":{ts:.3},\"pid\":{pid},\
                     \"tid\":{tid},\"args\":{{\"arg\":{arg}}}}}",
                    json_string(name)
                ),
            ),
            EventKind::SpanEnd { name } => push(
                &mut out,
                &format!(
                    "{{\"name\":{},\"cat\":\"span\",\"ph\":\"E\",\"ts\":{ts:.3},\"pid\":{pid},\
                     \"tid\":{tid}}}",
                    json_string(name)
                ),
            ),
            EventKind::Instant { name, arg } => push(
                &mut out,
                &format!(
                    "{{\"name\":{},\"cat\":\"instant\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:.3},\
                     \"pid\":{pid},\"tid\":{tid},\"args\":{{\"arg\":{arg}}}}}",
                    json_string(name)
                ),
            ),
            EventKind::Counter { name, value } => push(
                &mut out,
                &format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"value\":{value}}}}}",
                    json_string(name)
                ),
            ),
            EventKind::MsgSend { dst, tag, seq, bytes, remote } => {
                push(
                    &mut out,
                    &format!(
                        "{{\"name\":\"send\",\"cat\":\"msg\",\"ph\":\"i\",\"s\":\"t\",\
                         \"ts\":{ts:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"dst\":{dst},\
                         \"tag\":{tag},\"seq\":{seq},\"bytes\":{bytes},\"remote\":{remote}}}}}"
                    ),
                );
                if recv_keys.contains(&(e.host, dst, tag, seq)) {
                    push(
                        &mut out,
                        &format!(
                            "{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"s\",\"ts\":{ts:.3},\
                             \"pid\":{pid},\"tid\":{tid},\"id\":\"{}\"}}",
                            flow_id(e.host, dst, tag, seq)
                        ),
                    );
                }
            }
            EventKind::MsgRecv { src, tag, seq, bytes } => {
                push(
                    &mut out,
                    &format!(
                        "{{\"name\":\"recv\",\"cat\":\"msg\",\"ph\":\"i\",\"s\":\"t\",\
                         \"ts\":{ts:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"src\":{src},\
                         \"tag\":{tag},\"seq\":{seq},\"bytes\":{bytes}}}}}"
                    ),
                );
                if send_keys.contains(&(src, e.host, tag, seq)) {
                    push(
                        &mut out,
                        &format!(
                            "{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\
                             \"ts\":{ts:.3},\"pid\":{pid},\"tid\":{tid},\"id\":\"{}\"}}",
                            flow_id(src, e.host, tag, seq)
                        ),
                    );
                }
            }
        }
    }

    // Synthetically close whatever each thread left open, innermost first.
    for ((pid, tid), stack) in &open_spans {
        let ts = *last_thread_ts.get(&(*pid, *tid)).unwrap_or(&0) as f64 / 1000.0;
        for name in stack.iter().rev() {
            push(
                &mut out,
                &format!(
                    "{{\"name\":{},\"cat\":\"span\",\"ph\":\"E\",\"ts\":{ts:.3},\"pid\":{pid},\
                     \"tid\":{tid},\"args\":{{\"truncated\":true}}}}",
                    json_string(name)
                ),
            );
        }
    }

    let _ = write!(
        out,
        "\n],\"otherData\":{{\"dropped_events\":{}}}}}",
        trace.dropped_events
    );
    out
}

fn flow_id(src: u32, dst: u32, tag: u8, seq: u64) -> String {
    format!("s{src}d{dst}t{tag}q{seq}")
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (no external deps) + trace-event validation.
// ---------------------------------------------------------------------------

/// A parsed JSON value; just enough structure for trace validation.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { text: s, bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multibyte scalar. The input is a &str and `pos` only
                    // ever advances by whole scalars, so it sits on a char
                    // boundary; decoding one char here is O(1) — never
                    // re-validate the whole tail, that turns string-heavy
                    // traces quadratic.
                    let c = self.text[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

pub(crate) fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

/// Counts reported by a successful [`validate_trace_json`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events in `traceEvents`.
    pub total_events: usize,
    /// Duration events (`B` + `E`).
    pub span_events: usize,
    /// Matched flow pairs (`s`/`f` with the same id).
    pub flow_pairs: usize,
    /// Distinct `pid`s (simulated hosts).
    pub processes: usize,
    /// `host_crash` instants — planned host deaths that fired.
    pub crash_events: usize,
    /// `host_restart` instants — supervisor respawns (in-process host
    /// threads, or a respawned worker process running at incarnation > 0).
    pub restart_events: usize,
    /// `peer_down` instants — a TCP peer declared lost by a survivor.
    pub peer_down_events: usize,
    /// `peer_rejoin` instants — a respawned peer re-admitted to the mesh.
    pub rejoin_events: usize,
}

/// Checks that `text` is well-formed Chrome trace-event JSON: every event
/// carries `ph`/`ts`/`pid`/`tid`, per-thread timestamps are monotone
/// non-decreasing in array order, span begins/ends balance per thread and
/// name, and every flow start (`s`) has exactly one matching flow finish
/// (`f`) and vice versa.
pub fn validate_trace_json(text: &str) -> Result<TraceCheck, String> {
    let root = parse_json(text)?;
    let events = match root.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        Some(_) => return Err("traceEvents is not an array".into()),
        None => match root {
            Json::Arr(ref events) => events,
            _ => return Err("expected a traceEvents array".into()),
        },
    };

    let mut check = TraceCheck { total_events: events.len(), ..TraceCheck::default() };
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut span_balance: HashMap<(u64, u64, String), i64> = HashMap::new();
    let mut flows: HashMap<String, (usize, usize)> = HashMap::new();
    let mut pids: BTreeSet<u64> = BTreeSet::new();

    for (i, ev) in events.iter().enumerate() {
        let ctx = |field: &str| format!("event {i}: missing or malformed '{field}'");
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("ph"))?
            .to_string();
        let ts = ev.get("ts").and_then(Json::as_num).ok_or_else(|| ctx("ts"))?;
        let pid = ev.get("pid").and_then(Json::as_num).ok_or_else(|| ctx("pid"))? as u64;
        let tid = ev.get("tid").and_then(Json::as_num).ok_or_else(|| ctx("tid"))? as u64;
        pids.insert(pid);

        if ph != "M" {
            let prev = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
            if ts < *prev {
                return Err(format!(
                    "event {i}: ts {ts} goes backwards on pid {pid} tid {tid} (prev {prev})"
                ));
            }
            *prev = ts;
        }

        match ph.as_str() {
            "B" | "E" => {
                check.span_events += 1;
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ctx("name"))?
                    .to_string();
                *span_balance.entry((pid, tid, name)).or_insert(0) +=
                    if ph == "B" { 1 } else { -1 };
            }
            "s" | "f" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ctx("id"))?
                    .to_string();
                let entry = flows.entry(id).or_insert((0, 0));
                if ph == "s" {
                    entry.0 += 1;
                } else {
                    entry.1 += 1;
                }
            }
            "i" => match ev.get("name").and_then(Json::as_str) {
                Some("host_crash") => check.crash_events += 1,
                Some("host_restart") => check.restart_events += 1,
                Some("peer_down") => check.peer_down_events += 1,
                Some("peer_rejoin") => check.rejoin_events += 1,
                _ => {}
            },
            "C" | "M" => {}
            other => return Err(format!("event {i}: unknown ph '{other}'")),
        }
    }

    for ((pid, tid, name), bal) in &span_balance {
        if *bal != 0 {
            return Err(format!(
                "unbalanced span '{name}' on pid {pid} tid {tid} (balance {bal})"
            ));
        }
    }
    for (id, (starts, ends)) in &flows {
        if starts != ends {
            return Err(format!(
                "flow '{id}' has {starts} start(s) but {ends} finish(es)"
            ));
        }
        check.flow_pairs += starts;
    }
    check.processes = pids.len();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_trace() -> Trace {
        let rec = Recorder::new();
        let g0 = rec.attach(0, "main");
        crate::span_begin("read");
        crate::msg_send(1, 5, 0, 64, true);
        crate::counter("resident", 7);
        crate::span_end("read");
        drop(g0);
        let g1 = rec.attach(1, "main");
        crate::span_begin("read");
        crate::msg_recv(0, 5, 0, 64);
        crate::instant("steal", 3);
        crate::span_end("read");
        drop(g1);
        rec.drain()
    }

    #[test]
    fn export_validates_clean() {
        let json = export_chrome_trace(&sample_trace());
        let check = validate_trace_json(&json).expect("valid trace");
        assert_eq!(check.processes, 2);
        assert_eq!(check.flow_pairs, 1);
        assert_eq!(check.span_events, 4);
        assert!(check.total_events >= 10);
    }

    #[test]
    fn unmatched_send_emits_no_flow() {
        let rec = Recorder::new();
        let g = rec.attach(0, "main");
        crate::msg_send(1, 5, 0, 64, true); // never delivered
        drop(g);
        let json = export_chrome_trace(&rec.drain());
        let check = validate_trace_json(&json).expect("valid trace");
        assert_eq!(check.flow_pairs, 0);
    }

    #[test]
    fn crashed_thread_spans_are_closed_synthetically() {
        // A thread that dies mid-phase leaves explicit spans open (nested,
        // to exercise LIFO closing); the export must still validate, and
        // the crash/restart instants must be counted.
        let rec = Recorder::new();
        let g = rec.attach(0, "main");
        crate::span_begin("master");
        crate::span_begin("chunk");
        crate::instant("host_crash", 4);
        drop(g);
        let s = rec.attach(0, "supervisor");
        crate::instant("host_detect", 1);
        crate::instant("host_restart", 1);
        crate::instant("peer_down", 2);
        crate::instant("peer_rejoin", 1);
        drop(s);
        let g2 = rec.attach(0, "main");
        crate::span_begin("master");
        crate::span_end("master");
        drop(g2);
        let json = export_chrome_trace(&rec.drain());
        let check = validate_trace_json(&json).expect("valid trace despite crash");
        assert_eq!(check.crash_events, 1);
        assert_eq!(check.restart_events, 1);
        assert_eq!(check.peer_down_events, 1);
        assert_eq!(check.rejoin_events, 1);
        // 2 dangling begins + 2 synthetic ends + 1 balanced pair.
        assert_eq!(check.span_events, 6);
        assert!(json.contains("\"truncated\":true"));
    }

    #[test]
    fn parser_round_trips_escapes() {
        let v = parse_json(r#"{"a":[1,-2.5e1,"x\n\"A",true,null],"b":{}}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-25.0),
                Json::Str("x\n\"A".into()),
                Json::Bool(true),
                Json::Null,
            ]))
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1} extra").is_err());
        assert!(parse_json("nope").is_err());
    }

    #[test]
    fn validator_catches_missing_fields() {
        let err =
            validate_trace_json(r#"{"traceEvents":[{"ph":"B","ts":1,"pid":0}]}"#).unwrap_err();
        assert!(err.contains("tid"), "{err}");
    }

    #[test]
    fn validator_catches_backwards_ts() {
        let err = validate_trace_json(
            r#"{"traceEvents":[
                {"name":"a","ph":"B","ts":5,"pid":0,"tid":0},
                {"name":"a","ph":"E","ts":1,"pid":0,"tid":0}
            ]}"#,
        )
        .unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn validator_catches_unbalanced_span() {
        let err = validate_trace_json(
            r#"{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":0,"tid":0}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("unbalanced"), "{err}");
    }

    #[test]
    fn validator_catches_dangling_flow() {
        let err = validate_trace_json(
            r#"{"traceEvents":[{"name":"m","ph":"s","id":"x","ts":1,"pid":0,"tid":0}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("flow"), "{err}");
    }
}
