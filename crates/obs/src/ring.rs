//! Per-thread lock-free event ring buffers.
//!
//! A [`Ring`] is written by exactly one thread (its owner) and drained by
//! the recorder after that thread has quiesced. The owner publishes each
//! slot with a plain store sequence — slot words first (relaxed), then a
//! release store of the head counter — so the drain side, which loads the
//! head with acquire ordering, observes only fully written slots. When the
//! ring wraps, the oldest events are overwritten and counted as dropped
//! rather than blocking or reallocating: tracing must never stall the
//! traffic it observes.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::event::{RawEvent, EVENT_WORDS};

/// One event slot. Words are individually atomic so that a (contract
/// violating) concurrent drain reads torn events, never undefined behavior.
struct Slot([AtomicU64; EVENT_WORDS]);

/// Allocates `cap` zeroed slots. All-zero bytes are a valid `Slot`
/// (atomics have the same representation as their integer), so the
/// buffer can come straight from `alloc_zeroed`. This matters beyond
/// speed: the OS maps zeroed pages lazily, so a mostly-idle ring never
/// commits most of its capacity — an init loop would instead touch every
/// cache line of every ring at attach time, a measurable skew when a
/// traced 16-host run attaches dozens of multi-MiB rings mid-pipeline.
fn zeroed_slots(cap: usize) -> Box<[Slot]> {
    let layout = std::alloc::Layout::array::<Slot>(cap).expect("ring capacity overflow");
    unsafe {
        let ptr = std::alloc::alloc_zeroed(layout).cast::<Slot>();
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, cap))
    }
}

/// A single-producer event ring plus the owning thread's identity.
pub(crate) struct Ring {
    /// Simulated host of the owner thread.
    pub(crate) host: u32,
    /// Recorder-scoped thread id.
    pub(crate) tid: u32,
    /// Human-readable thread name for the exporter.
    pub(crate) name: String,
    cap: usize,
    /// Total events ever pushed; slot index is `head % cap`.
    head: AtomicUsize,
    slots: Box<[Slot]>,
}

impl Ring {
    pub(crate) fn new(cap: usize, host: u32, tid: u32, name: String) -> Self {
        let cap = cap.max(16);
        Ring {
            host,
            tid,
            name,
            cap,
            head: AtomicUsize::new(0),
            slots: zeroed_slots(cap),
        }
    }

    /// Records one event. Owner thread only.
    #[inline]
    pub(crate) fn push(&self, words: RawEvent) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[h % self.cap];
        for (cell, &w) in slot.0.iter().zip(words.iter()) {
            cell.store(w, Ordering::Relaxed);
        }
        self.head.store(h + 1, Ordering::Release);
    }

    /// Reads out the retained events in push order, plus how many older
    /// events were overwritten. Call only after the owner thread quiesced.
    pub(crate) fn drain(&self) -> (Vec<RawEvent>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let n = head.min(self.cap);
        let mut out = Vec::with_capacity(n);
        for i in head - n..head {
            let slot = &self.slots[i % self.cap];
            out.push(std::array::from_fn(|w| slot.0[w].load(Ordering::Relaxed)));
        }
        (out, (head - n) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let ring = Ring::new(64, 0, 0, "t".into());
        for i in 0..10u64 {
            ring.push([1, i, 0, 0, 0, 0, 0, 0]);
        }
        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.iter().map(|e| e[1]).collect::<Vec<_>>(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn wraps_and_counts_drops() {
        let ring = Ring::new(16, 0, 0, "t".into());
        for i in 0..40u64 {
            ring.push([1, i, 0, 0, 0, 0, 0, 0]);
        }
        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 24);
        assert_eq!(events.len(), 16);
        // The newest 16 events survive, in order.
        assert_eq!(events.iter().map(|e| e[1]).collect::<Vec<_>>(), (24..40).collect::<Vec<_>>());
    }

    #[test]
    fn tiny_capacity_clamped() {
        let ring = Ring::new(0, 0, 0, "t".into());
        for i in 0..5u64 {
            ring.push([1, i, 0, 0, 0, 0, 0, 0]);
        }
        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
    }
}
