//! `cusp-obs`: cross-host tracing and metrics for the CuSP reproduction.
//!
//! The partitioner's evaluation is an attribution exercise — which phase,
//! which host, compute or network — so the stack needs observability that
//! is structural (every run traced the same way) and cheap enough to leave
//! compiled in. This crate provides it in three layers:
//!
//! 1. **Recording** ([`Recorder`], the `span_*`/`instant`/`counter`/
//!    `msg_*` free functions): per-thread lock-free ring buffers of
//!    fixed-size (64 B) events. A thread records only while *attached*;
//!    detached, every recording call is one thread-local load and a null
//!    check — no allocation, no atomics, no locks. Worker threads inherit
//!    the spawner's attachment via [`current`]/[`Attachment`], so `galois`
//!    pool tasks land in the right host's trace.
//! 2. **Export** ([`export_chrome_trace`], [`validate_trace_json`]):
//!    Chrome trace-event JSON, one process per simulated host, spans,
//!    counters, and flow arrows connecting each message send to its
//!    delivery via the network envelope's `(src, dst, tag, seq)` key. The
//!    validator (backed by a small built-in JSON parser) is what CI runs
//!    against emitted traces.
//! 3. **Analysis** ([`summarize`]/[`render`], [`Structure`]): a per-phase
//!    critical-path table folding measured compute spans with measured
//!    traffic under an α–β cost model, and a scheduling-independent
//!    structural digest used by determinism tests.

#![warn(missing_docs)]

mod chrome;
mod event;
mod recorder;
mod ring;
mod structure;
mod summary;

pub use chrome::{export_chrome_trace, validate_trace_json, TraceCheck};
pub use event::{Event, EventKind, EVENT_WORDS};
pub use recorder::{
    counter, current, instant, is_active, msg_recv, msg_send, span, span_arg, span_begin,
    span_begin_arg, span_end, AttachGuard, Attachment, Recorder, SpanGuard, ThreadInfo, Trace,
    DEFAULT_RING_CAPACITY,
};
pub use structure::Structure;
pub use summary::{render, summarize, CostModel, HostCost, HostNet, PhaseNet, PhaseRow};
