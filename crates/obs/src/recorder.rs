//! The recorder: per-thread ring registration, the thread-local dispatch
//! pointer, and the free-function recording API.
//!
//! Design constraints (ISSUE: "near-zero-cost disabled path"):
//!
//! * **Off by default, per thread.** The hot-path switch is a thread-local
//!   `Cell<*const ThreadCtx>`: every recording function performs one
//!   thread-local load and a null check, then returns. No atomics, no
//!   allocation, no locks on the disabled path.
//! * **Scoped, not global.** Tracing is enabled by *attaching* the current
//!   thread to a [`Recorder`] (the simulated cluster attaches each host
//!   thread; thread pools attach their workers by inheriting the spawning
//!   thread's attachment). Two concurrent cluster runs in one process —
//!   the normal situation under `cargo test` — therefore never contaminate
//!   each other's traces.
//! * **Lock-free recording.** An attached thread owns its [`Ring`]
//!   exclusively; recording is a handful of plain stores. The registry
//!   mutex is touched only at attach and drain time.

use std::cell::Cell;
use std::ptr;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::event::{self, Event};
use crate::ring::Ring;

/// Default per-thread ring capacity, in events (64 B each).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

thread_local! {
    /// The hot-path dispatch pointer. Null ⇒ tracing disabled on this
    /// thread; recording functions return after this one load.
    static ACTIVE: Cell<*const ThreadCtx> = const { Cell::new(ptr::null()) };
}

/// Per-attached-thread state, owned by the [`AttachGuard`] on that
/// thread's stack.
struct ThreadCtx {
    ring: Arc<Ring>,
    epoch: Instant,
    shared: Arc<Shared>,
    host: u32,
}

impl ThreadCtx {
    #[inline]
    fn ts(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// State shared by all rings of one recorder.
struct Shared {
    epoch: Instant,
    ring_capacity: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
}

/// A tracing session: rings attach to it, [`Recorder::drain`] reads them
/// back out as a [`Trace`].
#[derive(Clone)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder with [`DEFAULT_RING_CAPACITY`] events per thread.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A recorder whose per-thread rings hold `ring_capacity` events each;
    /// older events are overwritten (and counted) once a ring wraps.
    pub fn with_capacity(ring_capacity: usize) -> Self {
        Recorder {
            shared: Arc::new(Shared {
                epoch: Instant::now(),
                ring_capacity,
                rings: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Attaches the current thread: all recording from this thread goes to
    /// a fresh ring until the returned guard drops. `host` labels the
    /// Chrome-trace process, `name` the thread track.
    pub fn attach(&self, host: u32, name: &str) -> AttachGuard {
        attach_shared(Arc::clone(&self.shared), host, name)
    }

    /// Reads every attached ring into a [`Trace`]. Call after all attached
    /// threads have quiesced (for the cluster: after `Cluster::run`
    /// joined its host threads, which transitively joins pool workers).
    pub fn drain(&self) -> Trace {
        let rings = self.shared.rings.lock();
        let mut threads = Vec::with_capacity(rings.len());
        let mut events = Vec::new();
        let mut dropped_events = 0u64;
        for ring in rings.iter() {
            let (raw, dropped) = ring.drain();
            dropped_events += dropped;
            threads.push(ThreadInfo {
                host: ring.host,
                tid: ring.tid,
                name: ring.name.clone(),
                dropped,
            });
            events.extend(raw.iter().filter_map(|r| event::decode(r, ring.host, ring.tid)));
        }
        Trace { threads, events, dropped_events }
    }
}

/// A cloneable handle capturing the current thread's attachment (recorder
/// and host), used to extend tracing onto threads the attached thread
/// spawns — e.g. `cusp-galois` pool workers.
#[derive(Clone)]
pub struct Attachment {
    shared: Arc<Shared>,
    host: u32,
}

impl Attachment {
    /// Attaches the calling thread to the captured recorder under the
    /// captured host.
    pub fn attach(&self, name: &str) -> AttachGuard {
        attach_shared(Arc::clone(&self.shared), self.host, name)
    }

    /// The host id carried by this attachment.
    pub fn host(&self) -> u32 {
        self.host
    }
}

/// Snapshot of the current thread's attachment, if tracing is enabled on
/// this thread. Spawners pass this to their children so worker threads
/// record into the same trace (pool workers inherit the host).
pub fn current() -> Option<Attachment> {
    ACTIVE.with(|a| {
        let p = a.get();
        if p.is_null() {
            return None;
        }
        // SAFETY: non-null only while the owning AttachGuard lives on this
        // thread, so the pointee is valid here.
        let ctx = unsafe { &*p };
        Some(Attachment { shared: Arc::clone(&ctx.shared), host: ctx.host })
    })
}

/// Whether the current thread is attached to a recorder.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.with(|a| !a.get().is_null())
}

/// Keeps the calling thread attached; detaches (restoring any previous
/// attachment) on drop. `!Send` by construction — it must drop on the
/// thread that attached.
pub struct AttachGuard {
    /// Owns the ThreadCtx that ACTIVE points to; never read directly.
    _ctx: Box<ThreadCtx>,
    prev: *const ThreadCtx,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| a.set(self.prev));
    }
}

fn attach_shared(shared: Arc<Shared>, host: u32, name: &str) -> AttachGuard {
    let ring = {
        let mut rings = shared.rings.lock();
        let ring = Arc::new(Ring::new(
            shared.ring_capacity,
            host,
            rings.len() as u32,
            name.to_string(),
        ));
        rings.push(Arc::clone(&ring));
        ring
    };
    let ctx = Box::new(ThreadCtx { ring, epoch: shared.epoch, shared, host });
    let prev = ACTIVE.with(|a| {
        let p = a.get();
        a.set(&*ctx as *const ThreadCtx);
        p
    });
    AttachGuard { _ctx: ctx, prev }
}

#[inline]
fn with_active(f: impl FnOnce(&ThreadCtx)) {
    ACTIVE.with(|a| {
        let p = a.get();
        if !p.is_null() {
            // SAFETY: non-null only while the owning AttachGuard lives on
            // this thread.
            f(unsafe { &*p })
        }
    })
}

/// Opens a span named `name` on the current thread. No-op when detached.
#[inline]
pub fn span_begin(name: &'static str) {
    with_active(|ctx| ctx.ring.push(event::raw_span_begin(ctx.ts(), name, 0)));
}

/// Opens a span carrying a numeric argument (e.g. a chunk index).
#[inline]
pub fn span_begin_arg(name: &'static str, arg: u64) {
    with_active(|ctx| ctx.ring.push(event::raw_span_begin(ctx.ts(), name, arg)));
}

/// Closes the innermost open span of `name` on the current thread.
#[inline]
pub fn span_end(name: &'static str) {
    with_active(|ctx| ctx.ring.push(event::raw_span_end(ctx.ts(), name)));
}

/// Records a point event.
#[inline]
pub fn instant(name: &'static str, arg: u64) {
    with_active(|ctx| ctx.ring.push(event::raw_instant(ctx.ts(), name, arg)));
}

/// Records a counter sample.
#[inline]
pub fn counter(name: &'static str, value: u64) {
    with_active(|ctx| ctx.ring.push(event::raw_counter(ctx.ts(), name, value)));
}

/// Records a message send from the current thread's host. `(host, dst,
/// tag, seq)` must match the receive-side event for the exporter to draw
/// the flow arrow.
#[inline]
pub fn msg_send(dst: u32, tag: u8, seq: u64, bytes: u64, remote: bool) {
    with_active(|ctx| ctx.ring.push(event::raw_msg_send(ctx.ts(), dst, tag, seq, bytes, remote)));
}

/// Records a message delivered to the application on the current thread's
/// host.
#[inline]
pub fn msg_recv(src: u32, tag: u8, seq: u64, bytes: u64) {
    with_active(|ctx| ctx.ring.push(event::raw_msg_recv(ctx.ts(), src, tag, seq, bytes)));
}

/// RAII convenience: records a span begin now and the matching end on drop
/// (both no-ops when the thread is detached).
pub struct SpanGuard {
    name: &'static str,
}

/// Opens `name` and returns a guard closing it on drop.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_begin(name);
    SpanGuard { name }
}

/// Opens `name` carrying a numeric argument (e.g. a server request tag or
/// cache-key hash) and returns a guard closing it on drop.
#[inline]
pub fn span_arg(name: &'static str, arg: u64) -> SpanGuard {
    span_begin_arg(name, arg);
    SpanGuard { name }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        span_end(self.name);
    }
}

/// One attached thread's identity in a drained [`Trace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadInfo {
    /// Simulated host (Chrome-trace process).
    pub host: u32,
    /// Recorder-scoped thread id (Chrome-trace thread).
    pub tid: u32,
    /// Thread track label (e.g. `main`, `worker-1`).
    pub name: String,
    /// Events overwritten on this thread's ring (0 unless it wrapped).
    pub dropped: u64,
}

/// A drained tracing session: thread identities plus all retained events,
/// grouped per thread in record order (each thread's slice is therefore
/// timestamp-monotone).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The attached threads, in attach order (`tid` ascending).
    pub threads: Vec<ThreadInfo>,
    /// All retained events, grouped by thread in record order.
    pub events: Vec<Event>,
    /// Total events lost to ring wrap-around, summed over threads.
    pub dropped_events: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn detached_thread_records_nothing() {
        assert!(!is_active());
        span_begin("x");
        span_end("x");
        msg_send(1, 0, 0, 10, true);
        assert!(current().is_none());
    }

    #[test]
    fn attach_record_drain() {
        let rec = Recorder::new();
        {
            let _g = rec.attach(3, "main");
            assert!(is_active());
            span_begin("phase");
            msg_send(1, 7, 0, 128, true);
            msg_recv(1, 7, 5, 64);
            instant("steal", 2);
            counter("resident", 42);
            span_end("phase");
        }
        assert!(!is_active());
        let trace = rec.drain();
        assert_eq!(trace.threads.len(), 1);
        assert_eq!(trace.threads[0].host, 3);
        assert_eq!(trace.threads[0].name, "main");
        assert_eq!(trace.dropped_events, 0);
        let kinds: Vec<_> = trace.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::SpanBegin { name: "phase", arg: 0 },
                EventKind::MsgSend { dst: 1, tag: 7, seq: 0, bytes: 128, remote: true },
                EventKind::MsgRecv { src: 1, tag: 7, seq: 5, bytes: 64 },
                EventKind::Instant { name: "steal", arg: 2 },
                EventKind::Counter { name: "resident", value: 42 },
                EventKind::SpanEnd { name: "phase" },
            ]
        );
        // Timestamps are monotone within the thread.
        assert!(trace.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn attachment_extends_to_spawned_threads() {
        let rec = Recorder::new();
        let _g = rec.attach(1, "main");
        let att = current().expect("attached");
        assert_eq!(att.host(), 1);
        std::thread::spawn(move || {
            let _wg = att.attach("worker-0");
            span_begin("pool_task");
            span_end("pool_task");
        })
        .join()
        .unwrap();
        let trace = rec.drain();
        assert_eq!(trace.threads.len(), 2);
        let worker = trace.threads.iter().find(|t| t.name == "worker-0").unwrap();
        assert_eq!(worker.host, 1);
        assert!(trace
            .events
            .iter()
            .any(|e| e.tid == worker.tid
                && e.kind == EventKind::SpanBegin { name: "pool_task", arg: 0 }));
    }

    #[test]
    fn concurrent_recorders_stay_separate() {
        let a = Recorder::new();
        let b = Recorder::new();
        let ta = {
            let a = a.clone();
            std::thread::spawn(move || {
                let _g = a.attach(0, "a");
                span_begin("only-a");
                span_end("only-a");
            })
        };
        let tb = {
            let b = b.clone();
            std::thread::spawn(move || {
                let _g = b.attach(0, "b");
                span_begin("only-b");
                span_end("only-b");
            })
        };
        ta.join().unwrap();
        tb.join().unwrap();
        let names = |t: &Trace| {
            t.events
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::SpanBegin { name, .. } => Some(name),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&a.drain()), vec!["only-a"]);
        assert_eq!(names(&b.drain()), vec!["only-b"]);
    }

    #[test]
    fn nested_attach_restores_previous() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        let _og = outer.attach(0, "outer");
        {
            let _ig = inner.attach(9, "inner");
            span_begin("in");
            span_end("in");
        }
        span_begin("out");
        span_end("out");
        assert_eq!(inner.drain().events.len(), 2);
        let outer_trace = outer.drain();
        assert_eq!(outer_trace.events.len(), 2);
        assert!(matches!(
            outer_trace.events[0].kind,
            EventKind::SpanBegin { name: "out", .. }
        ));
    }

    #[test]
    fn span_guard_closes_on_drop() {
        let rec = Recorder::new();
        let _g = rec.attach(0, "main");
        {
            let _s = span("scoped");
        }
        let trace = rec.drain();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[1].kind, EventKind::SpanEnd { name: "scoped" });
    }
}
