//! Per-phase critical-path summary.
//!
//! Folds three inputs into one table:
//!
//! * measured compute time per host, from the phase spans in a drained
//!   [`Trace`];
//! * measured traffic per host and phase ([`PhaseNet`] rows, produced by
//!   the caller from the network layer's `CommStats` — this crate stays a
//!   leaf and never sees `cusp-net` types);
//! * a modeled α–β network cost ([`CostModel`]): per host,
//!   `α · max(msgs_out, msgs_in) + β · max(bytes_out, bytes_in)`.
//!
//! The per-phase *critical path* is the host maximizing compute + modeled
//! network time; the table reports that host's compute/network split so a
//! reader can tell at a glance whether a phase is compute- or
//! communication-bound and which host is the straggler.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::event::EventKind;
use crate::recorder::Trace;

/// One host's measured traffic during one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostNet {
    /// Messages sent to remote hosts.
    pub msgs_out: u64,
    /// Messages received from remote hosts.
    pub msgs_in: u64,
    /// Payload bytes sent to remote hosts.
    pub bytes_out: u64,
    /// Payload bytes received from remote hosts.
    pub bytes_in: u64,
}

/// One phase's measured traffic, per host (index = host id).
#[derive(Clone, Debug, Default)]
pub struct PhaseNet {
    /// Phase name; must match the span name the pipeline records.
    pub name: String,
    /// Per-host traffic, indexed by host id.
    pub hosts: Vec<HostNet>,
}

/// The α–β point-to-point cost model used for the modeled network time
/// (mirrors the simulator's `NetworkModel` without depending on it).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-message latency in seconds.
    pub alpha: f64,
    /// Per-byte transfer time in seconds (1 / bandwidth).
    pub beta: f64,
}

impl CostModel {
    /// Modeled network seconds for one host's phase traffic.
    pub fn host_seconds(&self, net: &HostNet) -> f64 {
        self.alpha * net.msgs_out.max(net.msgs_in) as f64
            + self.beta * net.bytes_out.max(net.bytes_in) as f64
    }
}

/// One host's cost within one phase row.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostCost {
    /// Host id.
    pub host: u32,
    /// Measured compute seconds (sum of this phase's spans on the host).
    pub compute_s: f64,
    /// Modeled α–β network seconds.
    pub net_s: f64,
    /// Measured traffic backing `net_s`.
    pub net: HostNet,
}

impl HostCost {
    /// Compute plus modeled network seconds.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.net_s
    }
}

/// One phase of the summary: per-host costs plus the critical host.
#[derive(Clone, Debug, Default)]
pub struct PhaseRow {
    /// Phase name.
    pub name: String,
    /// Per-host costs, indexed by host id.
    pub hosts: Vec<HostCost>,
    /// Host with the largest compute + modeled network time.
    pub critical_host: u32,
}

impl PhaseRow {
    /// The critical host's cost entry.
    pub fn critical(&self) -> &HostCost {
        &self.hosts[self.critical_host as usize]
    }
}

/// Sums span durations per `(host, name)`, tolerating nested spans of the
/// same name (only the outermost occurrence accumulates).
fn span_seconds(trace: &Trace) -> HashMap<(u32, &'static str), f64> {
    let mut open: HashMap<(u32, u32, &'static str), Vec<u64>> = HashMap::new();
    let mut total: HashMap<(u32, &'static str), f64> = HashMap::new();
    for e in &trace.events {
        match e.kind {
            EventKind::SpanBegin { name, .. } => {
                open.entry((e.host, e.tid, name)).or_default().push(e.ts_ns);
            }
            EventKind::SpanEnd { name } => {
                if let Some(stack) = open.get_mut(&(e.host, e.tid, name)) {
                    if let Some(begin) = stack.pop() {
                        if stack.is_empty() {
                            *total.entry((e.host, name)).or_insert(0.0) +=
                                e.ts_ns.saturating_sub(begin) as f64 * 1e-9;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    total
}

/// Builds the per-phase summary. `phases` supplies the row order and the
/// measured traffic; compute time comes from `trace` spans whose name
/// equals the phase name. Hosts missing from either side default to zero.
pub fn summarize(trace: &Trace, phases: &[PhaseNet], model: CostModel) -> Vec<PhaseRow> {
    let compute = span_seconds(trace);
    let trace_hosts = trace.threads.iter().map(|t| t.host + 1).max().unwrap_or(0);
    phases
        .iter()
        .map(|phase| {
            let n_hosts = (phase.hosts.len() as u32).max(trace_hosts);
            let mut hosts = Vec::with_capacity(n_hosts as usize);
            for h in 0..n_hosts {
                let net = phase.hosts.get(h as usize).copied().unwrap_or_default();
                // Phase names are recorded from 'static pipeline constants;
                // match by value.
                let compute_s = compute
                    .iter()
                    .find(|((ch, cn), _)| *ch == h && *cn == phase.name)
                    .map(|(_, s)| *s)
                    .unwrap_or(0.0);
                hosts.push(HostCost {
                    host: h,
                    compute_s,
                    net_s: model.host_seconds(&net),
                    net,
                });
            }
            let critical_host = hosts
                .iter()
                .max_by(|a, b| a.total_s().total_cmp(&b.total_s()))
                .map(|h| h.host)
                .unwrap_or(0);
            PhaseRow { name: phase.name.clone(), hosts, critical_host }
        })
        .collect()
}

fn fmt_bytes(b: u64) -> String {
    if b >= 10 * 1024 * 1024 {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 10 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

/// Renders the summary as an aligned text table. The critical host of each
/// phase is starred; the trailing line per phase gives its compute vs.
/// modeled-network split.
pub fn render(rows: &[PhaseRow], model: CostModel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "per-phase critical path (alpha={:.1}us/msg, beta={:.3}ns/B)",
        model.alpha * 1e6,
        model.beta * 1e9
    );
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>11} {:>9} {:>9} {:>10} {:>10} {:>11} {:>11}",
        "phase", "host", "compute_ms", "msgs_out", "msgs_in", "bytes_out", "bytes_in", "net_ms",
        "total_ms"
    );
    for row in rows {
        for h in &row.hosts {
            let star = if h.host == row.critical_host { "*" } else { " " };
            let _ = writeln!(
                out,
                "{:<12} {:>4}{} {:>11.3} {:>9} {:>9} {:>10} {:>10} {:>11.3} {:>11.3}",
                row.name,
                h.host,
                star,
                h.compute_s * 1e3,
                h.net.msgs_out,
                h.net.msgs_in,
                fmt_bytes(h.net.bytes_out),
                fmt_bytes(h.net.bytes_in),
                h.net_s * 1e3,
                h.total_s() * 1e3,
            );
        }
        let c = row.critical();
        let _ = writeln!(
            out,
            "  -> {}: critical host {} = {:.3} ms compute + {:.3} ms modeled network",
            row.name,
            c.host,
            c.compute_s * 1e3,
            c.net_s * 1e3
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn traced_two_hosts() -> Trace {
        let rec = Recorder::new();
        for h in 0..2u32 {
            let _g = rec.attach(h, "main");
            crate::span_begin("read");
            std::thread::sleep(std::time::Duration::from_millis(2 * (h as u64 + 1)));
            crate::span_end("read");
        }
        rec.drain()
    }

    #[test]
    fn critical_host_is_slowest_total() {
        let trace = traced_two_hosts();
        let phases = vec![PhaseNet {
            name: "read".into(),
            hosts: vec![
                HostNet { msgs_out: 10, msgs_in: 10, bytes_out: 1000, bytes_in: 1000 },
                HostNet { msgs_out: 1, msgs_in: 1, bytes_out: 10, bytes_in: 10 },
            ],
        }];
        let model = CostModel { alpha: 20e-6, beta: 1.0 / 10e9 };
        let rows = summarize(&trace, &phases, model);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].hosts.len(), 2);
        // Host 1 slept 2x longer; tiny modeled net can't flip it.
        assert_eq!(rows[0].critical_host, 1);
        assert!(rows[0].hosts[0].compute_s > 0.0);
        assert!(rows[0].hosts[1].compute_s > rows[0].hosts[0].compute_s);
        assert!(rows[0].hosts[0].net_s > rows[0].hosts[1].net_s);
    }

    #[test]
    fn model_uses_max_of_in_out() {
        let model = CostModel { alpha: 1.0, beta: 0.0 };
        let s = model.host_seconds(&HostNet { msgs_out: 3, msgs_in: 7, ..Default::default() });
        assert_eq!(s, 7.0);
    }

    #[test]
    fn render_marks_critical_and_mentions_split() {
        let trace = traced_two_hosts();
        let phases = vec![PhaseNet { name: "read".into(), hosts: vec![HostNet::default(); 2] }];
        let model = CostModel { alpha: 20e-6, beta: 1e-10 };
        let rows = summarize(&trace, &phases, model);
        let text = render(&rows, model);
        assert!(text.contains("read"));
        assert!(text.contains("critical host"));
        assert!(text.contains('*'));
    }

    #[test]
    fn missing_phase_span_defaults_to_zero_compute() {
        let rec = Recorder::new();
        let _g = rec.attach(0, "main");
        drop(_g);
        let trace = rec.drain();
        let phases = vec![PhaseNet {
            name: "master".into(),
            hosts: vec![HostNet { msgs_out: 5, msgs_in: 5, bytes_out: 500, bytes_in: 500 }],
        }];
        let model = CostModel { alpha: 1e-6, beta: 1e-9 };
        let rows = summarize(&trace, &phases, model);
        assert_eq!(rows[0].hosts[0].compute_s, 0.0);
        assert!(rows[0].hosts[0].net_s > 0.0);
    }
}
