//! Failure-injection and stress tests for the simulated cluster: the
//! substrate must fail loudly (never hang, never corrupt) under host
//! panics, malformed payloads, tag interleavings, and heavy concurrency.

use bytes::Bytes;

use cusp_net::{all_reduce_u64, Cluster, ReduceOp, Tag, WireReader, WireWriter};

#[test]
fn panic_during_collective_does_not_hang() {
    let res = std::panic::catch_unwind(|| {
        Cluster::run(4, |comm| {
            if comm.host() == 2 {
                panic!("dies before joining the collective");
            }
            // Peers block inside the collective; the poison must free them.
            all_reduce_u64(comm, ReduceOp::Sum, 1)
        });
    });
    assert!(res.is_err());
}

#[test]
fn panic_at_barrier_does_not_hang() {
    let res = std::panic::catch_unwind(|| {
        Cluster::run(3, |comm| {
            if comm.host() == 0 {
                panic!("dies before the barrier");
            }
            comm.barrier();
        });
    });
    assert!(res.is_err());
}

#[test]
fn malformed_payload_fails_loudly_not_silently() {
    let res = std::panic::catch_unwind(|| {
        Cluster::run(2, |comm| {
            if comm.host() == 0 {
                // Claims a 1000-element vector but sends 4 bytes.
                let mut w = WireWriter::new();
                w.put_u64(1000);
                w.put_u32(1);
                comm.send_bytes(1, Tag(0), w.finish());
                0
            } else {
                let (_s, payload) = comm.recv_any(Tag(0));
                let mut r = WireReader::new(payload);
                r.get_u64_vec().expect("must underrun") .len()
            }
        });
    });
    assert!(res.is_err(), "truncated payload must be detected");
}

#[test]
fn truncated_bulk_run_fails_loudly_not_silently() {
    // Regression for the bulk decode paths (get_u32_into / skip): a header
    // that claims more elements than the payload carries must surface as an
    // error on the receiver, never an over-read.
    let res = std::panic::catch_unwind(|| {
        Cluster::run(2, |comm| {
            if comm.host() == 0 {
                let mut w = WireWriter::new();
                w.put_u32(10); // claims a 10-element raw run
                w.put_u32_raw_slice(&[1, 2]); // provides 2
                comm.send_bytes(1, Tag(0), w.finish());
                0
            } else {
                let (_s, payload) = comm.recv_any(Tag(0));
                let mut r = WireReader::new(payload);
                let n = r.get_u32().unwrap() as usize;
                let mut dst = vec![0u32; n];
                r.get_u32_into(&mut dst).expect("must underrun");
                dst.len()
            }
        });
    });
    assert!(res.is_err(), "truncated bulk run must be detected");
}

#[test]
fn truncated_skip_fails_loudly_not_silently() {
    let res = std::panic::catch_unwind(|| {
        Cluster::run(2, |comm| {
            if comm.host() == 0 {
                let mut w = WireWriter::new();
                w.put_u32(100); // record claims 100 u32s follow
                w.put_u32_raw_slice(&[7; 3]);
                comm.send_bytes(1, Tag(0), w.finish());
                0
            } else {
                let (_s, payload) = comm.recv_any(Tag(0));
                let mut r = WireReader::new(payload);
                let n = r.get_u32().unwrap() as usize;
                // Skip-scanning a truncated record must error, not advance
                // past the end of the buffer.
                r.skip(n * 4).expect("must underrun");
                0
            }
        });
    });
    assert!(res.is_err(), "truncated skip must be detected");
}

#[test]
fn heavy_concurrent_send_recv_is_lossless() {
    const N: u64 = 2_000;
    let out = Cluster::run(6, |comm| {
        let me = comm.host();
        let k = comm.num_hosts();
        // Everyone floods everyone (including late receivers).
        for round in 0..N {
            let mut w = WireWriter::new();
            w.put_u64(me as u64 * N + round);
            comm.send_bytes((me + 1 + (round as usize % (k - 1))) % k, Tag(3), w.finish());
        }
        // Everyone receives exactly N messages (each host sends N, spread
        // uniformly over peers — with 6 hosts each sends 400 to each of 5
        // peers, so each receives 400 × 5 = N).
        let mut sum = 0u64;
        for _ in 0..N {
            let (_s, payload) = comm.recv_any(Tag(3));
            sum = sum.wrapping_add(WireReader::new(payload).get_u64().unwrap());
        }
        sum
    });
    // Conservation: the grand total of received values equals the grand
    // total of sent values.
    let total_received: u64 = out.results.iter().fold(0u64, |a, &b| a.wrapping_add(b));
    let total_sent: u64 = (0..6u64).fold(0u64, |a, me| {
        (0..N).fold(a, |a, r| a.wrapping_add(me * N + r))
    });
    assert_eq!(total_received, total_sent);
}

#[test]
fn interleaved_tags_with_buffered_recv_from() {
    // A host reads tag A from a specific peer while tag-B and other-peer
    // traffic piles up; nothing may be lost or misdelivered.
    let out = Cluster::run(3, |comm| {
        let me = comm.host();
        match me {
            0 => {
                for i in 0..50u64 {
                    let mut w = WireWriter::new();
                    w.put_u64(i);
                    comm.send_bytes(2, Tag(1), w.finish());
                    let mut w = WireWriter::new();
                    w.put_u64(1000 + i);
                    comm.send_bytes(2, Tag(2), w.finish());
                }
                0
            }
            1 => {
                for i in 0..50u64 {
                    let mut w = WireWriter::new();
                    w.put_u64(2000 + i);
                    comm.send_bytes(2, Tag(1), w.finish());
                }
                0
            }
            _ => {
                let mut sum = 0u64;
                // Drain host 1's tag-1 stream first (buffers host 0's).
                for _ in 0..50 {
                    let p = comm.recv_from(1, Tag(1));
                    sum += WireReader::new(p).get_u64().unwrap();
                }
                // Then host 0's tag-2, then host 0's tag-1.
                for _ in 0..50 {
                    let p = comm.recv_from(0, Tag(2));
                    sum += WireReader::new(p).get_u64().unwrap();
                }
                for _ in 0..50 {
                    let p = comm.recv_from(0, Tag(1));
                    sum += WireReader::new(p).get_u64().unwrap();
                }
                sum
            }
        }
    });
    let expect: u64 = (0..50).sum::<u64>() // host 0, tag 1
        + (0..50).map(|i| 1000 + i).sum::<u64>()
        + (0..50).map(|i| 2000 + i).sum::<u64>();
    assert_eq!(out.results[2], expect);
}

#[test]
fn zero_byte_messages_are_delivered() {
    let out = Cluster::run(2, |comm| {
        if comm.host() == 0 {
            comm.send_bytes(1, Tag(0), Bytes::new());
            0
        } else {
            let (_s, p) = comm.recv_any(Tag(0));
            p.len()
        }
    });
    assert_eq!(out.results[1], 0);
}

#[test]
fn stats_survive_heavy_phase_switching() {
    let out = Cluster::run(4, |comm| {
        for phase in 0..20 {
            comm.set_phase(&format!("phase-{phase}"));
            let next = (comm.host() + 1) % comm.num_hosts();
            comm.send_bytes(next, Tag(0), Bytes::from(vec![0u8; phase + 1]));
            comm.recv_any(Tag(0));
            comm.barrier();
        }
    });
    for phase in 0..20usize {
        let p = out.stats.phase(&format!("phase-{phase}")).unwrap();
        assert_eq!(p.total_messages(), 4);
        assert_eq!(p.total_bytes(), 4 * (phase as u64 + 1));
    }
}
