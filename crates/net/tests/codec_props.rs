//! Property-based tests for the bulk wire codec: the memcpy slice ops must
//! be byte-identical to per-element encoding, round-trip losslessly at any
//! alignment, and fail cleanly (without consuming input) on underruns.

use proptest::prelude::*;

use cusp_net::{WireReader, WireWriter};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        ..ProptestConfig::default()
    })]

    /// Raw u32 runs encode exactly like per-element writes and decode back,
    /// even when a leading u8 puts the run at an odd byte offset.
    #[test]
    fn u32_raw_slice_is_byte_identical_and_roundtrips(
        vs in proptest::collection::vec(any::<u32>(), 0..300),
        lead in any::<u8>(),
        misalign in any::<bool>(),
    ) {
        let mut bulk = WireWriter::new();
        let mut scalar = WireWriter::new();
        if misalign {
            bulk.put_u8(lead);
            scalar.put_u8(lead);
        }
        bulk.put_u32_raw_slice(&vs);
        for &v in &vs {
            scalar.put_u32(v);
        }
        let bulk = bulk.finish();
        prop_assert_eq!(&*bulk, &*scalar.finish());

        let mut r = WireReader::new(bulk);
        if misalign {
            prop_assert_eq!(r.get_u8().unwrap(), lead);
        }
        let mut back = vec![0u32; vs.len()];
        r.get_u32_into(&mut back).unwrap();
        prop_assert_eq!(back, vs);
        prop_assert!(r.is_exhausted());
    }

    /// Length-prefixed u64 slices round-trip through the bulk path.
    #[test]
    fn u64_slice_roundtrips(
        vs in proptest::collection::vec(any::<u64>(), 0..200),
        misalign in any::<bool>(),
    ) {
        let mut w = WireWriter::new();
        if misalign {
            w.put_u8(0xA5);
        }
        w.put_u64_slice(&vs);
        let mut r = WireReader::new(w.finish());
        if misalign {
            r.get_u8().unwrap();
        }
        prop_assert_eq!(r.get_u64_vec().unwrap(), vs);
        prop_assert!(r.is_exhausted());
    }

    /// skip() lands exactly where element-wise reads would.
    #[test]
    fn skip_matches_elementwise_reads(
        vs in proptest::collection::vec(any::<u32>(), 1..200),
        sentinel in any::<u64>(),
    ) {
        let mut w = WireWriter::new();
        w.put_u32_raw_slice(&vs);
        w.put_u64(sentinel);
        let payload = w.finish();

        let mut skipper = WireReader::new(payload.clone());
        skipper.skip(vs.len() * 4).unwrap();
        let mut stepper = WireReader::new(payload);
        for _ in 0..vs.len() {
            stepper.get_u32().unwrap();
        }
        prop_assert_eq!(skipper.remaining(), stepper.remaining());
        prop_assert_eq!(skipper.get_u64().unwrap(), sentinel);
        prop_assert!(skipper.is_exhausted());
    }

    /// Underruns error out without consuming anything: the reader can still
    /// decode what is actually there.
    #[test]
    fn underrun_consumes_nothing(
        vs in proptest::collection::vec(any::<u32>(), 0..50),
        extra in 1usize..20,
    ) {
        let mut w = WireWriter::new();
        w.put_u32_raw_slice(&vs);
        let mut r = WireReader::new(w.finish());

        let mut too_big = vec![0u32; vs.len() + extra];
        let err = r.get_u32_into(&mut too_big).unwrap_err();
        prop_assert_eq!(err.needed, (vs.len() + extra) * 4);
        prop_assert_eq!(err.available, vs.len() * 4);
        prop_assert_eq!(r.remaining(), vs.len() * 4);
        prop_assert!(r.skip(vs.len() * 4 + 1).is_err());

        let mut back = vec![0u32; vs.len()];
        r.get_u32_into(&mut back).unwrap();
        prop_assert_eq!(back, vs);
    }
}
