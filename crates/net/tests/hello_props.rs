//! Property battery for the extended HELLO / rejoin handshake codec.
//!
//! The HELLO frame is the only thing a transport will parse from an
//! unauthenticated stranger, so its decoder must be total: any byte
//! string — truncated, bit-flipped, or outright garbage — must come back
//! as a typed [`RejectReason`], never a panic, and the field checks must
//! fire in a fixed order so a corrupt frame is diagnosed by its first
//! broken field. The rejoin admission rule (strictly newer incarnation)
//! rides on top and is pinned here too.

use proptest::prelude::*;

use cusp_net::transport::tcp::hello_codec::{
    admit_incarnation, encode_hello, parse_hello, HELLO_LEN, HOSTS_RANGE, HOST_ID_RANGE,
    INCARNATION_RANGE, MAGIC_RANGE, NONCE_RANGE, VERSION_RANGE,
};
use cusp_net::RejectReason;

/// A cluster shape and a sender/receiver pair within it.
fn cluster() -> impl Strategy<Value = (usize, usize, usize)> {
    (2usize..65).prop_flat_map(|hosts| {
        // receiver = sender + (1..hosts) mod hosts: distinct by construction.
        (Just(hosts), 0..hosts, 1..hosts)
            .prop_map(|(hosts, s, off)| (hosts, s, (s + off) % hosts))
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 192,
        ..ProptestConfig::default()
    })]

    /// A well-formed HELLO is exactly [`HELLO_LEN`] bytes and parses back
    /// to the claimed (sender, incarnation) at any receiver of the same
    /// run.
    #[test]
    fn valid_hello_roundtrips(
        (hosts, sender, receiver) in cluster(),
        nonce in any::<u64>(),
        inc in any::<u32>(),
    ) {
        let body = encode_hello(sender, hosts, nonce, inc);
        prop_assert_eq!(body.len(), HELLO_LEN);
        prop_assert_eq!(
            parse_hello(&body, receiver, hosts, nonce),
            Ok((sender, inc))
        );
    }

    /// Every strict prefix of a valid HELLO is rejected with a typed
    /// reason — the decoder never reads past the end, never panics, and
    /// blames the first field the truncation cut into.
    #[test]
    fn truncation_is_typed_rejection(
        (hosts, sender, receiver) in cluster(),
        nonce in any::<u64>(),
        inc in any::<u32>(),
        cut in 0..HELLO_LEN,
    ) {
        let body = encode_hello(sender, hosts, nonce, inc);
        let got = parse_hello(&body[..cut], receiver, hosts, nonce);
        let expected = if cut < MAGIC_RANGE.end {
            RejectReason::BadMagic
        } else if cut < VERSION_RANGE.end {
            RejectReason::BadVersion
        } else if cut < HOSTS_RANGE.end {
            // host_id and hosts truncations both classify as shape errors;
            // the decoder reads host_id first.
            if cut < HOST_ID_RANGE.end { RejectReason::BadHostId } else { RejectReason::BadHosts }
        } else if cut < NONCE_RANGE.end {
            RejectReason::BadNonce
        } else {
            // incarnation cut off
            RejectReason::BadHostId
        };
        prop_assert_eq!(got, Err(expected));
    }

    /// Arbitrary garbage never panics and never parses as a peer of this
    /// run unless it actually is one: any `Ok` must name an in-range,
    /// non-self host — the acceptor trusts nothing else about it.
    #[test]
    fn garbage_never_panics_and_never_impersonates(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        (hosts, _, receiver) in cluster(),
        nonce in any::<u64>(),
    ) {
        if let Ok((claimed, _inc)) = parse_hello(&bytes, receiver, hosts, nonce) {
            prop_assert!(claimed < hosts && claimed != receiver);
        }
    }

    /// A single flipped bit is either survivable (it landed in host_id or
    /// incarnation and still names a legal peer) or a typed rejection
    /// blaming exactly the field it landed in. It is never a panic, and
    /// never an `Ok` that misreports nonce-, shape-, or version-agreement.
    #[test]
    fn single_bit_flip_is_classified_by_field(
        (hosts, sender, receiver) in cluster(),
        nonce in any::<u64>(),
        inc in any::<u32>(),
        bit in 0..(HELLO_LEN * 8),
    ) {
        let mut body = encode_hello(sender, hosts, nonce, inc);
        body[bit / 8] ^= 1 << (bit % 8);
        let got = parse_hello(&body, receiver, hosts, nonce);
        let byte = bit / 8;
        if MAGIC_RANGE.contains(&byte) {
            prop_assert_eq!(got, Err(RejectReason::BadMagic));
        } else if VERSION_RANGE.contains(&byte) {
            prop_assert_eq!(got, Err(RejectReason::BadVersion));
        } else if HOSTS_RANGE.contains(&byte) {
            prop_assert_eq!(got, Err(RejectReason::BadHosts));
        } else if NONCE_RANGE.contains(&byte) {
            prop_assert_eq!(got, Err(RejectReason::BadNonce));
        } else if HOST_ID_RANGE.contains(&byte) {
            // The flipped id may still be a legal foreign peer; if so the
            // parse succeeds with that id (slot policy catches liars
            // later). Out-of-range or self ids must be typed rejections.
            match got {
                Ok((claimed, got_inc)) => {
                    prop_assert!(claimed < hosts && claimed != receiver);
                    prop_assert_ne!(claimed, sender);
                    prop_assert_eq!(got_inc, inc);
                }
                Err(reason) => prop_assert_eq!(reason, RejectReason::BadHostId),
            }
        } else {
            // Incarnation bits carry no validity constraint at parse time.
            let flipped_inc = inc ^ (1u32 << (bit - INCARNATION_RANGE.start * 8));
            prop_assert_eq!(got, Ok((sender, flipped_inc)));
        }
    }

    /// A HELLO from a different run (any nonce but ours) is always
    /// [`RejectReason::BadNonce`] — stale workers from a previous launch
    /// can never splice into a live mesh.
    #[test]
    fn wrong_nonce_is_always_rejected(
        (hosts, sender, receiver) in cluster(),
        nonce in any::<u64>(),
        other in any::<u64>(),
        inc in any::<u32>(),
    ) {
        prop_assume!(other != nonce);
        let body = encode_hello(sender, hosts, other, inc);
        prop_assert_eq!(
            parse_hello(&body, receiver, hosts, nonce),
            Err(RejectReason::BadNonce)
        );
    }

    /// A HELLO disagreeing about the cluster size is always
    /// [`RejectReason::BadHosts`], even when every other field matches.
    #[test]
    fn wrong_cluster_size_is_always_rejected(
        (hosts, sender, receiver) in cluster(),
        other_hosts in 0usize..1024,
        nonce in any::<u64>(),
        inc in any::<u32>(),
    ) {
        prop_assume!(other_hosts != hosts);
        let body = encode_hello(sender, other_hosts, nonce, inc);
        prop_assert_eq!(
            parse_hello(&body, receiver, hosts, nonce),
            Err(RejectReason::BadHosts)
        );
    }

    /// The rejoin admission rule: a claimed incarnation supersedes the
    /// last admitted one iff it is strictly newer. Equal (a duplicate of
    /// the live worker) and older (a zombie from a previous generation)
    /// both classify as [`RejectReason::StaleIncarnation`].
    #[test]
    fn rejoin_admission_is_strictly_monotone(
        claimed in any::<u32>(),
        last in any::<u32>(),
    ) {
        let got = admit_incarnation(claimed, last);
        if claimed > last {
            prop_assert_eq!(got, Ok(()));
        } else {
            prop_assert_eq!(got, Err(RejectReason::StaleIncarnation));
        }
    }
}
