//! Behavior-level battery for the TCP transport: the same SPMD functions
//! run over real sockets (every "host" here is a thread owning its own
//! fabric + TcpTransport, exactly like a worker process would) and must be
//! indistinguishable from the in-process simulator above the transport
//! line — same results, same per-phase conservation, same fault-injection
//! decisions, and typed `HostLost` instead of hangs when a peer dies.

use std::net::TcpListener;
use std::time::Duration;

use bytes::Bytes;
use cusp_net::{
    Cluster, ClusterError, ClusterOptions, Comm, FaultPlan, Tag, TcpOptions, TcpRunOutput,
    TcpTransport,
};

fn test_opts() -> TcpOptions {
    TcpOptions {
        dial_timeout: Duration::from_secs(10),
        accept_timeout: Duration::from_secs(10),
        ..TcpOptions::default()
    }
}

/// Establishes a full `n`-host mesh over loopback, all endpoints in this
/// process. Mirrors what `cusp-part launch` does across processes.
fn mesh(n: usize, nonce: u64) -> Vec<TcpTransport> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let peers: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect();
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            let peers = peers.clone();
            std::thread::spawn(move || {
                TcpTransport::establish(i, l, &peers, nonce, test_opts()).expect("establish")
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().expect("no panic")).collect()
}

/// Runs `f` SPMD over a TCP mesh, one thread per host, and collects each
/// host's output.
fn run_tcp<R, F>(n: usize, opts: ClusterOptions, f: F) -> Vec<Result<TcpRunOutput<R>, ClusterError>>
where
    R: Send + 'static,
    F: Fn(&Comm) -> R + Clone + Send + 'static,
{
    let handles: Vec<_> = mesh(n, 0xC0FFEE)
        .into_iter()
        .map(|t| {
            let f = f.clone();
            std::thread::spawn(move || Cluster::try_run_tcp(t, opts, |comm| f(comm)))
        })
        .collect();
    handles.into_iter().map(|h| h.join().expect("host thread panicked")).collect()
}

#[test]
fn ring_exchange_over_tcp_matches_simulator() {
    let app = |comm: &Comm| {
        comm.set_phase("ring");
        let me = comm.host();
        let k = comm.num_hosts();
        let mut w = cusp_net::WireWriter::new();
        w.put_u64(me as u64 * 100);
        comm.send_bytes((me + 1) % k, Tag(1), w.finish());
        let data = comm.recv_from((me + k - 1) % k, Tag(1));
        comm.barrier();
        cusp_net::WireReader::new(data).get_u64().unwrap()
    };
    let sim = Cluster::run(4, app);
    let tcp = run_tcp(4, ClusterOptions::default(), app);
    let tcp: Vec<_> = tcp.into_iter().map(|r| r.expect("clean run")).collect();
    let results: Vec<u64> = tcp.iter().map(|o| o.result).collect();
    assert_eq!(results, sim.results);

    // Conservation across the merged matrices: each sender's send cells
    // must equal the corresponding receiver's recv cells, exactly as the
    // simulator's single shared collector guarantees.
    let sim_phase = sim.stats.phase("ring").unwrap();
    for src in 0..4 {
        for dst in 0..4 {
            let sent = tcp[src].stats.phase("ring").unwrap().bytes_between(src, dst);
            let recvd = tcp[dst].stats.phase("ring").unwrap().recv_bytes_between(src, dst);
            assert_eq!(sent, recvd, "conservation {src}->{dst}");
            assert_eq!(sent, sim_phase.bytes_between(src, dst), "sim equality {src}->{dst}");
        }
    }
}

#[test]
fn self_sends_stay_uncounted_over_tcp() {
    // The loopback path now rides the wire codec; the accounting contract
    // (self-sends are not network traffic) must be unchanged.
    let out = run_tcp(2, ClusterOptions::default(), |comm| {
        comm.set_phase("only");
        comm.send_bytes(comm.host(), Tag(0), Bytes::from(vec![1u8; 64]));
        let (src, b) = comm.recv_any(Tag(0));
        comm.barrier();
        (src, b.len())
    });
    for (h, r) in out.into_iter().enumerate() {
        let o = r.expect("clean run");
        assert_eq!(o.result, (h, 64));
        assert_eq!(o.stats.phase("only").unwrap().total_bytes(), 0);
    }
}

#[test]
fn barriers_deliver_all_prior_traffic_over_tcp() {
    // The simulator guarantees that traffic sent before a barrier is in
    // the destination mailboxes once the barrier releases; per-connection
    // FIFO ordering of BARRIER frames must preserve that over TCP.
    let out = run_tcp(3, ClusterOptions::default(), |comm| {
        comm.set_phase("burst");
        let me = comm.host();
        let k = comm.num_hosts();
        for peer in (0..k).filter(|&p| p != me) {
            for i in 0..20u64 {
                let mut w = cusp_net::WireWriter::new();
                w.put_u64(me as u64 * 1000 + i);
                comm.send_bytes(peer, Tag(2), w.finish());
            }
        }
        comm.barrier();
        // After the barrier, everything is already here: non-blocking
        // receives must drain all 40 messages without ever waiting.
        let mut got = 0;
        while comm.try_recv_any(Tag(2)).is_some() {
            got += 1;
        }
        comm.barrier();
        got
    });
    for r in out {
        assert_eq!(r.expect("clean run").result, 40);
    }
}

#[test]
fn seeded_faults_decide_identically_over_tcp() {
    // chaos plan: delays/duplicates/drops keyed by (seed, src, dst, tag,
    // seq). Over TCP the receiver's reader thread evaluates the decisions;
    // over the simulator the sender side does. Same pure function, same
    // channels, same sequences → the per-message outcomes and the summed
    // fault counters must match exactly.
    let app = |comm: &Comm| {
        comm.set_phase("chaos");
        let me = comm.host();
        let k = comm.num_hosts();
        for peer in (0..k).filter(|&p| p != me) {
            for i in 0..30u64 {
                let mut w = cusp_net::WireWriter::new();
                w.put_u64(me as u64 * 1_000 + i);
                comm.send_bytes(peer, Tag(0), w.finish());
            }
        }
        let mut sum = 0u64;
        for _ in 0..(k - 1) * 30 {
            let (_src, b) = comm.recv_any(Tag(0));
            sum += cusp_net::WireReader::new(b).get_u64().unwrap();
        }
        comm.barrier();
        sum
    };
    let opts = ClusterOptions { fault: Some(FaultPlan::chaos(5)), ..ClusterOptions::default() };
    let sim = Cluster::run_with(3, opts, app);
    let tcp: Vec<_> = run_tcp(3, opts, app)
        .into_iter()
        .map(|r| r.expect("clean run"))
        .collect();

    // FIFO + resequencer dedup give byte-identical application results.
    assert_eq!(tcp.iter().map(|o| o.result).collect::<Vec<_>>(), sim.results);

    // The injected-fault counters, summed over every host's receive side,
    // equal the simulator's single global report.
    let sim_faults = sim.faults.expect("fault plan armed");
    let (mut delayed, mut duplicated, mut dropped) = (0, 0, 0);
    for o in &tcp {
        let f = o.faults.as_ref().expect("fault plan armed");
        delayed += f.delayed;
        duplicated += f.duplicated;
        dropped += f.dropped_attempts;
    }
    assert_eq!(delayed, sim_faults.delayed);
    assert_eq!(duplicated, sim_faults.duplicated);
    assert_eq!(dropped, sim_faults.dropped_attempts);
    assert!(delayed + duplicated + dropped > 0, "chaos(5) must actually inject");
}

#[test]
fn peer_panic_over_tcp_is_host_lost_for_survivors() {
    let transports = mesh(3, 0xDEAD);
    let handles: Vec<_> = transports
        .into_iter()
        .map(|t| {
            std::thread::spawn(move || {
                let me = t.host();
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    Cluster::try_run_tcp(t, ClusterOptions::default(), |comm| {
                        comm.set_phase("doomed");
                        if comm.host() == 1 {
                            panic!("deliberate failure on host 1");
                        }
                        // Survivors block on traffic that never comes; the
                        // transport must unwind them instead of hanging.
                        comm.recv_any(Tag(0));
                    })
                }));
                (me, run)
            })
        })
        .collect();
    for h in handles {
        let (me, run) = h.join().expect("test thread panicked");
        match me {
            1 => assert!(run.is_err(), "host 1's own panic propagates"),
            _ => {
                let res = run.expect("survivors do not panic");
                match res {
                    Err(ClusterError::HostLost { host: 1, restarts: 0 }) => {}
                    Err(e) => panic!("host {me}: wanted HostLost for host 1, got {e}"),
                    Ok(_) => panic!("host {me} must not complete"),
                }
            }
        }
    }
}

#[test]
fn clean_fin_teardown_loses_nothing() {
    // Host 0 floods and finishes immediately; host 1 consumes slowly.
    // FIN + the drain window must hand host 1 every message even though
    // host 0's function returned long before host 1 read them.
    const N: u64 = 500;
    let out = run_tcp(2, ClusterOptions::default(), |comm| {
        comm.set_phase("flood");
        if comm.host() == 0 {
            for i in 0..N {
                let mut w = cusp_net::WireWriter::new();
                w.put_u64(i);
                comm.send_bytes(1, Tag(3), w.finish());
            }
            0 // returns without any closing barrier
        } else {
            let mut sum = 0u64;
            for _ in 0..N {
                let (_s, b) = comm.recv_any(Tag(3));
                sum += cusp_net::WireReader::new(b).get_u64().unwrap();
            }
            sum
        }
    });
    let results: Vec<u64> = out.into_iter().map(|r| r.expect("clean run").result).collect();
    assert_eq!(results, vec![0, N * (N - 1) / 2]);
}
