//! Chaos tests: the fabric under a seeded [`FaultPlan`] must stay
//! transparent to the application — FIFO order restored, duplicates
//! dropped, nothing lost — while the fault counters prove the chaos
//! actually fired, and everything replays deterministically per seed.

use bytes::Bytes;

use cusp_net::{
    all_gather_bytes, all_reduce_u64, Cluster, ClusterOptions, FaultPlan, ReduceOp, Tag,
    WireReader, WireWriter,
};

fn chaos_opts(seed: u64) -> ClusterOptions {
    ClusterOptions {
        fault: Some(FaultPlan::chaos(seed)),
        ..ClusterOptions::default()
    }
}

/// The environment seed for chaos runs (set by the CI chaos job), or a
/// fixed default.
fn env_seed() -> u64 {
    std::env::var("CUSP_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

#[test]
fn fifo_restored_under_chaos() {
    let out = Cluster::run_with(2, chaos_opts(env_seed()), |comm| {
        if comm.host() == 0 {
            for i in 0..500u64 {
                let mut w = WireWriter::new();
                w.put_u64(i);
                comm.send_bytes(1, Tag(0), w.finish());
            }
            Vec::new()
        } else {
            (0..500)
                .map(|_| {
                    let (_s, b) = comm.recv_any(Tag(0));
                    WireReader::new(b).get_u64().unwrap()
                })
                .collect()
        }
    });
    assert_eq!(out.results[1], (0..500).collect::<Vec<u64>>());
    let report = out.faults.expect("fault plan was active");
    assert!(report.total() > 0, "chaos plan should have injected faults: {report:?}");
    assert!(report.delayed > 0, "expected delays: {report:?}");
    assert!(report.duplicated > 0, "expected duplicates: {report:?}");
    assert!(report.dropped_attempts > 0, "expected drops: {report:?}");
}

#[test]
fn all_to_all_lossless_under_chaos() {
    const N: u64 = 300;
    let out = Cluster::run_with(4, chaos_opts(env_seed() ^ 1), |comm| {
        let me = comm.host();
        let k = comm.num_hosts();
        for i in 0..N {
            for peer in 0..k {
                if peer != me {
                    let mut w = WireWriter::new();
                    w.put_u64(me as u64 * 1_000_000 + i);
                    comm.send_bytes(peer, Tag(5), w.finish());
                }
            }
        }
        // Each host receives exactly N messages from each peer, in order.
        let mut per_src = vec![Vec::new(); k];
        for _ in 0..N as usize * (k - 1) {
            let (s, b) = comm.recv_any(Tag(5));
            per_src[s].push(WireReader::new(b).get_u64().unwrap());
        }
        per_src
    });
    for (me, per_src) in out.results.iter().enumerate() {
        for (s, vals) in per_src.iter().enumerate() {
            if s == me {
                continue;
            }
            let expect: Vec<u64> = (0..N).map(|i| s as u64 * 1_000_000 + i).collect();
            assert_eq!(vals, &expect, "host {me} saw corrupted stream from {s}");
        }
    }
    assert!(out.faults.unwrap().total() > 0);
}

#[test]
fn collectives_correct_under_chaos() {
    let out = Cluster::run_with(8, chaos_opts(env_seed() ^ 2), |comm| {
        let sum = all_reduce_u64(comm, ReduceOp::Sum, comm.host() as u64 + 1);
        let blobs = all_gather_bytes(comm, Bytes::from(vec![comm.host() as u8; 3]));
        comm.barrier();
        (sum, blobs.len(), blobs.iter().map(|b| b[0] as usize).sum::<usize>())
    });
    for r in &out.results {
        assert_eq!(*r, (36, 8, 28));
    }
}

#[test]
fn same_seed_replays_identical_stats() {
    let workload = |comm: &cusp_net::Comm| {
        comm.set_phase("flood");
        let me = comm.host();
        let k = comm.num_hosts();
        for i in 0..200u64 {
            let peer = (me + 1 + (i as usize % (k - 1))) % k;
            let mut w = WireWriter::new();
            w.put_u64(i);
            comm.send_bytes(peer, Tag(1), w.finish());
        }
        let mut sum = 0u64;
        for _ in 0..200 {
            let (_s, b) = comm.recv_any(Tag(1));
            sum = sum.wrapping_add(WireReader::new(b).get_u64().unwrap());
        }
        comm.barrier();
        sum
    };
    let a = Cluster::run_with(4, chaos_opts(99), workload);
    let b = Cluster::run_with(4, chaos_opts(99), workload);
    assert_eq!(a.results, b.results);
    assert_eq!(a.stats, b.stats, "same seed must replay identical CommStats");
    assert_eq!(a.faults, b.faults, "same seed must replay identical faults");
    // A different seed changes the injected faults (with overwhelming
    // probability at these message counts) but never the results.
    let c = Cluster::run_with(4, chaos_opts(100), workload);
    assert_eq!(a.results, c.results);
    assert_ne!(a.faults, c.faults);
}

#[test]
fn commstats_identical_with_and_without_faults() {
    let workload = |comm: &cusp_net::Comm| {
        comm.set_phase("exchange");
        let me = comm.host();
        let k = comm.num_hosts();
        for peer in 0..k {
            if peer != me {
                comm.send_bytes(peer, Tag(2), Bytes::from(vec![me as u8; 17 + me]));
            }
        }
        for _ in 0..k - 1 {
            comm.recv_any(Tag(2));
        }
        comm.barrier();
    };
    let clean = Cluster::run(4, workload);
    let chaotic = Cluster::run_with(4, chaos_opts(7), workload);
    // Sends are accounted at the application level and receives after
    // dedup/resequencing, so the fault layer is invisible to Table V
    // accounting.
    assert_eq!(clean.stats, chaotic.stats);
    assert!(chaotic.faults.unwrap().total() > 0);
}

#[test]
fn conservation_holds_under_chaos() {
    let out = Cluster::run_with(3, chaos_opts(env_seed() ^ 3), |comm| {
        comm.set_phase("busy");
        let me = comm.host();
        let k = comm.num_hosts();
        for i in 0..100u64 {
            for peer in 0..k {
                if peer != me {
                    let mut w = WireWriter::new();
                    w.put_u64(i);
                    comm.send_bytes(peer, Tag(6), w.finish());
                }
            }
        }
        for _ in 0..100 * (k - 1) {
            comm.recv_any(Tag(6));
        }
        comm.barrier();
    });
    assert!(
        out.stats.unconserved_phases().is_empty(),
        "duplicates/drops must not leak into conservation accounting"
    );
}

#[test]
fn recv_from_with_buffering_under_chaos() {
    let out = Cluster::run_with(3, chaos_opts(env_seed() ^ 4), |comm| {
        let me = comm.host();
        match me {
            0 | 1 => {
                for i in 0..80u64 {
                    let mut w = WireWriter::new();
                    w.put_u64(me as u64 * 100 + i);
                    comm.send_bytes(2, Tag(1), w.finish());
                }
                Vec::new()
            }
            _ => {
                // Drain host 1 first (host 0's stream must buffer), then
                // host 0; both must come out in send order.
                let mut all = Vec::new();
                for src in [1usize, 0] {
                    for _ in 0..80 {
                        let b = comm.recv_from(src, Tag(1));
                        all.push(WireReader::new(b).get_u64().unwrap());
                    }
                }
                all
            }
        }
    });
    let expect: Vec<u64> = (0..80).map(|i| 100 + i).chain(0..80).collect();
    assert_eq!(out.results[2], expect);
}

#[test]
fn quiet_plan_reports_zero_faults() {
    let out = Cluster::run_with(
        2,
        ClusterOptions {
            fault: Some(FaultPlan::quiet(1)),
            ..ClusterOptions::default()
        },
        |comm| {
            if comm.host() == 0 {
                comm.send_bytes(1, Tag(0), Bytes::from_static(b"hi"));
            } else {
                comm.recv_any(Tag(0));
            }
        },
    );
    assert_eq!(out.faults.unwrap().total(), 0);
}
