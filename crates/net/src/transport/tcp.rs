//! The length-delimited TCP transport: one OS process per host.
//!
//! ## Wire format
//!
//! Every frame is `len: u32 LE | kind: u8 | body`, where `len` counts the
//! kind byte plus the body. Kinds:
//!
//! | kind | name      | body                                             |
//! |------|-----------|--------------------------------------------------|
//! | 1    | HELLO     | `magic u32, version u8, host_id u32, hosts u32, run_nonce u64` |
//! | 2    | ACCEPT    | empty                                            |
//! | 3    | REJECT    | `reason u8` (see [`RejectReason`])               |
//! | 4    | ENVELOPE  | a versioned envelope ([`encode_envelope`])       |
//! | 5    | BARRIER   | `arrival u64` — the sender's barrier arrival count |
//! | 6    | HEARTBEAT | empty                                            |
//! | 7    | FIN       | empty — the sender has completed cleanly         |
//!
//! ## Topology and threading
//!
//! The mesh is built from **simplex** connections: host `i` dials every
//! peer's listener (with bounded-backoff retries, since workers start at
//! different times) and uses those sockets only for *sending*; it accepts
//! `hosts - 1` inbound connections and uses those only for *reading*. Per
//! outbound socket a **writer thread** drains a frame queue (heartbeating
//! when idle); per inbound socket a **reader thread** decodes frames and
//! feeds the same dispatch → fault-layer → resequencer path the in-process
//! simulator uses. A **monitor thread** declares a peer lost when it goes
//! silent past [`TcpOptions::peer_timeout`] without having sent FIN.
//!
//! ## Failure semantics
//!
//! A peer that closes its connection (or tears a frame) without FIN is
//! declared lost immediately; the fabric unwinds every blocked operation
//! and the run ends in a typed [`ClusterError::HostLost`] — never a hang.
//! A host that panics aborts its writers *without* FIN, so peers detect
//! the death by EOF. Fault injection ([`crate::FaultPlan`]) is applied at
//! the receiving end of the wire — `decide` is a pure function of
//! `(seed, src, dst, tag, seq)`, so the decisions are identical to the
//! simulator's regardless of which side of the socket evaluates them.
//!
//! [`ClusterError::HostLost`]: crate::ClusterError

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use super::{RejectReason, Transport, TransportError};
use crate::cluster::{Envelope, Fabric, HostId, Tag, MAX_TAGS};
use crate::serialize::{decode_envelope, encode_envelope, WireReader, WireWriter};

/// "CUSP" in ASCII — the handshake magic.
const MAGIC: u32 = 0x4355_5350;

/// Version of the TCP framing + handshake protocol.
pub const TCP_PROTOCOL_VERSION: u8 = 1;

const FRAME_HELLO: u8 = 1;
const FRAME_ACCEPT: u8 = 2;
const FRAME_REJECT: u8 = 3;
const FRAME_ENVELOPE: u8 = 4;
const FRAME_BARRIER: u8 = 5;
const FRAME_HEARTBEAT: u8 = 6;
const FRAME_FIN: u8 = 7;

/// Upper bound on a data frame; anything larger is a corrupt length
/// prefix, not a message.
const MAX_FRAME: u32 = 1 << 30;

/// Handshake frames are tiny; a "HELLO" claiming more is garbage.
const MAX_HANDSHAKE_FRAME: u32 = 256;

/// How often reader threads come up for air to check shutdown/abort flags
/// while blocked on a socket.
const READ_POLL: Duration = Duration::from_millis(100);

/// Monitor thread wake interval.
const MONITOR_POLL: Duration = Duration::from_millis(50);

/// Knobs of the TCP transport. Defaults are deliberately generous: a
/// loaded CI machine must never produce spurious `HostLost`s.
#[derive(Debug, Clone, Copy)]
pub struct TcpOptions {
    /// How long to keep redialing an unreachable peer before giving up.
    pub dial_timeout: Duration,
    /// Initial redial backoff (doubles per attempt, capped at 500ms).
    pub dial_backoff: Duration,
    /// How long to wait for all `hosts - 1` inbound peers to connect.
    pub accept_timeout: Duration,
    /// Per-socket timeout for one handshake exchange.
    pub handshake_timeout: Duration,
    /// Idle writers emit a heartbeat frame this often.
    pub heartbeat_interval: Duration,
    /// A peer silent this long (without FIN) is declared lost.
    pub peer_timeout: Duration,
    /// How long a cleanly finished host waits for peer FINs before
    /// tearing its readers down anyway.
    pub fin_timeout: Duration,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            dial_timeout: Duration::from_secs(15),
            dial_backoff: Duration::from_millis(20),
            accept_timeout: Duration::from_secs(15),
            handshake_timeout: Duration::from_secs(3),
            heartbeat_interval: Duration::from_millis(500),
            peer_timeout: Duration::from_secs(10),
            fin_timeout: Duration::from_secs(10),
        }
    }
}

/// What ship/barrier enqueue toward a peer's writer thread.
enum Out {
    /// An encoded envelope frame body.
    Env(Bytes),
    /// A barrier arrival announcement.
    Barrier(u64),
    /// Clean completion: write FIN, flush, close the write half.
    Fin,
    /// Unclean teardown: close without FIN so the peer detects the loss.
    Abort,
}

/// State shared between the transport handle and its threads.
struct TcpShared {
    start: Instant,
    /// Milliseconds since `start` of the last frame from each peer.
    last_heard: Vec<AtomicU64>,
    /// Set once a peer's FIN arrives — silence is then expected.
    fin_received: Vec<AtomicBool>,
    /// Set by `finish` so readers and the monitor stand down.
    shutting_down: AtomicBool,
}

impl TcpShared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn heard(&self, peer: HostId) {
        self.last_heard[peer].store(self.now_ms(), Ordering::Release);
    }
}

/// Connected-but-not-yet-running sockets, parked between
/// [`TcpTransport::establish`] and [`Transport::start`].
struct Pending {
    /// `(peer, socket)` — inbound simplex connections we read from.
    inbound: Vec<(HostId, TcpStream)>,
    /// `(peer, socket, queue)` — outbound simplex connections we write to.
    writers: Vec<(HostId, TcpStream, Receiver<Out>)>,
}

/// The established TCP transport for one host process. Created by
/// [`TcpTransport::establish`] once the full mesh has handshaken; handed
/// to [`crate::Cluster::try_run_tcp`] to run the partition over it.
pub struct TcpTransport {
    me: HostId,
    hosts: usize,
    opts: TcpOptions,
    /// Outbound frame queues, one per peer (`None` at `me`).
    outbound: Vec<Option<Sender<Out>>>,
    pending: Mutex<Option<Pending>>,
    shared: Arc<TcpShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl TcpTransport {
    /// This host's id.
    pub fn host(&self) -> HostId {
        self.me
    }

    /// Total number of hosts in the cluster.
    pub fn num_hosts(&self) -> usize {
        self.hosts
    }

    /// Builds the full connection mesh for host `me` of `peers.len()`
    /// hosts: dials every peer's listener (retrying with backoff until
    /// [`TcpOptions::dial_timeout`]) while concurrently accepting the
    /// `hosts - 1` inbound connections on `listener`, validating every
    /// handshake against `{magic, version, host_id, hosts, run_nonce}`.
    ///
    /// `peers[i]` is host `i`'s listen address; `peers[me]` is this host's
    /// own (used only for arity). Returns a typed [`TransportError`] on
    /// any bind/dial/handshake failure — never hangs past its timeouts.
    pub fn establish(
        me: HostId,
        listener: TcpListener,
        peers: &[String],
        run_nonce: u64,
        opts: TcpOptions,
    ) -> Result<Self, TransportError> {
        let hosts = peers.len();
        if hosts == 0 {
            return Err(TransportError::Config("empty peer list".into()));
        }
        if me >= hosts {
            return Err(TransportError::Config(format!(
                "host id {me} out of range for {hosts} host(s)"
            )));
        }

        let shared = Arc::new(TcpShared {
            start: Instant::now(),
            last_heard: (0..hosts).map(|_| AtomicU64::new(0)).collect(),
            fin_received: (0..hosts).map(|_| AtomicBool::new(false)).collect(),
            shutting_down: AtomicBool::new(false),
        });

        // Accept concurrently with our own dials: every worker is doing
        // both at once, so neither side can afford to serialize them.
        let acceptor = std::thread::Builder::new()
            .name("tcp-accept".into())
            .spawn(move || accept_peers(listener, me, hosts, run_nonce, &opts))
            .expect("failed to spawn acceptor thread");

        let mut outbound: Vec<Option<Sender<Out>>> = (0..hosts).map(|_| None).collect();
        let mut writers = Vec::with_capacity(hosts.saturating_sub(1));
        let mut dial_err = None;
        for (peer, addr) in peers.iter().enumerate() {
            if peer == me {
                continue;
            }
            match dial(me, peer, addr, hosts, run_nonce, &opts) {
                Ok(stream) => {
                    let (tx, rx) = unbounded();
                    outbound[peer] = Some(tx);
                    writers.push((peer, stream, rx));
                }
                Err(e) => {
                    dial_err = Some(e);
                    break;
                }
            }
        }
        // Join the acceptor even on a dial error: it owns the listener and
        // terminates at accept_timeout at the latest.
        let accepted = acceptor.join().expect("acceptor thread panicked");
        if let Some(e) = dial_err {
            return Err(e);
        }
        let inbound = accepted?;

        // Peers proved alive during the handshake just now.
        for peer in 0..hosts {
            shared.heard(peer);
        }

        Ok(TcpTransport {
            me,
            hosts,
            opts,
            outbound,
            pending: Mutex::new(Some(Pending { inbound, writers })),
            shared,
            threads: Mutex::new(Vec::new()),
        })
    }
}

impl Transport for TcpTransport {
    fn start(&self, fabric: &Arc<Fabric>) {
        let Some(pending) = self.pending.lock().take() else {
            return;
        };
        let mut threads = self.threads.lock();
        for (peer, stream, rx) in pending.writers {
            let interval = self.opts.heartbeat_interval;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tcp-send-{peer}"))
                    .spawn(move || writer_loop(stream, rx, interval))
                    .expect("failed to spawn writer thread"),
            );
        }
        for (peer, stream) in pending.inbound {
            let fabric = Arc::clone(fabric);
            let shared = Arc::clone(&self.shared);
            let me = self.me;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tcp-recv-{peer}"))
                    .spawn(move || reader_loop(stream, peer, me, fabric, shared))
                    .expect("failed to spawn reader thread"),
            );
        }
        if self.hosts > 1 {
            let fabric = Arc::clone(fabric);
            let shared = Arc::clone(&self.shared);
            let (me, hosts, timeout) = (self.me, self.hosts, self.opts.peer_timeout);
            threads.push(
                std::thread::Builder::new()
                    .name("tcp-monitor".into())
                    .spawn(move || monitor_loop(fabric, shared, me, hosts, timeout))
                    .expect("failed to spawn monitor thread"),
            );
        }
    }

    fn ship(&self, _fabric: &Fabric, dst: HostId, tag: Tag, env: Envelope) {
        let frame = encode_envelope(tag.0, env.src as u64, env.phase, env.seq, &env.payload);
        if let Some(tx) = &self.outbound[dst] {
            // A closed queue means the writer died with its peer; the run
            // is already being torn down and check_abort will surface it.
            let _ = tx.send(Out::Env(frame));
        }
    }

    fn barrier_wait(&self, fabric: &Fabric, host: HostId, n: u64) -> bool {
        // Announce over every connection *before* blocking. Queues are
        // FIFO per peer, so a peer observes all our pre-barrier envelopes
        // before our arrival — exactly the simulator's guarantee that
        // barrier release implies all prior traffic is in the mailboxes.
        for tx in self.outbound.iter().flatten() {
            let _ = tx.send(Out::Barrier(n));
        }
        fabric.barrier.wait(host, n, || fabric.should_abort())
    }

    fn finish(&self, fabric: &Fabric, clean: bool) {
        for tx in self.outbound.iter().flatten() {
            let _ = tx.send(if clean { Out::Fin } else { Out::Abort });
        }
        if clean {
            // Drain window: keep readers alive until every peer has FINed
            // (or died, or overstayed the timeout), so slower peers can
            // still pull our already-queued frames and barriers.
            let deadline = Instant::now() + self.opts.fin_timeout;
            while Instant::now() < deadline && !fabric.should_abort() {
                let all = (0..self.hosts)
                    .filter(|&p| p != self.me)
                    .all(|p| self.shared.fin_received[p].load(Ordering::Acquire));
                if all {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        self.shared.shutting_down.store(true, Ordering::Release);
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.threads.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Frame I/O helpers
// ---------------------------------------------------------------------------

fn write_frame(w: &mut impl Write, kind: u8, body: &[u8]) -> std::io::Result<()> {
    w.write_all(&(1 + body.len() as u32).to_le_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(body)
}

/// Blocking read of one small frame during the handshake (the socket has a
/// read timeout set, so this is bounded).
fn read_handshake_frame(stream: &mut TcpStream) -> std::io::Result<(u8, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_HANDSHAKE_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("handshake frame length {len}"),
        ));
    }
    let mut frame = vec![0u8; len as usize];
    stream.read_exact(&mut frame)?;
    Ok((frame[0], frame[1..].to_vec()))
}

/// Outcome of a flag-aware socket read.
enum ReadOutcome {
    /// Buffer filled.
    Ok,
    /// Clean EOF before the first byte.
    Eof,
    /// The stop flag fired while blocked.
    Stopped,
    /// I/O error or EOF mid-buffer (a torn frame).
    Failed,
}

/// Fills `buf` from `r`, surfacing read timeouts as chances to observe
/// `stop` instead of data loss (unlike `read_exact`, which corrupts its
/// position on timeout).
fn read_full(r: &mut impl Read, buf: &mut [u8], stop: &impl Fn() -> bool) -> ReadOutcome {
    let mut off = 0;
    while off < buf.len() {
        match r.read(&mut buf[off..]) {
            Ok(0) => {
                return if off == 0 { ReadOutcome::Eof } else { ReadOutcome::Failed };
            }
            Ok(n) => off += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop() {
                    return ReadOutcome::Stopped;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Failed,
        }
    }
    ReadOutcome::Ok
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

fn hello_body(me: HostId, hosts: usize, run_nonce: u64) -> Bytes {
    let mut w = WireWriter::with_capacity(21);
    w.put_u32(MAGIC);
    w.put_u8(TCP_PROTOCOL_VERSION);
    w.put_u32(me as u32);
    w.put_u32(hosts as u32);
    w.put_u64(run_nonce);
    w.finish()
}

/// Dials `addr` until the peer answers (or the timeout), then runs the
/// HELLO/ACCEPT exchange.
fn dial(
    me: HostId,
    peer: HostId,
    addr: &str,
    hosts: usize,
    run_nonce: u64,
    opts: &TcpOptions,
) -> Result<TcpStream, TransportError> {
    let deadline = Instant::now() + opts.dial_timeout;
    let mut backoff = opts.dial_backoff;
    loop {
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(opts.handshake_timeout));
                let hs = |detail: String| TransportError::Handshake { peer, detail };
                write_frame(&mut stream, FRAME_HELLO, &hello_body(me, hosts, run_nonce))
                    .map_err(|e| hs(format!("cannot send HELLO: {e}")))?;
                let (kind, body) = read_handshake_frame(&mut stream)
                    .map_err(|e| hs(format!("no handshake reply: {e}")))?;
                return match kind {
                    FRAME_ACCEPT => {
                        let _ = stream.set_read_timeout(None);
                        Ok(stream)
                    }
                    FRAME_REJECT => {
                        let reason = body
                            .first()
                            .and_then(|&b| RejectReason::from_u8(b))
                            .unwrap_or(RejectReason::BadMagic);
                        Err(TransportError::Rejected { peer, reason })
                    }
                    other => Err(hs(format!("unexpected handshake frame kind {other}"))),
                };
            }
            Err(_) => {
                if Instant::now() >= deadline {
                    return Err(TransportError::DialTimeout { peer, addr: addr.to_string() });
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(500));
            }
        }
    }
}

/// Validates one inbound HELLO. `Ok(peer)` accepts the connection;
/// `Err(reason)` is sent back in a REJECT frame.
fn validate_hello(
    body: &[u8],
    me: HostId,
    hosts: usize,
    run_nonce: u64,
    taken: &[bool],
) -> Result<HostId, RejectReason> {
    let mut r = WireReader::new(Bytes::from(body.to_vec()));
    let magic = r.get_u32().map_err(|_| RejectReason::BadMagic)?;
    if magic != MAGIC {
        return Err(RejectReason::BadMagic);
    }
    let version = r.get_u8().map_err(|_| RejectReason::BadVersion)?;
    if version != TCP_PROTOCOL_VERSION {
        return Err(RejectReason::BadVersion);
    }
    let host_id = r.get_u32().map_err(|_| RejectReason::BadHostId)? as usize;
    let their_hosts = r.get_u32().map_err(|_| RejectReason::BadHosts)? as usize;
    let nonce = r.get_u64().map_err(|_| RejectReason::BadNonce)?;
    if their_hosts != hosts {
        return Err(RejectReason::BadHosts);
    }
    if nonce != run_nonce {
        return Err(RejectReason::BadNonce);
    }
    if host_id >= hosts || host_id == me || taken[host_id] {
        return Err(RejectReason::BadHostId);
    }
    Ok(host_id)
}

/// Accept loop: collects `hosts - 1` validated peer connections.
/// Connections failing validation get a REJECT and are dropped without
/// consuming a slot; random strangers (port scans, stale workers) are
/// simply ignored.
fn accept_peers(
    listener: TcpListener,
    me: HostId,
    hosts: usize,
    run_nonce: u64,
    opts: &TcpOptions,
) -> Result<Vec<(HostId, TcpStream)>, TransportError> {
    let mut taken = vec![false; hosts];
    let mut inbound = Vec::with_capacity(hosts.saturating_sub(1));
    listener
        .set_nonblocking(true)
        .map_err(TransportError::Bind)?;
    let deadline = Instant::now() + opts.accept_timeout;
    while inbound.len() < hosts - 1 {
        if Instant::now() >= deadline {
            return Err(TransportError::AcceptTimeout {
                missing: hosts - 1 - inbound.len(),
            });
        }
        let mut stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        // The accepted socket may inherit the listener's non-blocking
        // mode; the reader threads want plain blocking-with-timeout.
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(opts.handshake_timeout));
        let Ok((kind, body)) = read_handshake_frame(&mut stream) else {
            continue; // not a worker; drop silently
        };
        if kind != FRAME_HELLO {
            continue;
        }
        match validate_hello(&body, me, hosts, run_nonce, &taken) {
            Ok(peer) => {
                if write_frame(&mut stream, FRAME_ACCEPT, &[]).is_err() {
                    continue;
                }
                taken[peer] = true;
                inbound.push((peer, stream));
            }
            Err(reason) => {
                let _ = write_frame(&mut stream, FRAME_REJECT, &[reason as u8]);
                // Dropped: the dialer sees the REJECT and errors out.
            }
        }
    }
    Ok(inbound)
}

// ---------------------------------------------------------------------------
// Runtime threads
// ---------------------------------------------------------------------------

/// Drains one peer's outbound queue onto its socket, heartbeating when
/// idle. Exits on FIN (clean), Abort (unclean, no FIN), queue closure, or
/// write error (the peer is gone; its reader/monitor handles diagnosis).
fn writer_loop(stream: TcpStream, rx: Receiver<Out>, heartbeat: Duration) {
    let mut w = BufWriter::with_capacity(64 << 10, stream);
    loop {
        match rx.recv_timeout(heartbeat) {
            Ok(Out::Env(frame)) => {
                if write_frame(&mut w, FRAME_ENVELOPE, &frame).is_err() {
                    return;
                }
                if rx.is_empty() && w.flush().is_err() {
                    return;
                }
            }
            Ok(Out::Barrier(n)) => {
                if write_frame(&mut w, FRAME_BARRIER, &n.to_le_bytes()).is_err()
                    || w.flush().is_err()
                {
                    return;
                }
            }
            Ok(Out::Fin) => {
                let _ = write_frame(&mut w, FRAME_FIN, &[]);
                let _ = w.flush();
                let _ = w.get_ref().shutdown(Shutdown::Write);
                return;
            }
            Ok(Out::Abort) => return,
            Err(RecvTimeoutError::Timeout) => {
                if write_frame(&mut w, FRAME_HEARTBEAT, &[]).is_err() || w.flush().is_err() {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Decodes frames from one peer and feeds them to the fabric: envelopes
/// go through the regular dispatch (fault layer included), barrier
/// announcements into the shared arrival table. Any protocol violation —
/// torn frame, corrupt envelope, absurd length, EOF without FIN — tears
/// the connection down and declares the peer lost.
fn reader_loop(
    stream: TcpStream,
    peer: HostId,
    me: HostId,
    fabric: Arc<Fabric>,
    shared: Arc<TcpShared>,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut r = BufReader::with_capacity(64 << 10, stream);
    let stop =
        || shared.shutting_down.load(Ordering::Acquire) || fabric.should_abort();
    let finned = || shared.fin_received[peer].load(Ordering::Acquire);
    let mut len_buf = [0u8; 4];
    loop {
        match read_full(&mut r, &mut len_buf, &stop) {
            ReadOutcome::Ok => {}
            ReadOutcome::Stopped => return,
            ReadOutcome::Eof | ReadOutcome::Failed => {
                if !finned() && !stop() {
                    fabric.mark_remote_lost(peer);
                }
                return;
            }
        }
        let len = u32::from_le_bytes(len_buf);
        if len == 0 || len > MAX_FRAME {
            fabric.mark_remote_lost(peer);
            return;
        }
        let mut frame = vec![0u8; len as usize];
        match read_full(&mut r, &mut frame, &stop) {
            ReadOutcome::Ok => {}
            ReadOutcome::Stopped => return,
            ReadOutcome::Eof | ReadOutcome::Failed => {
                // A frame torn mid-body is never clean, FIN or not.
                if !stop() {
                    fabric.mark_remote_lost(peer);
                }
                return;
            }
        }
        shared.heard(peer);
        let kind = frame[0];
        match kind {
            FRAME_ENVELOPE => {
                let body = Bytes::from(frame).slice(1..);
                match decode_envelope(body) {
                    Ok(we) if (we.tag as usize) < MAX_TAGS && we.src as usize == peer => {
                        fabric.dispatch(
                            me,
                            Tag(we.tag),
                            Envelope {
                                src: peer,
                                seq: we.seq,
                                phase: we.phase,
                                payload: we.payload,
                            },
                        );
                    }
                    _ => {
                        fabric.mark_remote_lost(peer);
                        return;
                    }
                }
            }
            FRAME_BARRIER => {
                if frame.len() != 9 {
                    fabric.mark_remote_lost(peer);
                    return;
                }
                let mut arr = [0u8; 8];
                arr.copy_from_slice(&frame[1..9]);
                fabric.barrier.announce(peer, u64::from_le_bytes(arr));
            }
            FRAME_HEARTBEAT => {}
            FRAME_FIN => {
                shared.fin_received[peer].store(true, Ordering::Release);
            }
            _ => {
                fabric.mark_remote_lost(peer);
                return;
            }
        }
    }
}

/// Declares a peer lost when it goes silent past the timeout without
/// having FINed. Socket-level failures are caught faster by the readers;
/// this net catches peers that hang without dying.
fn monitor_loop(
    fabric: Arc<Fabric>,
    shared: Arc<TcpShared>,
    me: HostId,
    hosts: usize,
    timeout: Duration,
) {
    let timeout_ms = timeout.as_millis() as u64;
    loop {
        std::thread::sleep(MONITOR_POLL);
        if shared.shutting_down.load(Ordering::Acquire) || fabric.should_abort() {
            return;
        }
        let now = shared.now_ms();
        let mut all_fin = true;
        for peer in (0..hosts).filter(|&p| p != me) {
            if shared.fin_received[peer].load(Ordering::Acquire) {
                continue;
            }
            all_fin = false;
            if now.saturating_sub(shared.last_heard[peer].load(Ordering::Acquire)) > timeout_ms {
                fabric.mark_remote_lost(peer);
                return;
            }
        }
        if all_fin {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterOptions};
    use crate::recovery::ClusterError;

    /// Options tuned so a failed establish errors out in test time rather
    /// than wall-clock seconds.
    fn fast_opts() -> TcpOptions {
        TcpOptions {
            dial_timeout: Duration::from_secs(2),
            accept_timeout: Duration::from_secs(2),
            handshake_timeout: Duration::from_secs(2),
            ..TcpOptions::default()
        }
    }

    fn bind() -> (TcpListener, String) {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l.local_addr().expect("local addr").to_string();
        (l, addr)
    }

    /// Starts `TcpTransport::establish` for host 0 of a 2-host cluster in
    /// a background thread and returns its listen address plus the join
    /// handle, so a raw scripted "host 1" can talk to it.
    fn establish_host0(
        nonce: u64,
    ) -> (String, std::thread::JoinHandle<Result<TcpTransport, TransportError>>, String) {
        let (l0, a0) = bind();
        let (l1, a1) = bind();
        drop(l1); // host 1 is played by the raw script, not a transport
        let peers = vec![a0.clone(), a1.clone()];
        let h = std::thread::spawn(move || {
            TcpTransport::establish(0, l0, &peers, nonce, fast_opts())
        });
        (a0, h, a1)
    }

    /// Raw host-1 side of the handshake: dial host 0 with a HELLO built by
    /// `mutate` and return the reply frame kind + body.
    fn dial_raw(addr: &str, mutate: impl FnOnce(&mut Vec<u8>)) -> (u8, Vec<u8>) {
        let mut s = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        };
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut hello = hello_body(1, 2, 77).to_vec();
        mutate(&mut hello);
        write_frame(&mut s, FRAME_HELLO, &hello).unwrap();
        let (kind, body) = read_handshake_frame(&mut s).expect("handshake reply");
        (kind, body)
    }

    #[test]
    fn handshake_rejects_wrong_version_then_accepts_a_valid_peer() {
        let (a0, h, _a1) = establish_host0(77);
        // Bad protocol version → REJECT(BadVersion), and the slot is not
        // consumed: a follow-up valid HELLO still completes the mesh.
        let (kind, body) = dial_raw(&a0, |hello| hello[4] = TCP_PROTOCOL_VERSION + 1);
        assert_eq!(kind, FRAME_REJECT);
        assert_eq!(RejectReason::from_u8(body[0]), Some(RejectReason::BadVersion));
        let (kind, _) = dial_raw(&a0, |_| {});
        assert_eq!(kind, FRAME_ACCEPT);
        // Host 0 still needs its own outbound dial to succeed; play the
        // accepting side for it.
        let t = h.join().unwrap();
        match t {
            Err(TransportError::DialTimeout { peer: 1, .. }) => {}
            Err(e) => panic!("unexpected establish error: {e}"),
            Ok(_) => panic!("establish cannot succeed: nobody listened for host 0's dial"),
        }
    }

    #[test]
    fn handshake_rejects_wrong_nonce_and_magic() {
        let (a0, h, _a1) = establish_host0(77);
        let (kind, body) = dial_raw(&a0, |hello| hello[13] ^= 0xFF); // nonce byte
        assert_eq!(kind, FRAME_REJECT);
        assert_eq!(RejectReason::from_u8(body[0]), Some(RejectReason::BadNonce));
        let (kind, body) = dial_raw(&a0, |hello| hello[0] ^= 0xFF); // magic byte
        assert_eq!(kind, FRAME_REJECT);
        assert_eq!(RejectReason::from_u8(body[0]), Some(RejectReason::BadMagic));
        let (kind, body) = dial_raw(&a0, |hello| hello[9] = 3); // hosts = 3, not 2
        assert_eq!(kind, FRAME_REJECT);
        assert_eq!(RejectReason::from_u8(body[0]), Some(RejectReason::BadHosts));
        let (kind, body) = dial_raw(&a0, |hello| hello[5] = 0); // host id = ours
        assert_eq!(kind, FRAME_REJECT);
        assert_eq!(RejectReason::from_u8(body[0]), Some(RejectReason::BadHostId));
        drop(h.join().unwrap()); // DialTimeout; nothing listened for host 0
    }

    #[test]
    fn dialer_surfaces_nonce_rejection_as_typed_error() {
        // A real host 0 dialing a "cluster" whose host 1 runs a different
        // nonce must get TransportError::Rejected, not a hang.
        let (l1, a1) = bind();
        let (l0, a0) = bind();
        let peers = vec![a0, a1];
        let acceptor = std::thread::spawn(move || {
            accept_peers(l1, 1, 2, 9999, &fast_opts()) // nonce 9999 ≠ 77
        });
        let got = TcpTransport::establish(0, l0, &peers, 77, fast_opts());
        match got {
            Err(TransportError::Rejected { peer: 1, reason: RejectReason::BadNonce }) => {}
            Err(e) => panic!("wanted Rejected(BadNonce), got: {e}"),
            Ok(_) => panic!("establish must fail across a nonce mismatch"),
        }
        // The scripted acceptor times out (host 0 gave up after the
        // rejection and never retried with the right nonce).
        assert!(matches!(acceptor.join().unwrap(), Err(TransportError::AcceptTimeout { .. })));
    }

    /// Full raw "host 1": completes both handshake directions against a
    /// real host 0, then runs `script` on the connection host 0 reads
    /// from. Returns the socket host 0 writes to (kept open so host 0's
    /// writer does not error early).
    fn raw_peer(
        l1: TcpListener,
        a0: String,
        script: impl FnOnce(&mut TcpStream) + Send + 'static,
    ) -> std::thread::JoinHandle<TcpStream> {
        std::thread::spawn(move || {
            // Accept host 0's outbound dial and ACCEPT its HELLO.
            let (mut from0, _) = l1.accept().expect("host 0 dials us");
            from0.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let (kind, _) = read_handshake_frame(&mut from0).unwrap();
            assert_eq!(kind, FRAME_HELLO);
            write_frame(&mut from0, FRAME_ACCEPT, &[]).unwrap();
            // Dial host 0 with our own valid HELLO.
            let mut to0 = TcpStream::connect(&a0).expect("dial host 0");
            to0.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            write_frame(&mut to0, FRAME_HELLO, &hello_body(1, 2, 77)).unwrap();
            let (kind, _) = read_handshake_frame(&mut to0).unwrap();
            assert_eq!(kind, FRAME_ACCEPT);
            script(&mut to0);
            from0
        })
    }

    #[test]
    fn torn_frame_tears_the_connection_down_with_floor_intact() {
        let (l0, a0) = bind();
        let (l1, a1) = bind();
        let peers = vec![a0.clone(), a1];
        let peer = raw_peer(l1, a0, |s| {
            // One valid envelope (seq 0), then a frame whose length prefix
            // claims 100 bytes but whose body is cut off mid-way.
            let env = encode_envelope(0, 1, 0, 0, b"before the tear");
            write_frame(s, FRAME_ENVELOPE, &env).unwrap();
            s.write_all(&100u32.to_le_bytes()).unwrap();
            s.write_all(&[FRAME_ENVELOPE, 0, 0, 0]).unwrap();
            s.flush().unwrap();
            let _ = s.shutdown(Shutdown::Write);
        });
        let transport =
            TcpTransport::establish(0, l0, &peers, 77, fast_opts()).expect("mesh up");
        let got = Cluster::try_run_tcp(transport, ClusterOptions::default(), |comm| {
            // The message in front of the tear is delivered in sequence...
            let (src, payload) = comm.recv_any(Tag(0));
            assert_eq!((src, &payload[..]), (1, &b"before the tear"[..]));
            // ...and the next receive unwinds with a typed loss instead of
            // hanging on the dead connection.
            comm.recv_any(Tag(0))
        });
        match got {
            Err(ClusterError::HostLost { host: 1, restarts: 0 }) => {}
            Err(e) => panic!("wanted HostLost for host 1, got: {e}"),
            Ok(_) => panic!("run must not complete past a torn frame"),
        }
        let _ = peer.join();
    }

    #[test]
    fn peer_death_without_fin_is_host_lost_not_a_hang() {
        let (l0, a0) = bind();
        let (l1, a1) = bind();
        let peers = vec![a0.clone(), a1];
        let peer = raw_peer(l1, a0, |s| {
            // Die abruptly: close with no FIN frame, mid-phase.
            let _ = s.shutdown(Shutdown::Both);
        });
        let transport =
            TcpTransport::establish(0, l0, &peers, 77, fast_opts()).expect("mesh up");
        let got = Cluster::try_run_tcp(transport, ClusterOptions::default(), |comm| {
            comm.recv_any(Tag(0)) // would block forever on a hanging transport
        });
        assert!(matches!(got, Err(ClusterError::HostLost { host: 1, restarts: 0 })), "typed loss");
        let _ = peer.join();
    }

    #[test]
    fn corrupt_envelope_version_is_a_protocol_error() {
        let (l0, a0) = bind();
        let (l1, a1) = bind();
        let peers = vec![a0.clone(), a1];
        let peer = raw_peer(l1, a0, |s| {
            let mut env = encode_envelope(0, 1, 0, 0, b"x").to_vec();
            env[0] = 42; // not ENVELOPE_VERSION
            write_frame(s, FRAME_ENVELOPE, &env).unwrap();
            s.flush().unwrap();
        });
        let transport =
            TcpTransport::establish(0, l0, &peers, 77, fast_opts()).expect("mesh up");
        let got = Cluster::try_run_tcp(transport, ClusterOptions::default(), |comm| {
            comm.recv_any(Tag(0))
        });
        assert!(matches!(got, Err(ClusterError::HostLost { host: 1, restarts: 0 })));
        let _ = peer.join();
    }
}
