//! The length-delimited TCP transport: one OS process per host.
//!
//! ## Wire format
//!
//! Every frame is `len: u32 LE | kind: u8 | body`, where `len` counts the
//! kind byte plus the body. Kinds:
//!
//! | kind | name      | body                                             |
//! |------|-----------|--------------------------------------------------|
//! | 1    | HELLO     | `magic u32, version u8, host_id u32, hosts u32, run_nonce u64, incarnation u32` |
//! | 2    | ACCEPT    | empty                                            |
//! | 3    | REJECT    | `reason u8` (see [`RejectReason`])               |
//! | 4    | ENVELOPE  | a versioned envelope ([`encode_envelope`])       |
//! | 5    | BARRIER   | `arrival u64` — the sender's barrier arrival count |
//! | 6    | HEARTBEAT | empty                                            |
//! | 7    | FIN       | empty — the sender has completed cleanly         |
//!
//! ## Topology and threading
//!
//! The mesh is built from **simplex** connections: host `i` dials every
//! peer's listener (with bounded-backoff retries, since workers start at
//! different times) and uses those sockets only for *sending*; it accepts
//! `hosts - 1` inbound connections and uses those only for *reading*. Per
//! outbound socket a **writer thread** drains a frame queue (heartbeating
//! when idle); per inbound socket a **reader thread** decodes frames and
//! feeds the same dispatch → fault-layer → resequencer path the in-process
//! simulator uses. A **monitor thread** declares a peer lost when it goes
//! silent past [`TcpOptions::peer_timeout`] without having sent FIN.
//!
//! ## Failure semantics
//!
//! Without rejoin ([`TcpOptions::rejoin`] off, the default), a peer that
//! closes its connection (or tears a frame) without FIN is declared lost
//! immediately; the fabric unwinds every blocked operation and the run
//! ends in a typed [`ClusterError::HostLost`] — never a hang. A host that
//! panics aborts its writers *without* FIN, so peers detect the death by
//! EOF. Fault injection ([`crate::FaultPlan`]) is applied at the
//! receiving end of the wire — `decide` is a pure function of
//! `(seed, src, dst, tag, seq)`, so the decisions are identical to the
//! simulator's regardless of which side of the socket evaluates them.
//!
//! ## Process rejoin
//!
//! With [`TcpOptions::rejoin`] on (how `cusp-part launch` supervises its
//! workers), a dead peer opens a bounded **down window** instead of
//! aborting the run:
//!
//! * Connection failures and heartbeat silence mark the peer *down*: its
//!   writer queue is unhooked (outbound frames are dropped but retained in
//!   the per-destination send log) and its reader socket is torn so the
//!   state is unambiguous. Blocked receives and barriers keep waiting.
//! * The mesh listener stays open after `establish`; a **rejoin acceptor**
//!   thread answers HELLOs for the same `run_nonce` whose `incarnation` is
//!   strictly greater than the peer's last known one (anything else gets
//!   `REJECT StaleIncarnation`). On accept it bumps the peer's connection
//!   generation (so the stale reader's death is ignored), re-dials the
//!   peer's listener, **replays the entire send log** for that
//!   destination, re-announces its own barrier arrival count, re-sends FIN
//!   if it had already finished, and installs fresh writer/reader threads.
//! * The receive-side resequencer floors survive untouched, so replayed
//!   traffic dedups exactly as in the simulator; replayed bytes are
//!   accounted in [`crate::CommStats::replayed_bytes`], outside the
//!   conserved per-phase matrices.
//! * A peer still down after [`TcpOptions::rejoin_window`] is declared
//!   lost — the typed `HostLost`, never a hang.
//!
//! ## Environment knobs
//!
//! [`TcpOptions::from_env`] honors two variables (both milliseconds, both
//! with generous CI-safe defaults so a loaded machine never produces a
//! spurious `HostLost`):
//!
//! * `CUSP_TCP_HEARTBEAT_MS` — idle-writer heartbeat interval (default
//!   500). The silence timeout [`TcpOptions::peer_timeout`] scales with it
//!   (20×, floor 500 ms), preserving the default 500 ms → 10 s ratio.
//! * `CUSP_TCP_DRAIN_MS` — the FIN drain window
//!   [`TcpOptions::fin_timeout`] (default 10 000): how long a cleanly
//!   finished host keeps its readers alive for slower peers.
//!
//! [`ClusterError::HostLost`]: crate::ClusterError

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use super::{RejectReason, Transport, TransportError};
use crate::cluster::{Envelope, Fabric, HostId, Tag, MAX_TAGS};
use crate::serialize::{decode_envelope, encode_envelope, WireReader, WireWriter};

/// "CUSP" in ASCII — the handshake magic.
const MAGIC: u32 = 0x4355_5350;

/// Version of the TCP framing + handshake protocol. Version 2 added the
/// `incarnation` field to HELLO (process rejoin after a crash).
pub const TCP_PROTOCOL_VERSION: u8 = 2;

const FRAME_HELLO: u8 = 1;
const FRAME_ACCEPT: u8 = 2;
const FRAME_REJECT: u8 = 3;
const FRAME_ENVELOPE: u8 = 4;
const FRAME_BARRIER: u8 = 5;
const FRAME_HEARTBEAT: u8 = 6;
const FRAME_FIN: u8 = 7;

/// Upper bound on a data frame; anything larger is a corrupt length
/// prefix, not a message.
const MAX_FRAME: u32 = 1 << 30;

/// Handshake frames are tiny; a "HELLO" claiming more is garbage.
const MAX_HANDSHAKE_FRAME: u32 = 256;

/// How often reader threads come up for air to check shutdown/abort flags
/// while blocked on a socket.
const READ_POLL: Duration = Duration::from_millis(100);

/// Monitor thread wake interval.
const MONITOR_POLL: Duration = Duration::from_millis(50);

/// Rejoin acceptor poll interval while no connection is pending.
const REJOIN_POLL: Duration = Duration::from_millis(10);

/// Knobs of the TCP transport. Defaults are deliberately generous: a
/// loaded CI machine must never produce spurious `HostLost`s. See the
/// module docs for the `CUSP_TCP_HEARTBEAT_MS` / `CUSP_TCP_DRAIN_MS`
/// environment overrides applied by [`TcpOptions::from_env`].
#[derive(Debug, Clone, Copy)]
pub struct TcpOptions {
    /// How long to keep redialing an unreachable peer before giving up.
    pub dial_timeout: Duration,
    /// Initial redial backoff (doubles per attempt, capped at 500ms).
    pub dial_backoff: Duration,
    /// How long to wait for all `hosts - 1` inbound peers to connect.
    pub accept_timeout: Duration,
    /// Per-socket timeout for one handshake exchange.
    pub handshake_timeout: Duration,
    /// Idle writers emit a heartbeat frame this often.
    pub heartbeat_interval: Duration,
    /// A peer silent this long (without FIN) is declared lost — or, with
    /// [`TcpOptions::rejoin`], marked down pending a reconnect.
    pub peer_timeout: Duration,
    /// How long a cleanly finished host waits for peer FINs before
    /// tearing its readers down anyway (the teardown drain window).
    pub fin_timeout: Duration,
    /// Accept reconnecting peers with a newer incarnation instead of
    /// aborting on the first connection loss. Costs a per-destination
    /// send log kept for the whole run; enabled by the process supervisor
    /// (`cusp-part launch`), off for unsupervised meshes.
    pub rejoin: bool,
    /// With [`TcpOptions::rejoin`]: how long a peer may stay down before
    /// it is declared lost after all.
    pub rejoin_window: Duration,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            dial_timeout: Duration::from_secs(15),
            dial_backoff: Duration::from_millis(20),
            accept_timeout: Duration::from_secs(15),
            handshake_timeout: Duration::from_secs(3),
            heartbeat_interval: Duration::from_millis(500),
            peer_timeout: Duration::from_secs(10),
            fin_timeout: Duration::from_secs(10),
            rejoin: false,
            rejoin_window: Duration::from_secs(60),
        }
    }
}

impl TcpOptions {
    /// Defaults with the documented environment overrides applied:
    /// `CUSP_TCP_HEARTBEAT_MS` (heartbeat interval, silence timeout
    /// scaling with it) and `CUSP_TCP_DRAIN_MS` (FIN drain window).
    /// Unparseable values are ignored in favor of the defaults.
    pub fn from_env() -> Self {
        let mut opts = TcpOptions::default();
        if let Some(ms) = env_ms("CUSP_TCP_HEARTBEAT_MS") {
            let ms = ms.max(10);
            opts.heartbeat_interval = Duration::from_millis(ms);
            opts.peer_timeout = Duration::from_millis((ms * 20).max(500));
        }
        if let Some(ms) = env_ms("CUSP_TCP_DRAIN_MS") {
            opts.fin_timeout = Duration::from_millis(ms.max(10));
        }
        opts
    }
}

fn env_ms(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.trim().parse().ok()
}

/// What ship/barrier enqueue toward a peer's writer thread.
enum Out {
    /// An encoded envelope frame body.
    Env(Bytes),
    /// A barrier arrival announcement.
    Barrier(u64),
    /// Clean completion: write FIN, flush, close the write half.
    Fin,
    /// Unclean teardown: close without FIN so the peer detects the loss.
    Abort,
}

/// State shared between the transport handle and its threads.
struct TcpShared {
    me: HostId,
    hosts: usize,
    run_nonce: u64,
    /// This process's incarnation (0 for the first spawn; the supervisor
    /// increments it per respawn).
    incarnation: u32,
    opts: TcpOptions,
    /// Every host's listen address (`peers[me]` is our own).
    peers: Vec<String>,
    start: Instant,
    /// Milliseconds since `start` of the last frame from each peer.
    last_heard: Vec<AtomicU64>,
    /// Set once a peer's FIN arrives — silence is then expected. Cleared
    /// again when that peer rejoins with a newer incarnation.
    fin_received: Vec<AtomicBool>,
    /// Set by `finish` so readers and the monitor stand down.
    shutting_down: AtomicBool,
    /// Set when a clean FIN has been enqueued, so a later rejoin re-sends
    /// it on the fresh connection.
    fin_sent: AtomicBool,
    /// Outbound frame queues, one per peer (`None` at `me`, and `None`
    /// while a peer is down awaiting rejoin).
    outbound: Vec<Mutex<Option<Sender<Out>>>>,
    /// Per-destination replay log of `(encoded frame, payload bytes)` —
    /// populated only when `opts.rejoin` is set.
    send_log: Vec<Mutex<Vec<(Bytes, u64)>>>,
    /// Clones of the current inbound socket per peer, so a rejoin (or a
    /// down-marking) can tear the stale reader out of its blocking read.
    reader_socks: Vec<Mutex<Option<TcpStream>>>,
    /// Last incarnation each peer was accepted with.
    peer_incarnation: Vec<AtomicU32>,
    /// Connection generation per peer; bumping it invalidates failure
    /// reports from the superseded reader.
    conn_gen: Vec<AtomicU64>,
    /// `0` while the peer is up; otherwise `now_ms + 1` at the moment the
    /// down window opened.
    down_since: Vec<AtomicU64>,
    /// Rejoin handshakes accepted.
    rejoins: AtomicU64,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl TcpShared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn heard(&self, peer: HostId) {
        self.last_heard[peer].store(self.now_ms(), Ordering::Release);
    }

    fn stopped(&self, fabric: &Fabric) -> bool {
        self.shutting_down.load(Ordering::Acquire) || fabric.should_abort()
    }
}

/// Marks a connection failure from `peer`, observed on connection
/// generation `gen`. Without rejoin this is a terminal `HostLost`; with
/// rejoin it opens the peer's down window (first marker wins) and tears
/// both simplex halves so the state is unambiguous: down means *no*
/// connection, recovery only via a fresh rejoin handshake.
fn peer_failed(fabric: &Fabric, shared: &TcpShared, peer: HostId, gen: u64) {
    if shared.stopped(fabric) {
        return;
    }
    if gen < shared.conn_gen[peer].load(Ordering::Acquire) {
        return; // a superseded connection's death, not the peer's
    }
    if !shared.opts.rejoin {
        fabric.mark_remote_lost(peer);
        return;
    }
    if shared.fin_received[peer].load(Ordering::Acquire) {
        return; // clean close after FIN
    }
    let stamp = shared.now_ms() + 1;
    if shared.down_since[peer]
        .compare_exchange(0, stamp, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        *shared.outbound[peer].lock() = None;
        if let Some(s) = shared.reader_socks[peer].lock().take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        cusp_obs::instant("peer_down", peer as u64);
    }
}

/// Connected-but-not-yet-running sockets, parked between
/// [`TcpTransport::establish`] and [`Transport::start`].
struct Pending {
    /// `(peer, socket)` — inbound simplex connections we read from.
    inbound: Vec<(HostId, TcpStream)>,
    /// `(peer, socket, queue)` — outbound simplex connections we write to.
    writers: Vec<(HostId, TcpStream, Receiver<Out>)>,
}

/// The established TCP transport for one host process. Created by
/// [`TcpTransport::establish`] once the full mesh has handshaken; handed
/// to [`crate::Cluster::try_run_tcp`] to run the partition over it.
pub struct TcpTransport {
    shared: Arc<TcpShared>,
    pending: Mutex<Option<Pending>>,
    /// Kept open when rejoin is enabled, so reconnecting peers have a door
    /// to knock on for the whole run.
    listener: Mutex<Option<TcpListener>>,
}

impl TcpTransport {
    /// This host's id.
    pub fn host(&self) -> HostId {
        self.shared.me
    }

    /// Total number of hosts in the cluster.
    pub fn num_hosts(&self) -> usize {
        self.shared.hosts
    }

    /// This process's incarnation number (0 for a first spawn). The
    /// cluster uses it as the restart epoch, so a respawned worker resumes
    /// from its checkpoints instead of clearing them.
    pub fn incarnation(&self) -> u32 {
        self.shared.incarnation
    }

    /// A raw clone of one outbound mesh socket, for fault-injection
    /// tooling (torn-connection kill mode): writing a truncated frame on
    /// it and aborting simulates a worker dying mid-write. `None` for a
    /// single-host mesh or once `start` has consumed the pending sockets.
    pub fn saboteur(&self) -> Option<TcpStream> {
        let pending = self.pending.lock();
        pending
            .as_ref()?
            .writers
            .first()
            .and_then(|(_, s, _)| s.try_clone().ok())
    }

    /// [`TcpTransport::establish_with`] at incarnation 0 — a first spawn.
    pub fn establish(
        me: HostId,
        listener: TcpListener,
        peers: &[String],
        run_nonce: u64,
        opts: TcpOptions,
    ) -> Result<Self, TransportError> {
        Self::establish_with(me, listener, peers, run_nonce, 0, opts)
    }

    /// Builds the full connection mesh for host `me` of `peers.len()`
    /// hosts: dials every peer's listener (retrying with backoff until
    /// [`TcpOptions::dial_timeout`]) while concurrently accepting the
    /// `hosts - 1` inbound connections on `listener`, validating every
    /// handshake against `{magic, version, host_id, hosts, run_nonce}`.
    ///
    /// `peers[i]` is host `i`'s listen address; `peers[me]` is this host's
    /// own (used only for arity, unless rejoin keeps the listener open).
    /// `incarnation` is this process's spawn count for the run; survivors
    /// of a crash accept a redial only with a strictly larger value than
    /// the one they last saw. Returns a typed [`TransportError`] on any
    /// bind/dial/handshake failure — never hangs past its timeouts.
    pub fn establish_with(
        me: HostId,
        listener: TcpListener,
        peers: &[String],
        run_nonce: u64,
        incarnation: u32,
        opts: TcpOptions,
    ) -> Result<Self, TransportError> {
        let hosts = peers.len();
        if hosts == 0 {
            return Err(TransportError::Config("empty peer list".into()));
        }
        if me >= hosts {
            return Err(TransportError::Config(format!(
                "host id {me} out of range for {hosts} host(s)"
            )));
        }

        // Accept concurrently with our own dials: every worker is doing
        // both at once, so neither side can afford to serialize them.
        let acceptor = std::thread::Builder::new()
            .name("tcp-accept".into())
            .spawn(move || accept_peers(listener, me, hosts, run_nonce, &opts))
            .expect("failed to spawn acceptor thread");

        let mut outbound: Vec<Option<Sender<Out>>> = (0..hosts).map(|_| None).collect();
        let mut writers = Vec::with_capacity(hosts.saturating_sub(1));
        let mut dial_err = None;
        for (peer, addr) in peers.iter().enumerate() {
            if peer == me {
                continue;
            }
            match dial(me, peer, addr, hosts, run_nonce, incarnation, &opts) {
                Ok(stream) => {
                    let (tx, rx) = unbounded();
                    outbound[peer] = Some(tx);
                    writers.push((peer, stream, rx));
                }
                Err(e) => {
                    dial_err = Some(e);
                    break;
                }
            }
        }
        // Join the acceptor even on a dial error: it owns the listener and
        // terminates at accept_timeout at the latest.
        let accepted = acceptor.join().expect("acceptor thread panicked");
        if let Some(e) = dial_err {
            return Err(e);
        }
        let (listener, accepted) = accepted?;

        let shared = Arc::new(TcpShared {
            me,
            hosts,
            run_nonce,
            incarnation,
            opts,
            peers: peers.to_vec(),
            start: Instant::now(),
            last_heard: (0..hosts).map(|_| AtomicU64::new(0)).collect(),
            fin_received: (0..hosts).map(|_| AtomicBool::new(false)).collect(),
            shutting_down: AtomicBool::new(false),
            fin_sent: AtomicBool::new(false),
            outbound: outbound.into_iter().map(Mutex::new).collect(),
            send_log: (0..hosts).map(|_| Mutex::new(Vec::new())).collect(),
            reader_socks: (0..hosts).map(|_| Mutex::new(None)).collect(),
            peer_incarnation: (0..hosts).map(|_| AtomicU32::new(0)).collect(),
            conn_gen: (0..hosts).map(|_| AtomicU64::new(0)).collect(),
            down_since: (0..hosts).map(|_| AtomicU64::new(0)).collect(),
            rejoins: AtomicU64::new(0),
            threads: Mutex::new(Vec::new()),
        });

        let mut inbound = Vec::with_capacity(accepted.len());
        for (peer, inc, stream) in accepted {
            shared.peer_incarnation[peer].store(inc, Ordering::Release);
            inbound.push((peer, stream));
        }
        // Peers proved alive during the handshake just now.
        for peer in 0..hosts {
            shared.heard(peer);
        }

        Ok(TcpTransport {
            shared,
            pending: Mutex::new(Some(Pending { inbound, writers })),
            listener: Mutex::new(opts.rejoin.then_some(listener)),
        })
    }
}

impl Transport for TcpTransport {
    fn start(&self, fabric: &Arc<Fabric>) {
        let Some(pending) = self.pending.lock().take() else {
            return;
        };
        // Snapshot the caller's trace attachment (if tracing is on) so the
        // I/O threads record their `peer_down` / `peer_rejoin` instants
        // into the same trace as the host thread.
        let obs = cusp_obs::current();
        let shared = &self.shared;
        let mut threads = shared.threads.lock();
        for (peer, stream, rx) in pending.writers {
            let interval = shared.opts.heartbeat_interval;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tcp-send-{peer}"))
                    .spawn(move || writer_loop(stream, rx, interval))
                    .expect("failed to spawn writer thread"),
            );
        }
        for (peer, stream) in pending.inbound {
            *shared.reader_socks[peer].lock() = stream.try_clone().ok();
            let fabric = Arc::clone(fabric);
            let shared = Arc::clone(shared);
            let obs = obs.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tcp-recv-{peer}"))
                    .spawn(move || {
                        let _obs = obs.as_ref().map(|a| a.attach("tcp-recv"));
                        reader_loop(stream, peer, 0, fabric, shared)
                    })
                    .expect("failed to spawn reader thread"),
            );
        }
        if shared.hosts > 1 {
            let fabric = Arc::clone(fabric);
            let shared = Arc::clone(shared);
            let obs = obs.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("tcp-monitor".into())
                    .spawn(move || {
                        let _obs = obs.as_ref().map(|a| a.attach("tcp-monitor"));
                        monitor_loop(fabric, shared)
                    })
                    .expect("failed to spawn monitor thread"),
            );
        }
        if let Some(listener) = self.listener.lock().take() {
            let fabric = Arc::clone(fabric);
            let shared = Arc::clone(shared);
            threads.push(
                std::thread::Builder::new()
                    .name("tcp-rejoin".into())
                    .spawn(move || {
                        let _obs = obs.as_ref().map(|a| a.attach("tcp-rejoin"));
                        rejoin_acceptor(listener, fabric, shared)
                    })
                    .expect("failed to spawn rejoin acceptor thread"),
            );
        }
    }

    fn ship(&self, _fabric: &Fabric, dst: HostId, tag: Tag, env: Envelope) {
        let frame = encode_envelope(tag.0, env.src as u64, env.phase, env.seq, &env.payload);
        let shared = &self.shared;
        if shared.opts.rejoin {
            shared.send_log[dst]
                .lock()
                .push((frame.clone(), env.payload.len() as u64));
        }
        if let Some(tx) = &*shared.outbound[dst].lock() {
            // A closed queue means the writer died with its peer; the run
            // is already being torn down and check_abort will surface it.
            // A down peer's slot is None: the frame stays in the send log
            // and is replayed wholesale at rejoin.
            let _ = tx.send(Out::Env(frame));
        }
    }

    fn barrier_wait(&self, fabric: &Fabric, host: HostId, n: u64) -> bool {
        // Announce over every connection *before* blocking. Queues are
        // FIFO per peer, so a peer observes all our pre-barrier envelopes
        // before our arrival — exactly the simulator's guarantee that
        // barrier release implies all prior traffic is in the mailboxes.
        for slot in &self.shared.outbound {
            if let Some(tx) = &*slot.lock() {
                let _ = tx.send(Out::Barrier(n));
            }
        }
        fabric.barrier.wait(host, n, || fabric.should_abort())
    }

    fn finish(&self, fabric: &Fabric, clean: bool) {
        if clean {
            self.shared.fin_sent.store(true, Ordering::Release);
        }
        for slot in &self.shared.outbound {
            if let Some(tx) = &*slot.lock() {
                let _ = tx.send(if clean { Out::Fin } else { Out::Abort });
            }
        }
        if clean {
            // Drain window: keep readers alive until every peer has FINed
            // (or died, or overstayed the timeout), so slower peers can
            // still pull our already-queued frames and barriers.
            let deadline = Instant::now() + self.shared.opts.fin_timeout;
            while Instant::now() < deadline && !fabric.should_abort() {
                let all = (0..self.shared.hosts)
                    .filter(|&p| p != self.shared.me)
                    .all(|p| self.shared.fin_received[p].load(Ordering::Acquire));
                if all {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        self.shared.shutting_down.store(true, Ordering::Release);
        loop {
            // Rejoin handlers may add writer/reader threads concurrently
            // with this join; drain until the list stays empty.
            let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.threads.lock());
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }

    fn rejoin_count(&self) -> u64 {
        self.shared.rejoins.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Frame I/O helpers
// ---------------------------------------------------------------------------

fn write_frame(w: &mut impl Write, kind: u8, body: &[u8]) -> std::io::Result<()> {
    w.write_all(&(1 + body.len() as u32).to_le_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(body)
}

/// Blocking read of one small frame during the handshake (the socket has a
/// read timeout set, so this is bounded).
fn read_handshake_frame(stream: &mut TcpStream) -> std::io::Result<(u8, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_HANDSHAKE_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("handshake frame length {len}"),
        ));
    }
    let mut frame = vec![0u8; len as usize];
    stream.read_exact(&mut frame)?;
    Ok((frame[0], frame[1..].to_vec()))
}

/// Outcome of a flag-aware socket read.
enum ReadOutcome {
    /// Buffer filled.
    Ok,
    /// Clean EOF before the first byte.
    Eof,
    /// The stop flag fired while blocked.
    Stopped,
    /// I/O error or EOF mid-buffer (a torn frame).
    Failed,
}

/// Fills `buf` from `r`, surfacing read timeouts as chances to observe
/// `stop` instead of data loss (unlike `read_exact`, which corrupts its
/// position on timeout).
fn read_full(r: &mut impl Read, buf: &mut [u8], stop: &impl Fn() -> bool) -> ReadOutcome {
    let mut off = 0;
    while off < buf.len() {
        match r.read(&mut buf[off..]) {
            Ok(0) => {
                return if off == 0 { ReadOutcome::Eof } else { ReadOutcome::Failed };
            }
            Ok(n) => off += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop() {
                    return ReadOutcome::Stopped;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Failed,
        }
    }
    ReadOutcome::Ok
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

fn hello_body(me: HostId, hosts: usize, run_nonce: u64, incarnation: u32) -> Bytes {
    let mut w = WireWriter::with_capacity(25);
    w.put_u32(MAGIC);
    w.put_u8(TCP_PROTOCOL_VERSION);
    w.put_u32(me as u32);
    w.put_u32(hosts as u32);
    w.put_u64(run_nonce);
    w.put_u32(incarnation);
    w.finish()
}

/// Dials `addr` until the peer answers (or the timeout), then runs the
/// HELLO/ACCEPT exchange.
fn dial(
    me: HostId,
    peer: HostId,
    addr: &str,
    hosts: usize,
    run_nonce: u64,
    incarnation: u32,
    opts: &TcpOptions,
) -> Result<TcpStream, TransportError> {
    let deadline = Instant::now() + opts.dial_timeout;
    let mut backoff = opts.dial_backoff;
    loop {
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(opts.handshake_timeout));
                let hs = |detail: String| TransportError::Handshake { peer, detail };
                write_frame(
                    &mut stream,
                    FRAME_HELLO,
                    &hello_body(me, hosts, run_nonce, incarnation),
                )
                .map_err(|e| hs(format!("cannot send HELLO: {e}")))?;
                let (kind, body) = read_handshake_frame(&mut stream)
                    .map_err(|e| hs(format!("no handshake reply: {e}")))?;
                return match kind {
                    FRAME_ACCEPT => {
                        let _ = stream.set_read_timeout(None);
                        Ok(stream)
                    }
                    FRAME_REJECT => {
                        let reason = body
                            .first()
                            .and_then(|&b| RejectReason::from_u8(b))
                            .unwrap_or(RejectReason::BadMagic);
                        Err(TransportError::Rejected { peer, reason })
                    }
                    other => Err(hs(format!("unexpected handshake frame kind {other}"))),
                };
            }
            Err(_) => {
                if Instant::now() >= deadline {
                    return Err(TransportError::DialTimeout { peer, addr: addr.to_string() });
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(500));
            }
        }
    }
}

/// Parses and checks the transport-level HELLO fields shared by the mesh
/// acceptor and the rejoin acceptor: magic, version, cluster shape, run
/// nonce. Returns the claimed `(host_id, incarnation)`; the caller applies
/// its own slot/staleness policy on top.
fn parse_hello(
    body: &[u8],
    me: HostId,
    hosts: usize,
    run_nonce: u64,
) -> Result<(HostId, u32), RejectReason> {
    let mut r = WireReader::new(Bytes::from(body.to_vec()));
    let magic = r.get_u32().map_err(|_| RejectReason::BadMagic)?;
    if magic != MAGIC {
        return Err(RejectReason::BadMagic);
    }
    let version = r.get_u8().map_err(|_| RejectReason::BadVersion)?;
    if version != TCP_PROTOCOL_VERSION {
        return Err(RejectReason::BadVersion);
    }
    let host_id = r.get_u32().map_err(|_| RejectReason::BadHostId)? as usize;
    let their_hosts = r.get_u32().map_err(|_| RejectReason::BadHosts)? as usize;
    let nonce = r.get_u64().map_err(|_| RejectReason::BadNonce)?;
    let incarnation = r.get_u32().map_err(|_| RejectReason::BadHostId)?;
    if their_hosts != hosts {
        return Err(RejectReason::BadHosts);
    }
    if nonce != run_nonce {
        return Err(RejectReason::BadNonce);
    }
    if host_id >= hosts || host_id == me {
        return Err(RejectReason::BadHostId);
    }
    Ok((host_id, incarnation))
}

/// Validates one inbound HELLO during mesh establishment. `Ok` accepts the
/// connection; `Err(reason)` is sent back in a REJECT frame.
fn validate_hello(
    body: &[u8],
    me: HostId,
    hosts: usize,
    run_nonce: u64,
    taken: &[bool],
) -> Result<(HostId, u32), RejectReason> {
    let (host_id, incarnation) = parse_hello(body, me, hosts, run_nonce)?;
    if taken[host_id] {
        return Err(RejectReason::BadHostId);
    }
    Ok((host_id, incarnation))
}

/// Accept loop: collects `hosts - 1` validated peer connections, returning
/// them together with the listener (kept for the rejoin acceptor).
/// Connections failing validation get a REJECT and are dropped without
/// consuming a slot; random strangers (port scans, stale workers) are
/// simply ignored.
#[allow(clippy::type_complexity)]
fn accept_peers(
    listener: TcpListener,
    me: HostId,
    hosts: usize,
    run_nonce: u64,
    opts: &TcpOptions,
) -> Result<(TcpListener, Vec<(HostId, u32, TcpStream)>), TransportError> {
    let mut taken = vec![false; hosts];
    let mut inbound = Vec::with_capacity(hosts.saturating_sub(1));
    listener
        .set_nonblocking(true)
        .map_err(TransportError::Bind)?;
    let deadline = Instant::now() + opts.accept_timeout;
    while inbound.len() < hosts - 1 {
        if Instant::now() >= deadline {
            return Err(TransportError::AcceptTimeout {
                missing: hosts - 1 - inbound.len(),
            });
        }
        let mut stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        // The accepted socket may inherit the listener's non-blocking
        // mode; the reader threads want plain blocking-with-timeout.
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(opts.handshake_timeout));
        let Ok((kind, body)) = read_handshake_frame(&mut stream) else {
            continue; // not a worker; drop silently
        };
        if kind != FRAME_HELLO {
            continue;
        }
        match validate_hello(&body, me, hosts, run_nonce, &taken) {
            Ok((peer, inc)) => {
                if write_frame(&mut stream, FRAME_ACCEPT, &[]).is_err() {
                    continue;
                }
                taken[peer] = true;
                inbound.push((peer, inc, stream));
            }
            Err(reason) => {
                let _ = write_frame(&mut stream, FRAME_REJECT, &[reason as u8]);
                // Dropped: the dialer sees the REJECT and errors out.
            }
        }
    }
    Ok((listener, inbound))
}

// ---------------------------------------------------------------------------
// Rejoin
// ---------------------------------------------------------------------------

/// Answers HELLOs on the retained mesh listener for the rest of the run:
/// a peer redialing with the right nonce and a strictly newer incarnation
/// is re-admitted to the mesh; anything else gets a typed REJECT (or is
/// ignored, for non-protocol garbage). Runs until shutdown or abort.
fn rejoin_acceptor(listener: TcpListener, fabric: Arc<Fabric>, shared: Arc<TcpShared>) {
    // `establish` left the listener non-blocking; keep polling it.
    loop {
        if shared.stopped(&fabric) {
            return;
        }
        let mut stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                std::thread::sleep(REJOIN_POLL);
                continue;
            }
        };
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(shared.opts.handshake_timeout));
        let Ok((kind, body)) = read_handshake_frame(&mut stream) else {
            continue;
        };
        if kind != FRAME_HELLO {
            continue;
        }
        match validate_rejoin(&body, &shared) {
            Ok((peer, inc)) => {
                if write_frame(&mut stream, FRAME_ACCEPT, &[]).is_err() {
                    continue;
                }
                handle_rejoin(&fabric, &shared, peer, inc, stream);
            }
            Err(reason) => {
                let _ = write_frame(&mut stream, FRAME_REJECT, &[reason as u8]);
            }
        }
    }
}

/// Rejoin admission policy: protocol fields must match the run, and the
/// claimed incarnation must be strictly newer than the last one accepted
/// for that peer (equal or older = a stale duplicate, not a respawn).
fn validate_rejoin(body: &[u8], shared: &TcpShared) -> Result<(HostId, u32), RejectReason> {
    let (peer, inc) =
        parse_hello(body, shared.me, shared.hosts, shared.run_nonce)?;
    admit_incarnation(inc, shared.peer_incarnation[peer].load(Ordering::Acquire))?;
    Ok((peer, inc))
}

/// The rejoin staleness rule, isolated so the property battery can pin it:
/// only a strictly newer incarnation supersedes the last admitted one.
fn admit_incarnation(claimed: u32, last_admitted: u32) -> Result<(), RejectReason> {
    if claimed <= last_admitted {
        return Err(RejectReason::StaleIncarnation);
    }
    Ok(())
}

/// Test-support access to the pure handshake codec: the exact encode /
/// parse / admission functions the dialer and both acceptors use, without
/// opening sockets. Hidden — not part of the supported API.
#[doc(hidden)]
pub mod hello_codec {
    use super::HostId;
    use crate::transport::RejectReason;

    pub fn admit_incarnation(claimed: u32, last_admitted: u32) -> Result<(), RejectReason> {
        super::admit_incarnation(claimed, last_admitted)
    }

    /// Byte offsets of the HELLO fields, for targeted corruption.
    pub const MAGIC_RANGE: std::ops::Range<usize> = 0..4;
    pub const VERSION_RANGE: std::ops::Range<usize> = 4..5;
    pub const HOST_ID_RANGE: std::ops::Range<usize> = 5..9;
    pub const HOSTS_RANGE: std::ops::Range<usize> = 9..13;
    pub const NONCE_RANGE: std::ops::Range<usize> = 13..21;
    pub const INCARNATION_RANGE: std::ops::Range<usize> = 21..25;
    pub const HELLO_LEN: usize = 25;

    pub fn encode_hello(me: HostId, hosts: usize, run_nonce: u64, incarnation: u32) -> Vec<u8> {
        super::hello_body(me, hosts, run_nonce, incarnation).to_vec()
    }

    pub fn parse_hello(
        body: &[u8],
        me: HostId,
        hosts: usize,
        run_nonce: u64,
    ) -> Result<(HostId, u32), RejectReason> {
        super::parse_hello(body, me, hosts, run_nonce)
    }
}

/// Splices a reconnecting peer back into the mesh: supersede the stale
/// connection pair, re-dial the peer's listener, replay the send log on
/// the fresh outbound socket, re-announce our barrier arrival (and FIN, if
/// we already finished), and stand up new writer/reader threads.
fn handle_rejoin(
    fabric: &Arc<Fabric>,
    shared: &Arc<TcpShared>,
    peer: HostId,
    inc: u32,
    stream: TcpStream,
) {
    shared.peer_incarnation[peer].store(inc, Ordering::Release);
    // Invalidate the previous connection generation: the old reader's
    // eventual death report becomes a no-op, and shutting its socket here
    // kicks it out of any blocking read promptly.
    let gen = shared.conn_gen[peer].fetch_add(1, Ordering::AcqRel) + 1;
    if let Some(s) = shared.reader_socks[peer].lock().take() {
        let _ = s.shutdown(Shutdown::Both);
    }
    shared.fin_received[peer].store(false, Ordering::Release);
    shared.heard(peer);

    // Re-dial while holding the outbound slot: any `ship` that logged its
    // frame before we snapshot the log below is covered by the replay, and
    // any later `ship` blocks on the slot until the fresh queue is
    // installed — no frame can fall between the two.
    let mut slot = shared.outbound[peer].lock();
    *slot = None;
    match redial_for_rejoin(shared, fabric, peer) {
        Some(out_stream) => {
            let (tx, rx) = unbounded();
            {
                let log = shared.send_log[peer].lock();
                for (frame, payload_bytes) in log.iter() {
                    let _ = tx.send(Out::Env(frame.clone()));
                    fabric.stats.record_replayed(*payload_bytes);
                }
            }
            let arrived = fabric.barrier.arrived(shared.me);
            if arrived > 0 {
                let _ = tx.send(Out::Barrier(arrived));
            }
            if shared.fin_sent.load(Ordering::Acquire) {
                let _ = tx.send(Out::Fin);
            }
            let interval = shared.opts.heartbeat_interval;
            let writer = std::thread::Builder::new()
                .name(format!("tcp-send-{peer}-i{inc}"))
                .spawn(move || writer_loop(out_stream, rx, interval))
                .expect("failed to spawn rejoin writer thread");
            shared.threads.lock().push(writer);
            *slot = Some(tx);
            shared.down_since[peer].store(0, Ordering::Release);
        }
        None => {
            // Could not dial back (the peer died again mid-rejoin, or we
            // are shutting down). Leave the peer down with a fresh stamp;
            // the next rejoin or the down-window expiry decides its fate.
            shared.down_since[peer].store(shared.now_ms() + 1, Ordering::Release);
        }
    }
    drop(slot);

    *shared.reader_socks[peer].lock() = stream.try_clone().ok();
    let reader = {
        let fabric = Arc::clone(fabric);
        let shared_r = Arc::clone(shared);
        // Runs on the (attached, if tracing) rejoin acceptor thread, so
        // the fresh reader inherits the same trace.
        let obs = cusp_obs::current();
        std::thread::Builder::new()
            .name(format!("tcp-recv-{peer}-i{inc}"))
            .spawn(move || {
                let _obs = obs.as_ref().map(|a| a.attach("tcp-recv"));
                reader_loop(stream, peer, gen, fabric, shared_r)
            })
            .expect("failed to spawn rejoin reader thread")
    };
    shared.threads.lock().push(reader);
    shared.rejoins.fetch_add(1, Ordering::Relaxed);
    cusp_obs::instant("peer_rejoin", inc as u64);
}

/// Dials a rejoining peer's listener back (our fresh outbound simplex
/// half), bounded and shutdown-aware. `None` on failure.
fn redial_for_rejoin(
    shared: &TcpShared,
    fabric: &Fabric,
    peer: HostId,
) -> Option<TcpStream> {
    let deadline = Instant::now() + shared.opts.dial_timeout;
    let mut backoff = shared.opts.dial_backoff;
    loop {
        if shared.stopped(fabric) || Instant::now() >= deadline {
            return None;
        }
        match dial(
            shared.me,
            peer,
            &shared.peers[peer],
            shared.hosts,
            shared.run_nonce,
            shared.incarnation,
            &shared.opts,
        ) {
            Ok(stream) => return Some(stream),
            Err(_) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(500));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime threads
// ---------------------------------------------------------------------------

/// Drains one peer's outbound queue onto its socket, heartbeating when
/// idle. Exits on FIN (clean), Abort (unclean, no FIN), queue closure, or
/// write error (the peer is gone; its reader/monitor handles diagnosis).
fn writer_loop(stream: TcpStream, rx: Receiver<Out>, heartbeat: Duration) {
    let mut w = BufWriter::with_capacity(64 << 10, stream);
    loop {
        match rx.recv_timeout(heartbeat) {
            Ok(Out::Env(frame)) => {
                if write_frame(&mut w, FRAME_ENVELOPE, &frame).is_err() {
                    return;
                }
                if rx.is_empty() && w.flush().is_err() {
                    return;
                }
            }
            Ok(Out::Barrier(n)) => {
                if write_frame(&mut w, FRAME_BARRIER, &n.to_le_bytes()).is_err()
                    || w.flush().is_err()
                {
                    return;
                }
            }
            Ok(Out::Fin) => {
                let _ = write_frame(&mut w, FRAME_FIN, &[]);
                let _ = w.flush();
                let _ = w.get_ref().shutdown(Shutdown::Write);
                return;
            }
            Ok(Out::Abort) => return,
            Err(RecvTimeoutError::Timeout) => {
                if write_frame(&mut w, FRAME_HEARTBEAT, &[]).is_err() || w.flush().is_err() {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Decodes frames from one peer and feeds them to the fabric: envelopes
/// go through the regular dispatch (fault layer included), barrier
/// announcements into the shared arrival table. Any protocol violation —
/// torn frame, corrupt envelope, absurd length, EOF without FIN — reports
/// the connection failed on generation `gen`: terminal without rejoin, the
/// start of a down window with it.
fn reader_loop(
    stream: TcpStream,
    peer: HostId,
    gen: u64,
    fabric: Arc<Fabric>,
    shared: Arc<TcpShared>,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut r = BufReader::with_capacity(64 << 10, stream);
    let stop = || shared.stopped(&fabric);
    let finned = || shared.fin_received[peer].load(Ordering::Acquire);
    let mut len_buf = [0u8; 4];
    loop {
        match read_full(&mut r, &mut len_buf, &stop) {
            ReadOutcome::Ok => {}
            ReadOutcome::Stopped => return,
            ReadOutcome::Eof | ReadOutcome::Failed => {
                if !finned() && !stop() {
                    peer_failed(&fabric, &shared, peer, gen);
                }
                return;
            }
        }
        let len = u32::from_le_bytes(len_buf);
        if len == 0 || len > MAX_FRAME {
            peer_failed(&fabric, &shared, peer, gen);
            return;
        }
        let mut frame = vec![0u8; len as usize];
        match read_full(&mut r, &mut frame, &stop) {
            ReadOutcome::Ok => {}
            ReadOutcome::Stopped => return,
            ReadOutcome::Eof | ReadOutcome::Failed => {
                // A frame torn mid-body is never clean, FIN or not.
                if !stop() {
                    peer_failed(&fabric, &shared, peer, gen);
                }
                return;
            }
        }
        if gen < shared.conn_gen[peer].load(Ordering::Acquire) {
            // Superseded mid-frame by a rejoin; stop feeding stale data.
            return;
        }
        shared.heard(peer);
        let kind = frame[0];
        match kind {
            FRAME_ENVELOPE => {
                let body = Bytes::from(frame).slice(1..);
                match decode_envelope(body) {
                    Ok(we) if (we.tag as usize) < MAX_TAGS && we.src as usize == peer => {
                        fabric.dispatch(
                            shared.me,
                            Tag(we.tag),
                            Envelope {
                                src: peer,
                                seq: we.seq,
                                phase: we.phase,
                                payload: we.payload,
                            },
                        );
                    }
                    _ => {
                        peer_failed(&fabric, &shared, peer, gen);
                        return;
                    }
                }
            }
            FRAME_BARRIER => {
                if frame.len() != 9 {
                    peer_failed(&fabric, &shared, peer, gen);
                    return;
                }
                let mut arr = [0u8; 8];
                arr.copy_from_slice(&frame[1..9]);
                fabric.barrier.announce(peer, u64::from_le_bytes(arr));
            }
            FRAME_HEARTBEAT => {}
            FRAME_FIN => {
                shared.fin_received[peer].store(true, Ordering::Release);
            }
            _ => {
                peer_failed(&fabric, &shared, peer, gen);
                return;
            }
        }
    }
}

/// Watches peer liveness. A peer silent past `peer_timeout` without FIN is
/// declared lost (no rejoin) or marked down (rejoin); a peer down past
/// `rejoin_window` is lost either way. Socket-level failures are caught
/// faster by the readers; this net catches peers that hang without dying.
fn monitor_loop(fabric: Arc<Fabric>, shared: Arc<TcpShared>) {
    let silence_ms = shared.opts.peer_timeout.as_millis() as u64;
    let window_ms = shared.opts.rejoin_window.as_millis() as u64;
    loop {
        std::thread::sleep(MONITOR_POLL);
        if shared.stopped(&fabric) {
            return;
        }
        let now = shared.now_ms();
        let mut all_fin = true;
        for peer in (0..shared.hosts).filter(|&p| p != shared.me) {
            if shared.fin_received[peer].load(Ordering::Acquire) {
                continue;
            }
            all_fin = false;
            let down = shared.down_since[peer].load(Ordering::Acquire);
            if down != 0 {
                if now.saturating_sub(down - 1) > window_ms {
                    fabric.mark_remote_lost(peer);
                    return;
                }
                continue;
            }
            if now.saturating_sub(shared.last_heard[peer].load(Ordering::Acquire)) > silence_ms {
                let gen = shared.conn_gen[peer].load(Ordering::Acquire);
                peer_failed(&fabric, &shared, peer, gen);
                if !shared.opts.rejoin {
                    return;
                }
            }
        }
        if all_fin {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterOptions};
    use crate::recovery::ClusterError;

    /// Options tuned so a failed establish errors out in test time rather
    /// than wall-clock seconds.
    fn fast_opts() -> TcpOptions {
        TcpOptions {
            dial_timeout: Duration::from_secs(2),
            accept_timeout: Duration::from_secs(2),
            handshake_timeout: Duration::from_secs(2),
            ..TcpOptions::default()
        }
    }

    fn bind() -> (TcpListener, String) {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l.local_addr().expect("local addr").to_string();
        (l, addr)
    }

    /// Starts `TcpTransport::establish` for host 0 of a 2-host cluster in
    /// a background thread and returns its listen address plus the join
    /// handle, so a raw scripted "host 1" can talk to it.
    fn establish_host0(
        nonce: u64,
    ) -> (String, std::thread::JoinHandle<Result<TcpTransport, TransportError>>, String) {
        let (l0, a0) = bind();
        let (l1, a1) = bind();
        drop(l1); // host 1 is played by the raw script, not a transport
        let peers = vec![a0.clone(), a1.clone()];
        let h = std::thread::spawn(move || {
            TcpTransport::establish(0, l0, &peers, nonce, fast_opts())
        });
        (a0, h, a1)
    }

    /// Raw host-1 side of the handshake: dial host 0 with a HELLO built by
    /// `mutate` and return the reply frame kind + body.
    fn dial_raw(addr: &str, mutate: impl FnOnce(&mut Vec<u8>)) -> (u8, Vec<u8>) {
        let mut s = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        };
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut hello = hello_body(1, 2, 77, 0).to_vec();
        mutate(&mut hello);
        write_frame(&mut s, FRAME_HELLO, &hello).unwrap();
        let (kind, body) = read_handshake_frame(&mut s).expect("handshake reply");
        (kind, body)
    }

    #[test]
    fn handshake_rejects_wrong_version_then_accepts_a_valid_peer() {
        let (a0, h, _a1) = establish_host0(77);
        // Bad protocol version → REJECT(BadVersion), and the slot is not
        // consumed: a follow-up valid HELLO still completes the mesh.
        let (kind, body) = dial_raw(&a0, |hello| hello[4] = TCP_PROTOCOL_VERSION + 1);
        assert_eq!(kind, FRAME_REJECT);
        assert_eq!(RejectReason::from_u8(body[0]), Some(RejectReason::BadVersion));
        let (kind, _) = dial_raw(&a0, |_| {});
        assert_eq!(kind, FRAME_ACCEPT);
        // Host 0 still needs its own outbound dial to succeed; play the
        // accepting side for it.
        let t = h.join().unwrap();
        match t {
            Err(TransportError::DialTimeout { peer: 1, .. }) => {}
            Err(e) => panic!("unexpected establish error: {e}"),
            Ok(_) => panic!("establish cannot succeed: nobody listened for host 0's dial"),
        }
    }

    #[test]
    fn handshake_rejects_wrong_nonce_and_magic() {
        let (a0, h, _a1) = establish_host0(77);
        let (kind, body) = dial_raw(&a0, |hello| hello[13] ^= 0xFF); // nonce byte
        assert_eq!(kind, FRAME_REJECT);
        assert_eq!(RejectReason::from_u8(body[0]), Some(RejectReason::BadNonce));
        let (kind, body) = dial_raw(&a0, |hello| hello[0] ^= 0xFF); // magic byte
        assert_eq!(kind, FRAME_REJECT);
        assert_eq!(RejectReason::from_u8(body[0]), Some(RejectReason::BadMagic));
        let (kind, body) = dial_raw(&a0, |hello| hello[9] = 3); // hosts = 3, not 2
        assert_eq!(kind, FRAME_REJECT);
        assert_eq!(RejectReason::from_u8(body[0]), Some(RejectReason::BadHosts));
        let (kind, body) = dial_raw(&a0, |hello| hello[5] = 0); // host id = ours
        assert_eq!(kind, FRAME_REJECT);
        assert_eq!(RejectReason::from_u8(body[0]), Some(RejectReason::BadHostId));
        drop(h.join().unwrap()); // DialTimeout; nothing listened for host 0
    }

    #[test]
    fn dialer_surfaces_nonce_rejection_as_typed_error() {
        // A real host 0 dialing a "cluster" whose host 1 runs a different
        // nonce must get TransportError::Rejected, not a hang.
        let (l1, a1) = bind();
        let (l0, a0) = bind();
        let peers = vec![a0, a1];
        let acceptor = std::thread::spawn(move || {
            accept_peers(l1, 1, 2, 9999, &fast_opts()) // nonce 9999 ≠ 77
        });
        let got = TcpTransport::establish(0, l0, &peers, 77, fast_opts());
        match got {
            Err(TransportError::Rejected { peer: 1, reason: RejectReason::BadNonce }) => {}
            Err(e) => panic!("wanted Rejected(BadNonce), got: {e}"),
            Ok(_) => panic!("establish must fail across a nonce mismatch"),
        }
        // The scripted acceptor times out (host 0 gave up after the
        // rejection and never retried with the right nonce).
        assert!(matches!(acceptor.join().unwrap(), Err(TransportError::AcceptTimeout { .. })));
    }

    /// Full raw "host 1": completes both handshake directions against a
    /// real host 0, then runs `script` on the connection host 0 reads
    /// from. Returns the socket host 0 writes to (kept open so host 0's
    /// writer does not error early).
    fn raw_peer(
        l1: TcpListener,
        a0: String,
        script: impl FnOnce(&mut TcpStream) + Send + 'static,
    ) -> std::thread::JoinHandle<TcpStream> {
        std::thread::spawn(move || {
            // Accept host 0's outbound dial and ACCEPT its HELLO.
            let (mut from0, _) = l1.accept().expect("host 0 dials us");
            from0.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let (kind, _) = read_handshake_frame(&mut from0).unwrap();
            assert_eq!(kind, FRAME_HELLO);
            write_frame(&mut from0, FRAME_ACCEPT, &[]).unwrap();
            // Dial host 0 with our own valid HELLO.
            let mut to0 = TcpStream::connect(&a0).expect("dial host 0");
            to0.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            write_frame(&mut to0, FRAME_HELLO, &hello_body(1, 2, 77, 0)).unwrap();
            let (kind, _) = read_handshake_frame(&mut to0).unwrap();
            assert_eq!(kind, FRAME_ACCEPT);
            script(&mut to0);
            from0
        })
    }

    #[test]
    fn torn_frame_tears_the_connection_down_with_floor_intact() {
        let (l0, a0) = bind();
        let (l1, a1) = bind();
        let peers = vec![a0.clone(), a1];
        let peer = raw_peer(l1, a0, |s| {
            // One valid envelope (seq 0), then a frame whose length prefix
            // claims 100 bytes but whose body is cut off mid-way.
            let env = encode_envelope(0, 1, 0, 0, b"before the tear");
            write_frame(s, FRAME_ENVELOPE, &env).unwrap();
            s.write_all(&100u32.to_le_bytes()).unwrap();
            s.write_all(&[FRAME_ENVELOPE, 0, 0, 0]).unwrap();
            s.flush().unwrap();
            let _ = s.shutdown(Shutdown::Write);
        });
        let transport =
            TcpTransport::establish(0, l0, &peers, 77, fast_opts()).expect("mesh up");
        let got = Cluster::try_run_tcp(transport, ClusterOptions::default(), |comm| {
            // The message in front of the tear is delivered in sequence...
            let (src, payload) = comm.recv_any(Tag(0));
            assert_eq!((src, &payload[..]), (1, &b"before the tear"[..]));
            // ...and the next receive unwinds with a typed loss instead of
            // hanging on the dead connection.
            comm.recv_any(Tag(0))
        });
        match got {
            Err(ClusterError::HostLost { host: 1, restarts: 0 }) => {}
            Err(e) => panic!("wanted HostLost for host 1, got: {e}"),
            Ok(_) => panic!("run must not complete past a torn frame"),
        }
        let _ = peer.join();
    }

    #[test]
    fn peer_death_without_fin_is_host_lost_not_a_hang() {
        let (l0, a0) = bind();
        let (l1, a1) = bind();
        let peers = vec![a0.clone(), a1];
        let peer = raw_peer(l1, a0, |s| {
            // Die abruptly: close with no FIN frame, mid-phase.
            let _ = s.shutdown(Shutdown::Both);
        });
        let transport =
            TcpTransport::establish(0, l0, &peers, 77, fast_opts()).expect("mesh up");
        let got = Cluster::try_run_tcp(transport, ClusterOptions::default(), |comm| {
            comm.recv_any(Tag(0)) // would block forever on a hanging transport
        });
        assert!(matches!(got, Err(ClusterError::HostLost { host: 1, restarts: 0 })), "typed loss");
        let _ = peer.join();
    }

    #[test]
    fn corrupt_envelope_version_is_a_protocol_error() {
        let (l0, a0) = bind();
        let (l1, a1) = bind();
        let peers = vec![a0.clone(), a1];
        let peer = raw_peer(l1, a0, |s| {
            let mut env = encode_envelope(0, 1, 0, 0, b"x").to_vec();
            env[0] = 42; // not ENVELOPE_VERSION
            write_frame(s, FRAME_ENVELOPE, &env).unwrap();
            s.flush().unwrap();
        });
        let transport =
            TcpTransport::establish(0, l0, &peers, 77, fast_opts()).expect("mesh up");
        let got = Cluster::try_run_tcp(transport, ClusterOptions::default(), |comm| {
            comm.recv_any(Tag(0))
        });
        assert!(matches!(got, Err(ClusterError::HostLost { host: 1, restarts: 0 })));
        let _ = peer.join();
    }

    // -- rejoin ------------------------------------------------------------

    fn rejoin_opts() -> TcpOptions {
        TcpOptions {
            rejoin: true,
            rejoin_window: Duration::from_secs(20),
            ..fast_opts()
        }
    }

    /// Blocking read of one full data frame on a raw test socket,
    /// skipping heartbeats. Panics on EOF/timeout.
    fn read_data_frame(s: &mut TcpStream) -> (u8, Vec<u8>) {
        loop {
            let mut len_buf = [0u8; 4];
            s.read_exact(&mut len_buf).expect("frame length");
            let len = u32::from_le_bytes(len_buf);
            assert!(len > 0 && len <= MAX_FRAME, "bogus frame length {len}");
            let mut frame = vec![0u8; len as usize];
            s.read_exact(&mut frame).expect("frame body");
            if frame[0] == FRAME_HEARTBEAT {
                continue;
            }
            return (frame[0], frame[1..].to_vec());
        }
    }

    /// The tentpole path, at the transport level: a raw host 1 meshes up,
    /// receives one envelope, dies without FIN, then "respawns" — redials
    /// with a stale incarnation (rejected), then with incarnation 1
    /// (accepted). Host 0 must re-dial it, replay the logged envelope,
    /// accept its post-rejoin message, and complete the run cleanly.
    #[test]
    fn dead_peer_rejoins_with_newer_incarnation_and_gets_the_log_replayed() {
        let (l0, a0) = bind();
        let (l1, a1) = bind();
        let peers = vec![a0.clone(), a1.clone()];
        let nonce = 77;

        let script = std::thread::spawn(move || {
            // ---- incarnation 0: mesh up, read one envelope, die.
            let (mut from0, _) = l1.accept().expect("host 0 dials us");
            from0.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let (kind, _) = read_handshake_frame(&mut from0).unwrap();
            assert_eq!(kind, FRAME_HELLO);
            write_frame(&mut from0, FRAME_ACCEPT, &[]).unwrap();
            let mut to0 = TcpStream::connect(&a0).expect("dial host 0");
            to0.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            write_frame(&mut to0, FRAME_HELLO, &hello_body(1, 2, nonce, 0)).unwrap();
            let (kind, _) = read_handshake_frame(&mut to0).unwrap();
            assert_eq!(kind, FRAME_ACCEPT);
            let (kind, body) = read_data_frame(&mut from0);
            assert_eq!(kind, FRAME_ENVELOPE);
            let we = decode_envelope(Bytes::from(body)).expect("envelope decodes");
            assert_eq!(&we.payload[..], b"payload-A");
            // SIGKILL equivalent: both simplex halves die, no FIN.
            let _ = from0.shutdown(Shutdown::Both);
            let _ = to0.shutdown(Shutdown::Both);
            drop(from0);
            drop(to0);

            // ---- a stale duplicate (same incarnation) must be refused.
            let mut stale = TcpStream::connect(&a0).expect("redial host 0");
            stale.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            write_frame(&mut stale, FRAME_HELLO, &hello_body(1, 2, nonce, 0)).unwrap();
            let (kind, body) = read_handshake_frame(&mut stale).unwrap();
            assert_eq!(kind, FRAME_REJECT);
            assert_eq!(
                RejectReason::from_u8(body[0]),
                Some(RejectReason::StaleIncarnation)
            );
            drop(stale);

            // ---- incarnation 1: the legitimate respawn.
            let mut to0 = TcpStream::connect(&a0).expect("redial host 0");
            to0.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            write_frame(&mut to0, FRAME_HELLO, &hello_body(1, 2, nonce, 1)).unwrap();
            let (kind, _) = read_handshake_frame(&mut to0).unwrap();
            assert_eq!(kind, FRAME_ACCEPT);
            // Host 0 re-dials our listener with its own HELLO...
            let (mut from0, _) = l1.accept().expect("host 0 re-dials us");
            from0.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let (kind, body) = read_handshake_frame(&mut from0).unwrap();
            assert_eq!(kind, FRAME_HELLO);
            let (host, inc) = parse_hello(&body, 1, 2, nonce).expect("valid re-dial HELLO");
            assert_eq!((host, inc), (0, 0));
            write_frame(&mut from0, FRAME_ACCEPT, &[]).unwrap();
            // ...and replays its send log: the envelope again, same seq.
            let (kind, body) = read_data_frame(&mut from0);
            assert_eq!(kind, FRAME_ENVELOPE);
            let we = decode_envelope(Bytes::from(body)).expect("replayed envelope decodes");
            assert_eq!((we.seq, &we.payload[..]), (0, &b"payload-A"[..]));
            // Answer so host 0's blocked receive completes, then FIN.
            let env = encode_envelope(1, 1, 0, 0, b"hello-again");
            write_frame(&mut to0, FRAME_ENVELOPE, &env).unwrap();
            write_frame(&mut to0, FRAME_FIN, &[]).unwrap();
            to0.flush().unwrap();
            // Hold the sockets open until host 0 FINs back.
            let (kind, _) = read_data_frame(&mut from0);
            assert_eq!(kind, FRAME_FIN);
        });

        let transport =
            TcpTransport::establish(0, l0, &peers, nonce, rejoin_opts()).expect("mesh up");
        let out = Cluster::try_run_tcp(transport, ClusterOptions::default(), |comm| {
            comm.send_bytes(1, Tag(0), Bytes::from_static(b"payload-A"));
            let (src, payload) = comm.recv_any(Tag(1));
            assert_eq!((src, &payload[..]), (1, &b"hello-again"[..]));
        })
        .expect("run completes across the rejoin");
        assert_eq!(out.rejoins, 1, "one rejoin handshake accepted");
        assert!(
            out.stats.replayed_bytes() > 0,
            "replayed traffic is accounted outside the phase matrices"
        );
        script.join().expect("script peer");
    }

    #[test]
    fn down_peer_that_never_rejoins_is_lost_after_the_window() {
        let (l0, a0) = bind();
        let (l1, a1) = bind();
        let peers = vec![a0.clone(), a1];
        let peer = raw_peer(l1, a0, |s| {
            let _ = s.shutdown(Shutdown::Both);
        });
        let opts = TcpOptions {
            rejoin_window: Duration::from_millis(300),
            ..rejoin_opts()
        };
        let transport = TcpTransport::establish(0, l0, &peers, 77, opts).expect("mesh up");
        let t = Instant::now();
        let got = Cluster::try_run_tcp(transport, ClusterOptions::default(), |comm| {
            comm.recv_any(Tag(0))
        });
        let err = got.map(|out| out.result).expect_err("run must fail");
        assert!(
            matches!(err, ClusterError::HostLost { host: 1, restarts: 0 }),
            "typed loss after the rejoin window, got {err:?}"
        );
        assert!(
            t.elapsed() < Duration::from_secs(10),
            "the down window must be bounded, not a hang"
        );
        let _ = peer.join();
    }
}
