//! The transport abstraction: how envelopes move between hosts.
//!
//! Everything above this line — [`crate::Comm`]'s send/recv surface,
//! sequence numbering, the resequencer and its dedup floors, fault
//! injection, and [`crate::CommStats`] accounting — is transport-agnostic.
//! A [`Transport`] implementation only has to do two things:
//!
//! 1. **ship** an [`Envelope`](crate::cluster) toward a remote host, and
//! 2. **wait** at a monotone barrier until every host has arrived.
//!
//! Two implementations exist:
//!
//! - [`LocalTransport`] — the in-process simulator (the default). All
//!   hosts share one [`Fabric`]; shipping is a direct push into the
//!   destination's mailbox through the fault layer, and the barrier is the
//!   shared in-memory [`FabricBarrier`](crate::cluster). A zero-sized type:
//!   every bit of its state already lives in the fabric.
//! - [`tcp::TcpTransport`] — one OS process per host, length-delimited
//!   frames over TCP. Shipping encodes the envelope with the versioned
//!   little-endian codec ([`crate::serialize::encode_envelope`]) and hands
//!   it to a per-peer writer thread; reader threads decode inbound frames
//!   and feed the *same* dispatch/fault/resequencer path the simulator
//!   uses, and the barrier is a broadcast control frame driving the same
//!   monotone arrival table.
//!
//! The fidelity claim — a TCP run is indistinguishable from a simulated
//! one above the transport line — is what `tests/cross_process.rs`
//! verifies end to end by comparing partition fingerprints.

use std::sync::Arc;

use crate::cluster::{Envelope, Fabric, HostId, Tag};

pub mod tcp;

pub use tcp::{TcpOptions, TcpTransport, TCP_PROTOCOL_VERSION};

/// Moves envelopes between hosts and synchronizes barriers.
///
/// Implementations must be cheap to call concurrently: `ship` is invoked
/// from pool worker threads during parallel serialization.
pub(crate) trait Transport: Send + Sync {
    /// Spawns any background machinery (reader/writer threads) once the
    /// fabric exists behind its `Arc`. Infallible by construction: all
    /// fallible work (binding, dialing, handshakes) happens before the
    /// transport is handed to the cluster.
    fn start(&self, _fabric: &Arc<Fabric>) {}

    /// Moves `env` toward remote host `dst` (`dst != env.src`; loopback is
    /// handled above the transport, through the envelope codec).
    fn ship(&self, fabric: &Fabric, dst: HostId, tag: Tag, env: Envelope);

    /// Announces `host`'s `n`-th barrier arrival and blocks until every
    /// host has arrived at least `n` times. Returns `false` if the run
    /// aborted (peer panic or host lost) before the barrier completed.
    fn barrier_wait(&self, fabric: &Fabric, host: HostId, n: u64) -> bool;

    /// Tears the transport down after the host function ends. `clean` is
    /// true when the host completed normally (send FIN, wait for peers)
    /// and false on an unwind (drop connections so peers detect the loss
    /// instead of hanging).
    fn finish(&self, _fabric: &Fabric, _clean: bool) {}

    /// How many dead peers reconnected mid-run (TCP rejoin handshakes
    /// this transport accepted). Zero for transports without a process
    /// boundary to recover across.
    fn rejoin_count(&self) -> u64 {
        0
    }
}

/// The in-process channel simulator: all hosts live in one process and
/// share the fabric, so shipping is a direct mailbox push and the barrier
/// is the fabric's shared arrival table.
pub(crate) struct LocalTransport;

impl Transport for LocalTransport {
    fn ship(&self, fabric: &Fabric, dst: HostId, tag: Tag, env: Envelope) {
        fabric.dispatch(dst, tag, env);
    }

    fn barrier_wait(&self, fabric: &Fabric, host: HostId, n: u64) -> bool {
        fabric.barrier.wait(host, n, || fabric.should_abort())
    }
}

/// Why a TCP transport could not be established or operated.
#[derive(Debug)]
pub enum TransportError {
    /// Could not bind the listener.
    Bind(std::io::Error),
    /// Could not reach `peer` before the dial timeout elapsed.
    DialTimeout {
        /// The peer that never answered.
        peer: HostId,
        /// The address dialed.
        addr: String,
    },
    /// The peer accepted the connection but rejected the handshake.
    Rejected {
        /// The rejecting peer.
        peer: HostId,
        /// Why it said no.
        reason: RejectReason,
    },
    /// The handshake exchange itself failed or was malformed.
    Handshake {
        /// The peer being handshaken with.
        peer: HostId,
        /// Human-readable detail.
        detail: String,
    },
    /// Fewer than `hosts - 1` valid peers dialed in before the accept
    /// timeout.
    AcceptTimeout {
        /// How many inbound peer connections never arrived.
        missing: usize,
    },
    /// Invalid transport configuration (host id out of range, duplicate
    /// addresses, ...).
    Config(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Bind(e) => write!(f, "cannot bind listener: {e}"),
            TransportError::DialTimeout { peer, addr } => {
                write!(f, "host {peer} at {addr} unreachable before dial timeout")
            }
            TransportError::Rejected { peer, reason } => {
                write!(f, "host {peer} rejected the handshake: {reason}")
            }
            TransportError::Handshake { peer, detail } => {
                write!(f, "handshake with host {peer} failed: {detail}")
            }
            TransportError::AcceptTimeout { missing } => {
                write!(f, "{missing} peer(s) never connected before the accept timeout")
            }
            TransportError::Config(msg) => write!(f, "invalid transport config: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Why an acceptor refused a HELLO. The discriminant travels in the
/// REJECT frame body, so the dialer can report the mismatch precisely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectReason {
    /// The magic bytes did not spell CUSP.
    BadMagic = 1,
    /// Protocol version mismatch.
    BadVersion = 2,
    /// The dialer belongs to a different run (`run_nonce` mismatch).
    BadNonce = 3,
    /// The dialer disagrees about the cluster size.
    BadHosts = 4,
    /// The claimed host id is out of range, ours, or already connected.
    BadHostId = 5,
    /// A reconnecting peer presented an incarnation number no newer than
    /// the one already known for it — a stale or duplicate worker, not a
    /// legitimate respawn.
    StaleIncarnation = 6,
}

impl RejectReason {
    pub(crate) fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(RejectReason::BadMagic),
            2 => Some(RejectReason::BadVersion),
            3 => Some(RejectReason::BadNonce),
            4 => Some(RejectReason::BadHosts),
            5 => Some(RejectReason::BadHostId),
            6 => Some(RejectReason::StaleIncarnation),
            _ => None,
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RejectReason::BadMagic => "bad magic",
            RejectReason::BadVersion => "protocol version mismatch",
            RejectReason::BadNonce => "run nonce mismatch (stale or foreign worker)",
            RejectReason::BadHosts => "cluster size mismatch",
            RejectReason::BadHostId => "invalid or duplicate host id",
            RejectReason::StaleIncarnation => "stale incarnation (superseded worker)",
        };
        f.write_str(s)
    }
}
