//! Hand-rolled little-endian wire codec.
//!
//! CuSP serializes node ids and edge lists into flat byte buffers (paper
//! §IV-C3). A fixed-width, explicitly little-endian codec keeps the byte
//! counts reported in Table V deterministic and easy to reason about, and
//! lets serialization/deserialization happen in parallel on thread-local
//! buffers without any framing library.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Stride of the bulk codec loops: one 32-byte block per iteration (a full
/// AVX2 register / two NEON registers), i.e. 8 `u32`s or 4 `u64`s. The
/// fixed-count inner loops below compile to straight-line vector code; the
/// sub-block tail is handled element-wise.
const BLOCK_BYTES: usize = 32;
const U32_PER_BLOCK: usize = BLOCK_BYTES / 4;
const U64_PER_BLOCK: usize = BLOCK_BYTES / 8;

/// Error returned when a reader runs out of bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError {
    /// Bytes requested by the failed read.
    pub needed: usize,
    /// Bytes that were actually available.
    pub available: usize,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wire underrun: needed {} bytes, {} available",
            self.needed, self.available
        )
    }
}

impl std::error::Error for WireError {}

/// An append-only message writer.
#[derive(Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a new instance with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: BytesMut::with_capacity(cap),
        }
    }

    #[inline]
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[inline]
    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    #[inline]
    /// Allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Ensures capacity for at least `additional` more bytes. Used by
    /// [`crate::SendBuffers`] to re-arm a writer right after
    /// [`WireWriter::take`] hands its allocation to the flushed message.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    #[inline]
    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    #[inline]
    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    #[inline]
    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    #[inline]
    /// Appends a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        self.put_u64_raw_slice(vs);
    }

    /// Writes a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        self.put_u32_raw_slice(vs);
    }

    /// Appends a `u32` run with **no length prefix**, byte-identical to
    /// calling [`WireWriter::put_u32`] once per element.
    ///
    /// The run is encoded straight into the buffer in 32-byte blocks
    /// (8 elements per iteration); the fixed-count inner loop vectorizes,
    /// and on little-endian targets reduces to wide copies. Endianness is
    /// handled per element by `to_le_bytes`, so the encode is portable.
    pub fn put_u32_raw_slice(&mut self, vs: &[u32]) {
        let old = self.buf.len();
        self.buf.resize(old + vs.len() * 4, 0);
        let dst = &mut self.buf[old..];
        let mut blocks = vs.chunks_exact(U32_PER_BLOCK);
        let mut outs = dst.chunks_exact_mut(BLOCK_BYTES);
        for (blk, out) in (&mut blocks).zip(&mut outs) {
            for j in 0..U32_PER_BLOCK {
                out[j * 4..j * 4 + 4].copy_from_slice(&blk[j].to_le_bytes());
            }
        }
        for (&v, out) in blocks
            .remainder()
            .iter()
            .zip(outs.into_remainder().chunks_exact_mut(4))
        {
            out.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a `u64` run with **no length prefix**, byte-identical to
    /// calling [`WireWriter::put_u64`] once per element.
    ///
    /// Same 32-byte-block scheme as [`WireWriter::put_u32_raw_slice`],
    /// 4 elements per iteration.
    pub fn put_u64_raw_slice(&mut self, vs: &[u64]) {
        let old = self.buf.len();
        self.buf.resize(old + vs.len() * 8, 0);
        let dst = &mut self.buf[old..];
        let mut blocks = vs.chunks_exact(U64_PER_BLOCK);
        let mut outs = dst.chunks_exact_mut(BLOCK_BYTES);
        for (blk, out) in (&mut blocks).zip(&mut outs) {
            for j in 0..U64_PER_BLOCK {
                out[j * 8..j * 8 + 8].copy_from_slice(&blk[j].to_le_bytes());
            }
        }
        for (&v, out) in blocks
            .remainder()
            .iter()
            .zip(outs.into_remainder().chunks_exact_mut(8))
        {
            out.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Finishes the message, leaving the writer empty and reusable.
    pub fn take(&mut self) -> Bytes {
        self.buf.split().freeze()
    }

    /// Finishes the message, consuming the writer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// A sequential message reader.
pub struct WireReader {
    buf: Bytes,
}

impl WireReader {
    /// Creates a new instance.
    pub fn new(buf: Bytes) -> Self {
        WireReader { buf }
    }

    /// Bytes left to read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    #[inline]
    /// True when all bytes have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    #[inline]
    fn check(&self, n: usize) -> Result<(), WireError> {
        if self.buf.remaining() < n {
            Err(WireError {
                needed: n,
                available: self.buf.remaining(),
            })
        } else {
            Ok(())
        }
    }

    #[inline]
    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        self.check(1)?;
        Ok(self.buf.get_u8())
    }

    #[inline]
    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        self.check(4)?;
        Ok(self.buf.get_u32_le())
    }

    #[inline]
    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        self.check(8)?;
        Ok(self.buf.get_u64_le())
    }

    #[inline]
    /// Reads a little-endian `f64`.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        self.check(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Skips `n` bytes without decoding them.
    ///
    /// This is what lets receivers count records in O(records): read each
    /// header, then `skip` the whole element run.
    #[inline]
    pub fn skip(&mut self, n: usize) -> Result<(), WireError> {
        self.check(n)?;
        self.buf.advance(n);
        Ok(())
    }

    /// Reads exactly `dst.len()` `u32`s (no length prefix) into `dst`.
    ///
    /// Decodes straight off the payload in 32-byte blocks (8 elements per
    /// iteration); the fixed-count inner loop vectorizes, and endianness is
    /// handled per element by `from_le_bytes`, so the decode is portable.
    pub fn get_u32_into(&mut self, dst: &mut [u32]) -> Result<(), WireError> {
        let nbytes = dst.len() * 4;
        self.check(nbytes)?;
        let src = &self.buf.chunk()[..nbytes];
        let mut blocks = src.chunks_exact(BLOCK_BYTES);
        let mut outs = dst.chunks_exact_mut(U32_PER_BLOCK);
        for (blk, out) in (&mut blocks).zip(&mut outs) {
            for j in 0..U32_PER_BLOCK {
                out[j] = u32::from_le_bytes(blk[j * 4..j * 4 + 4].try_into().unwrap());
            }
        }
        for (b, v) in blocks
            .remainder()
            .chunks_exact(4)
            .zip(outs.into_remainder().iter_mut())
        {
            *v = u32::from_le_bytes(b.try_into().unwrap());
        }
        self.buf.advance(nbytes);
        Ok(())
    }

    /// Reads exactly `dst.len()` `u64`s (no length prefix) into `dst`.
    ///
    /// Same 32-byte-block scheme as [`WireReader::get_u32_into`],
    /// 4 elements per iteration.
    pub fn get_u64_into(&mut self, dst: &mut [u64]) -> Result<(), WireError> {
        let nbytes = dst.len() * 8;
        self.check(nbytes)?;
        let src = &self.buf.chunk()[..nbytes];
        let mut blocks = src.chunks_exact(BLOCK_BYTES);
        let mut outs = dst.chunks_exact_mut(U64_PER_BLOCK);
        for (blk, out) in (&mut blocks).zip(&mut outs) {
            for j in 0..U64_PER_BLOCK {
                out[j] = u64::from_le_bytes(blk[j * 8..j * 8 + 8].try_into().unwrap());
            }
        }
        for (b, v) in blocks
            .remainder()
            .chunks_exact(8)
            .zip(outs.into_remainder().iter_mut())
        {
            *v = u64::from_le_bytes(b.try_into().unwrap());
        }
        self.buf.advance(nbytes);
        Ok(())
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.get_u64()? as usize;
        self.check(n.saturating_mul(8))?;
        let mut out = vec![0u64; n];
        self.get_u64_into(&mut out)?;
        Ok(out)
    }

    /// Reads a length-prefixed `u32` slice.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.get_u64()? as usize;
        self.check(n.saturating_mul(4))?;
        let mut out = vec![0u32; n];
        self.get_u32_into(&mut out)?;
        Ok(out)
    }
}

/// Version byte of the envelope header format below. Bumped whenever the
/// header layout changes; [`decode_envelope`] rejects anything else, so a
/// TCP peer built from different sources fails the frame decode instead of
/// silently misparsing traffic.
pub const ENVELOPE_VERSION: u8 = 1;

/// Size in bytes of the fixed envelope header that precedes the payload.
pub const ENVELOPE_HEADER_BYTES: usize = 28;

/// A decoded transport envelope: the per-message routing/resequencing
/// metadata plus the payload.
///
/// This is the unit both transports move between hosts. The wire layout is
/// **explicitly little-endian and versioned** (nothing about it depends on
/// the host's native byte order), so the same encoding works in-process
/// and across machines:
///
/// ```text
/// offset  size  field
///      0     1  version      (= ENVELOPE_VERSION)
///      1     1  tag          (mailbox tag, < MAX_TAGS)
///      2     2  reserved     (must be 0)
///      4     4  src          (sending host id, u32 LE)
///      8     4  phase        (sender's accounting phase, u32 LE)
///     12     8  seq          (per-(src, dst, tag) sequence number, u64 LE)
///     20     8  payload_len  (u64 LE)
///     28     …  payload      (exactly payload_len bytes)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEnvelope {
    /// Mailbox tag the payload is addressed to.
    pub tag: u8,
    /// Sending host.
    pub src: u64,
    /// Sender's accounting phase at send time.
    pub phase: u32,
    /// Position in the per-(src, dst, tag) send sequence.
    pub seq: u64,
    /// The application payload.
    pub payload: Bytes,
}

/// Why an envelope failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// The buffer ran out before the header or payload was complete — a
    /// torn frame.
    Truncated(WireError),
    /// The version byte is not [`ENVELOPE_VERSION`].
    Version {
        /// The version byte that was found.
        got: u8,
    },
    /// The reserved header bytes were non-zero.
    Reserved,
    /// The header claimed more payload bytes than the frame carries (or
    /// the frame has trailing garbage after the payload).
    Length {
        /// Payload bytes the header claimed.
        claimed: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvelopeError::Truncated(e) => write!(f, "torn envelope: {e}"),
            EnvelopeError::Version { got } => {
                write!(f, "envelope version {got} (expected {ENVELOPE_VERSION})")
            }
            EnvelopeError::Reserved => write!(f, "non-zero reserved envelope header bytes"),
            EnvelopeError::Length { claimed, actual } => {
                write!(f, "envelope length mismatch: header claims {claimed} payload bytes, frame carries {actual}")
            }
        }
    }
}

impl std::error::Error for EnvelopeError {}

impl From<WireError> for EnvelopeError {
    fn from(e: WireError) -> Self {
        EnvelopeError::Truncated(e)
    }
}

/// Encodes one envelope (header + payload) into a single contiguous
/// buffer, byte-identical on every platform.
pub fn encode_envelope(tag: u8, src: u64, phase: u32, seq: u64, payload: &[u8]) -> Bytes {
    let mut w = WireWriter::with_capacity(ENVELOPE_HEADER_BYTES + payload.len());
    w.put_u8(ENVELOPE_VERSION);
    w.put_u8(tag);
    w.put_u8(0);
    w.put_u8(0);
    w.put_u32(src as u32);
    w.put_u32(phase);
    w.put_u64(seq);
    w.put_u64(payload.len() as u64);
    w.put_raw(payload);
    w.finish()
}

/// Decodes an envelope produced by [`encode_envelope`]. The payload is
/// sliced out of `frame` without copying. Every malformed input — torn
/// header, wrong version, non-zero reserved bytes, payload length that
/// disagrees with the frame — is a typed error, never a panic.
pub fn decode_envelope(frame: Bytes) -> Result<WireEnvelope, EnvelopeError> {
    let mut r = WireReader::new(frame.clone());
    let version = r.get_u8()?;
    if version != ENVELOPE_VERSION {
        return Err(EnvelopeError::Version { got: version });
    }
    let tag = r.get_u8()?;
    let r0 = r.get_u8()?;
    let r1 = r.get_u8()?;
    if r0 != 0 || r1 != 0 {
        return Err(EnvelopeError::Reserved);
    }
    let src = r.get_u32()? as u64;
    let phase = r.get_u32()?;
    let seq = r.get_u64()?;
    let claimed = r.get_u64()?;
    let actual = r.remaining() as u64;
    if claimed != actual {
        return Err(EnvelopeError::Length { claimed, actual });
    }
    Ok(WireEnvelope {
        tag,
        src,
        phase,
        seq,
        payload: frame.slice(ENVELOPE_HEADER_BYTES..),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(std::f64::consts::PI);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert!(r.is_exhausted());
    }

    #[test]
    fn round_trip_slices() {
        let mut w = WireWriter::new();
        let a: Vec<u64> = (0..100).map(|i| i * 31).collect();
        let b: Vec<u32> = (0..50).map(|i| i * 7).collect();
        w.put_u64_slice(&a);
        w.put_u32_slice(&b);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_u64_vec().unwrap(), a);
        assert_eq!(r.get_u32_vec().unwrap(), b);
    }

    #[test]
    fn underrun_is_an_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.put_u32(1);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_u32().unwrap(), 1);
        let err = r.get_u64().unwrap_err();
        assert_eq!(err.needed, 8);
        assert_eq!(err.available, 0);
    }

    #[test]
    fn truncated_slice_is_an_error() {
        let mut w = WireWriter::new();
        w.put_u64(1000); // claims 1000 elements, provides none
        let mut r = WireReader::new(w.finish());
        assert!(r.get_u64_vec().is_err());
    }

    #[test]
    fn take_resets_writer() {
        let mut w = WireWriter::new();
        w.put_u64(42);
        let first = w.take();
        assert_eq!(first.len(), 8);
        assert!(w.is_empty());
        w.put_u8(1);
        assert_eq!(w.take().len(), 1);
    }

    #[test]
    fn raw_slice_matches_scalar_encoding() {
        // The bulk writers must be byte-identical to per-element puts —
        // Table V byte counts depend on it.
        let vals32: Vec<u32> = (0..257u32).map(|i| i.wrapping_mul(0x0101_0101)).collect();
        let vals64: Vec<u64> = (0..129u64).map(|i| i.wrapping_mul(0x0101_0101_0101_0101)).collect();
        let mut bulk = WireWriter::new();
        bulk.put_u32_raw_slice(&vals32);
        bulk.put_u64_raw_slice(&vals64);
        let mut scalar = WireWriter::new();
        for &v in &vals32 {
            scalar.put_u32(v);
        }
        for &v in &vals64 {
            scalar.put_u64(v);
        }
        assert_eq!(&*bulk.finish(), &*scalar.finish());
    }

    #[test]
    fn block_boundary_lengths_round_trip() {
        // The 32-byte-block codec has three regimes (full blocks, tail,
        // empty); sweep lengths straddling every boundary and check both
        // parity with the scalar encoding and the decode round trip.
        for n in [0usize, 1, 3, 4, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100] {
            let v32: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
            let v64: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
            let mut bulk = WireWriter::new();
            bulk.put_u32_raw_slice(&v32);
            bulk.put_u64_raw_slice(&v64);
            let mut scalar = WireWriter::new();
            for &v in &v32 {
                scalar.put_u32(v);
            }
            for &v in &v64 {
                scalar.put_u64(v);
            }
            assert_eq!(&*bulk.buf, &*scalar.buf, "len {n}");
            let mut r = WireReader::new(bulk.finish());
            let mut o32 = vec![0u32; n];
            let mut o64 = vec![0u64; n];
            r.get_u32_into(&mut o32).unwrap();
            r.get_u64_into(&mut o64).unwrap();
            assert_eq!(o32, v32, "len {n}");
            assert_eq!(o64, v64, "len {n}");
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn reserve_retains_capacity_across_take() {
        let mut w = WireWriter::with_capacity(64);
        w.put_u64(1);
        let _ = w.take();
        assert_eq!(w.capacity(), 0, "take() hands the allocation to the message");
        w.reserve(64);
        assert!(w.capacity() >= 64);
        w.put_u64(2);
        assert_eq!(w.take().len(), 8);
    }

    #[test]
    fn get_into_reads_raw_runs() {
        let vals: Vec<u32> = (0..100).map(|i| i * 3 + 1).collect();
        let mut w = WireWriter::new();
        w.put_u32_raw_slice(&vals);
        w.put_u64(99);
        let mut r = WireReader::new(w.finish());
        let mut out = vec![0u32; vals.len()];
        r.get_u32_into(&mut out).unwrap();
        assert_eq!(out, vals);
        assert_eq!(r.get_u64().unwrap(), 99);
        assert!(r.is_exhausted());
    }

    #[test]
    fn get_into_empty_and_underrun() {
        let mut w = WireWriter::new();
        w.put_u32(5);
        let mut r = WireReader::new(w.finish());
        r.get_u32_into(&mut []).unwrap(); // empty read is a no-op
        let mut too_big = vec![0u32; 3];
        let err = r.get_u32_into(&mut too_big).unwrap_err();
        assert_eq!(err.needed, 12);
        assert_eq!(err.available, 4);
        // A failed bulk read consumes nothing.
        assert_eq!(r.get_u32().unwrap(), 5);
    }

    #[test]
    fn skip_advances_without_decoding() {
        let mut w = WireWriter::new();
        w.put_u32_raw_slice(&[1, 2, 3]);
        w.put_u8(7);
        let mut r = WireReader::new(w.finish());
        r.skip(12).unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.skip(1).unwrap_err(), WireError { needed: 1, available: 0 });
        r.skip(0).unwrap();
    }

    #[test]
    fn truncated_u64_run_is_an_error_not_a_panic() {
        // Regression: a bulk u64 read one element past the payload must
        // fail with an exact underrun report, not over-read or panic.
        let mut w = WireWriter::new();
        w.put_u64_raw_slice(&[1, 2, 3]);
        let mut r = WireReader::new(w.finish());
        let mut dst = vec![0u64; 4];
        let err = r.get_u64_into(&mut dst).unwrap_err();
        assert_eq!(err, WireError { needed: 32, available: 24 });
        // The reader is still usable and positioned where it was.
        let mut ok = vec![0u64; 3];
        r.get_u64_into(&mut ok).unwrap();
        assert_eq!(ok, vec![1, 2, 3]);
    }

    #[test]
    fn skip_past_end_is_an_error_and_consumes_nothing() {
        let mut w = WireWriter::new();
        w.put_u32(9);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.skip(5).unwrap_err(), WireError { needed: 5, available: 4 });
        // Nothing was consumed by the failed skip.
        assert_eq!(r.get_u32().unwrap(), 9);
    }

    #[test]
    fn absurd_claimed_length_fails_before_allocating() {
        // A corrupted length prefix claiming ~2^61 elements must be
        // rejected by the byte-availability check up front — the
        // `vec![0; n]` allocation would otherwise abort the process.
        for claim in [u64::MAX, u64::MAX / 8, 1u64 << 61] {
            let mut w = WireWriter::new();
            w.put_u64(claim);
            w.put_u32(1);
            let mut r = WireReader::new(w.finish());
            assert!(r.get_u64_vec().is_err(), "claim {claim} must fail");
            let mut w = WireWriter::new();
            w.put_u64(claim);
            w.put_u32(1);
            let mut r = WireReader::new(w.finish());
            assert!(r.get_u32_vec().is_err(), "claim {claim} must fail");
        }
    }

    #[test]
    fn truncated_u32_run_mid_message_reports_exact_deficit() {
        let mut w = WireWriter::new();
        w.put_u8(1);
        w.put_u32_raw_slice(&[10, 20]);
        let payload = w.finish();
        // Drop the last 3 bytes of the message.
        let truncated = payload.slice(0..payload.len() - 3);
        let mut r = WireReader::new(truncated);
        assert_eq!(r.get_u8().unwrap(), 1);
        let mut dst = vec![0u32; 2];
        let err = r.get_u32_into(&mut dst).unwrap_err();
        assert_eq!(err, WireError { needed: 8, available: 5 });
    }

    #[test]
    fn envelope_round_trip() {
        let payload = b"partition payload bytes".as_slice();
        let frame = encode_envelope(7, 3, 2, 41, payload);
        assert_eq!(frame.len(), ENVELOPE_HEADER_BYTES + payload.len());
        let env = decode_envelope(frame).unwrap();
        assert_eq!(env.tag, 7);
        assert_eq!(env.src, 3);
        assert_eq!(env.phase, 2);
        assert_eq!(env.seq, 41);
        assert_eq!(&*env.payload, payload);
    }

    #[test]
    fn envelope_empty_payload_round_trip() {
        let frame = encode_envelope(0, 0, 0, 0, &[]);
        assert_eq!(frame.len(), ENVELOPE_HEADER_BYTES);
        let env = decode_envelope(frame).unwrap();
        assert!(env.payload.is_empty());
        assert_eq!(env.seq, 0);
    }

    #[test]
    fn envelope_layout_is_pinned() {
        // The TCP wire format is a contract: version byte first, then tag,
        // two zero reserved bytes, src/phase as u32 LE, seq and payload_len
        // as u64 LE. Pin every byte so an accidental layout change fails
        // loudly instead of breaking cross-version interop silently.
        let frame = encode_envelope(5, 0x0102_0304, 0x0A0B_0C0D, 0x1122_3344_5566_7788, b"xy");
        let expect: &[u8] = &[
            ENVELOPE_VERSION,
            5,
            0,
            0,
            0x04, 0x03, 0x02, 0x01, // src u32 LE
            0x0D, 0x0C, 0x0B, 0x0A, // phase u32 LE
            0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, // seq u64 LE
            2, 0, 0, 0, 0, 0, 0, 0, // payload_len u64 LE
            b'x', b'y',
        ];
        assert_eq!(&*frame, expect);
    }

    #[test]
    fn envelope_rejects_wrong_version() {
        let frame = encode_envelope(1, 2, 3, 4, b"p");
        let mut bad = frame.to_vec();
        bad[0] = ENVELOPE_VERSION + 1;
        let err = decode_envelope(Bytes::from(bad)).unwrap_err();
        assert_eq!(err, EnvelopeError::Version { got: ENVELOPE_VERSION + 1 });
    }

    #[test]
    fn envelope_rejects_nonzero_reserved() {
        let frame = encode_envelope(1, 2, 3, 4, b"p");
        let mut bad = frame.to_vec();
        bad[2] = 0xFF;
        assert_eq!(decode_envelope(Bytes::from(bad)).unwrap_err(), EnvelopeError::Reserved);
    }

    #[test]
    fn envelope_rejects_torn_and_mismatched_frames() {
        let frame = encode_envelope(1, 2, 3, 4, b"payload");
        // Torn inside the header.
        for cut in [0, 1, 4, ENVELOPE_HEADER_BYTES - 1] {
            let torn = frame.slice(0..cut);
            assert!(
                matches!(decode_envelope(torn).unwrap_err(), EnvelopeError::Truncated(_)),
                "cut at {cut}"
            );
        }
        // Header intact but payload short.
        let short = frame.slice(0..frame.len() - 2);
        assert_eq!(
            decode_envelope(short).unwrap_err(),
            EnvelopeError::Length { claimed: 7, actual: 5 }
        );
        // Trailing garbage after the payload.
        let mut long = frame.to_vec();
        long.push(0);
        assert_eq!(
            decode_envelope(Bytes::from(long)).unwrap_err(),
            EnvelopeError::Length { claimed: 7, actual: 8 }
        );
    }

    #[test]
    fn byte_counts_are_exact() {
        // Table V relies on wire sizes being predictable.
        let mut w = WireWriter::new();
        w.put_u64_slice(&[1, 2, 3]);
        assert_eq!(w.len(), 8 + 3 * 8);
        w.put_u32_slice(&[1]);
        assert_eq!(w.len(), 8 + 3 * 8 + 8 + 4);
    }
}
