//! Hand-rolled little-endian wire codec.
//!
//! CuSP serializes node ids and edge lists into flat byte buffers (paper
//! §IV-C3). A fixed-width, explicitly little-endian codec keeps the byte
//! counts reported in Table V deterministic and easy to reason about, and
//! lets serialization/deserialization happen in parallel on thread-local
//! buffers without any framing library.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Error returned when a reader runs out of bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError {
    /// Bytes requested by the failed read.
    pub needed: usize,
    /// Bytes that were actually available.
    pub available: usize,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wire underrun: needed {} bytes, {} available",
            self.needed, self.available
        )
    }
}

impl std::error::Error for WireError {}

/// An append-only message writer.
#[derive(Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a new instance with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: BytesMut::with_capacity(cap),
        }
    }

    #[inline]
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[inline]
    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    #[inline]
    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    #[inline]
    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    #[inline]
    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    #[inline]
    /// Appends a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        self.buf.reserve(vs.len() * 8);
        for &v in vs {
            self.buf.put_u64_le(v);
        }
    }

    /// Writes a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.buf.put_u32_le(v);
        }
    }

    /// Writes raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Finishes the message, leaving the writer empty and reusable.
    pub fn take(&mut self) -> Bytes {
        self.buf.split().freeze()
    }

    /// Finishes the message, consuming the writer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// A sequential message reader.
pub struct WireReader {
    buf: Bytes,
}

impl WireReader {
    /// Creates a new instance.
    pub fn new(buf: Bytes) -> Self {
        WireReader { buf }
    }

    /// Bytes left to read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    #[inline]
    /// True when all bytes have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    #[inline]
    fn check(&self, n: usize) -> Result<(), WireError> {
        if self.buf.remaining() < n {
            Err(WireError {
                needed: n,
                available: self.buf.remaining(),
            })
        } else {
            Ok(())
        }
    }

    #[inline]
    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        self.check(1)?;
        Ok(self.buf.get_u8())
    }

    #[inline]
    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        self.check(4)?;
        Ok(self.buf.get_u32_le())
    }

    #[inline]
    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        self.check(8)?;
        Ok(self.buf.get_u64_le())
    }

    #[inline]
    /// Reads a little-endian `f64`.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        self.check(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.get_u64()? as usize;
        self.check(n.saturating_mul(8))?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.buf.get_u64_le());
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u32` slice.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.get_u64()? as usize;
        self.check(n.saturating_mul(4))?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.buf.get_u32_le());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(std::f64::consts::PI);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert!(r.is_exhausted());
    }

    #[test]
    fn round_trip_slices() {
        let mut w = WireWriter::new();
        let a: Vec<u64> = (0..100).map(|i| i * 31).collect();
        let b: Vec<u32> = (0..50).map(|i| i * 7).collect();
        w.put_u64_slice(&a);
        w.put_u32_slice(&b);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_u64_vec().unwrap(), a);
        assert_eq!(r.get_u32_vec().unwrap(), b);
    }

    #[test]
    fn underrun_is_an_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.put_u32(1);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_u32().unwrap(), 1);
        let err = r.get_u64().unwrap_err();
        assert_eq!(err.needed, 8);
        assert_eq!(err.available, 0);
    }

    #[test]
    fn truncated_slice_is_an_error() {
        let mut w = WireWriter::new();
        w.put_u64(1000); // claims 1000 elements, provides none
        let mut r = WireReader::new(w.finish());
        assert!(r.get_u64_vec().is_err());
    }

    #[test]
    fn take_resets_writer() {
        let mut w = WireWriter::new();
        w.put_u64(42);
        let first = w.take();
        assert_eq!(first.len(), 8);
        assert!(w.is_empty());
        w.put_u8(1);
        assert_eq!(w.take().len(), 1);
    }

    #[test]
    fn byte_counts_are_exact() {
        // Table V relies on wire sizes being predictable.
        let mut w = WireWriter::new();
        w.put_u64_slice(&[1, 2, 3]);
        assert_eq!(w.len(), 8 + 3 * 8);
        w.put_u32_slice(&[1]);
        assert_eq!(w.len(), 8 + 3 * 8 + 8 + 4);
    }
}
