//! Buffered message aggregation (paper §IV-D3).
//!
//! During graph construction CuSP serializes a vertex id plus its edges per
//! record, but does **not** send each record immediately: records destined
//! to the same host accumulate in a per-destination buffer that is flushed
//! once it crosses a size threshold. Larger buffers mean fewer messages and
//! less per-message overhead; the evaluation (Fig. 7) sweeps this threshold
//! from 0 (send immediately) upward.

use bytes::Bytes;

use crate::cluster::{Comm, HostId, Tag};
use crate::serialize::WireWriter;

/// Per-destination send buffers with a flush threshold in bytes.
///
/// A threshold of `0` sends every record as its own message (the paper's
/// "0 MB" configuration).
pub struct SendBuffers {
    buffers: Vec<WireWriter>,
    threshold: usize,
    /// Capacity re-reserved in a writer right after each flush. Taking a
    /// payload hands the writer's allocation to the outgoing message, so
    /// without this the next record would regrow the buffer from zero
    /// through the doubling sequence — one allocation per flush instead.
    /// Capped at `threshold.min(1 << 20)`: threshold-0 runs keep it at 0
    /// (every record becomes a message and takes the allocation with it,
    /// so there is nothing worth pre-reserving), and huge thresholds don't
    /// pin a giant buffer per destination.
    retain: usize,
    tag: Tag,
    flushes: u64,
    records: u64,
}

impl SendBuffers {
    /// Creates buffers for each of `hosts` destinations, flushed at
    /// `threshold` bytes, sent under `tag`.
    pub fn new(hosts: usize, threshold: usize, tag: Tag) -> Self {
        let retain = threshold.min(1 << 20);
        SendBuffers {
            buffers: (0..hosts).map(|_| WireWriter::with_capacity(retain)).collect(),
            // Normalized once so the per-record hot path is a plain compare:
            // threshold 0 ("send immediately") behaves identically to 1
            // because every non-empty record is at least one byte.
            threshold: threshold.max(1),
            retain,
            tag,
            flushes: 0,
            records: 0,
        }
    }

    /// Appends one record for `dst`, built by `write`, flushing if the
    /// buffer crosses the threshold.
    pub fn record(&mut self, comm: &Comm, dst: HostId, write: impl FnOnce(&mut WireWriter)) {
        let buf = &mut self.buffers[dst];
        write(buf);
        self.records += 1;
        if buf.len() >= self.threshold {
            let payload = buf.take();
            buf.reserve(self.retain);
            self.send(comm, dst, payload);
        }
    }

    fn send(&mut self, comm: &Comm, dst: HostId, payload: Bytes) {
        if !payload.is_empty() {
            comm.send_bytes(dst, self.tag, payload);
            self.flushes += 1;
        }
    }

    /// Flushes any remaining data for every destination.
    pub fn flush_all(&mut self, comm: &Comm) {
        for dst in 0..self.buffers.len() {
            if !self.buffers[dst].is_empty() {
                let payload = self.buffers[dst].take();
                self.buffers[dst].reserve(self.retain);
                self.send(comm, dst, payload);
            }
        }
    }

    /// Number of messages actually sent so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Number of records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::serialize::WireReader;

    /// Send `n` records of one u64 each from host 0 to host 1 with the given
    /// threshold; return (messages_seen_by_receiver, values).
    fn run(n: u64, threshold: usize) -> (u64, Vec<u64>) {
        let out = Cluster::run(2, move |comm| {
            comm.set_phase("buffered");
            if comm.host() == 0 {
                let mut bufs = SendBuffers::new(2, threshold, Tag(5));
                for i in 0..n {
                    bufs.record(comm, 1, |w| w.put_u64(i));
                }
                bufs.flush_all(comm);
                comm.barrier();
                Vec::new()
            } else {
                let mut values = Vec::new();
                // Receiver drains until it has all n records.
                while (values.len() as u64) < n {
                    let (_src, payload) = comm.recv_any(Tag(5));
                    let mut r = WireReader::new(payload);
                    while !r.is_exhausted() {
                        values.push(r.get_u64().unwrap());
                    }
                }
                comm.barrier();
                values
            }
        });
        let msgs = out.stats.phase("buffered").unwrap().total_messages();
        (msgs, out.results.into_iter().nth(1).unwrap())
    }

    #[test]
    fn zero_threshold_sends_per_record() {
        let (msgs, values) = run(50, 0);
        assert_eq!(msgs, 50);
        assert_eq!(values, (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn large_threshold_sends_one_message() {
        let (msgs, values) = run(50, 1 << 20);
        assert_eq!(msgs, 1);
        assert_eq!(values, (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn intermediate_threshold_batches() {
        // 50 records × 8 bytes = 400 bytes; threshold 100 → flush roughly
        // every 13 records (first append crossing 100 triggers), plus tail.
        let (msgs, values) = run(50, 100);
        assert!(msgs > 1 && msgs < 50, "got {msgs} messages");
        assert_eq!(values.len(), 50);
    }

    #[test]
    fn flush_all_with_no_data_sends_nothing() {
        let out = Cluster::run(2, |comm| {
            comm.set_phase("idle");
            let mut bufs = SendBuffers::new(2, 64, Tag(1));
            bufs.flush_all(comm);
            comm.barrier();
            bufs.flushes()
        });
        assert_eq!(out.results, vec![0, 0]);
        assert_eq!(out.stats.phase("idle").unwrap().total_messages(), 0);
    }

    #[test]
    fn capacity_is_retained_across_flushes() {
        let out = Cluster::run(2, |comm| {
            if comm.host() == 0 {
                let mut bufs = SendBuffers::new(2, 128, Tag(3));
                for i in 0..200u64 {
                    bufs.record(comm, 1, |w| w.put_u64(i));
                }
                // After at least one flush, the writer must hold its
                // retained capacity without a record having regrown it.
                let cap = bufs.buffers[1].capacity();
                bufs.flush_all(comm);
                (bufs.flushes(), cap)
            } else {
                let mut got = 0u64;
                while got < 200 {
                    let (_s, p) = comm.recv_any(Tag(3));
                    got += p.len() as u64 / 8;
                }
                (0, usize::MAX)
            }
        });
        let (flushes, cap) = out.results[0];
        assert!(flushes > 1);
        assert!(cap >= 128, "retained capacity {cap} < threshold 128");
    }

    #[test]
    fn zero_threshold_retains_nothing() {
        let out = Cluster::run(2, |comm| {
            if comm.host() == 0 {
                let mut bufs = SendBuffers::new(2, 0, Tag(4));
                for i in 0..5u64 {
                    bufs.record(comm, 1, |w| w.put_u64(i));
                }
                bufs.flush_all(comm);
                bufs.buffers[1].capacity()
            } else {
                for _ in 0..5 {
                    let _ = comm.recv_any(Tag(4));
                }
                usize::MAX
            }
        });
        assert_eq!(out.results[0], 0, "threshold-0 buffers must not pin capacity");
    }

    #[test]
    fn record_counting() {
        let out = Cluster::run(2, |comm| {
            if comm.host() == 0 {
                let mut bufs = SendBuffers::new(2, 1 << 16, Tag(2));
                for i in 0..7u64 {
                    bufs.record(comm, 1, |w| w.put_u64(i));
                }
                bufs.flush_all(comm);
                (bufs.records(), bufs.flushes())
            } else {
                let (_s, payload) = comm.recv_any(Tag(2));
                (payload.len() as u64 / 8, 0)
            }
        });
        assert_eq!(out.results[0], (7, 1));
        assert_eq!(out.results[1].0, 7);
    }
}
