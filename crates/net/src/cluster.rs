//! The simulated cluster: SPMD launcher, per-host communicators, and the
//! shared "fabric" that routes messages between hosts.
//!
//! Hosts are OS threads. Each host `h` owns a [`Comm`] handle; `send` pushes
//! a [`Bytes`] message into the destination's per-tag mailbox (an unbounded
//! MPMC channel carrying `(src, payload)`), and the various `recv` flavours
//! pop from it. Per-(src, dst, tag) FIFO order is guaranteed because a given
//! source thread pushes its messages in program order and channels preserve
//! insertion order per producer.
//!
//! ## Panic containment
//!
//! If any host panics, all blocked peers must not hang. The fabric keeps a
//! poison flag; blocking operations (`recv*`, `barrier`) poll it with a
//! timeout and panic with a descriptive message once poisoned, unwinding the
//! whole cluster. [`Cluster::run`] then propagates the original panic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex};

use crate::stats::{CommStats, StatsCollector};

/// Identifies a host (partition) in the simulated cluster.
pub type HostId = usize;

/// A small message-class discriminator, analogous to an MPI tag.
///
/// Tags below [`MAX_TAGS`] are valid; each (host, tag) pair has its own
/// FIFO mailbox so different protocol stages never interfere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u8);

/// Number of distinct tags supported by the fabric.
pub const MAX_TAGS: usize = 32;

/// How often blocked operations re-check the poison flag.
const POISON_POLL: Duration = Duration::from_millis(50);

type Mailbox = (Sender<(HostId, Bytes)>, Receiver<(HostId, Bytes)>);

/// A poison-aware reusable barrier (generation counting).
struct FabricBarrier {
    state: Mutex<(usize, u64)>, // (arrived, generation)
    cv: Condvar,
    parties: usize,
}

impl FabricBarrier {
    fn new(parties: usize) -> Self {
        FabricBarrier {
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
            parties,
        }
    }

    fn wait(&self, poisoned: &AtomicBool) {
        let mut guard = self.state.lock();
        let gen = guard.1;
        guard.0 += 1;
        if guard.0 == self.parties {
            guard.0 = 0;
            guard.1 += 1;
            self.cv.notify_all();
            return;
        }
        while guard.1 == gen {
            self.cv.wait_for(&mut guard, POISON_POLL);
            if poisoned.load(Ordering::Acquire) {
                drop(guard);
                panic!("cluster poisoned: a peer host panicked while this host waited at a barrier");
            }
        }
    }

    /// Wakes all current waiters (used when poisoning).
    fn poison_wake(&self) {
        let _guard = self.state.lock();
        self.cv.notify_all();
    }
}

/// Shared state between all host threads.
pub(crate) struct Fabric {
    hosts: usize,
    /// `mailboxes[dst][tag]` — MPMC channel of `(src, payload)`.
    mailboxes: Vec<Vec<Mailbox>>,
    barrier: FabricBarrier,
    poisoned: AtomicBool,
    pub(crate) stats: StatsCollector,
}

impl Fabric {
    fn new(hosts: usize) -> Self {
        let mailboxes = (0..hosts)
            .map(|_| (0..MAX_TAGS).map(|_| unbounded()).collect())
            .collect();
        Fabric {
            hosts,
            mailboxes,
            barrier: FabricBarrier::new(hosts),
            poisoned: AtomicBool::new(false),
            stats: StatsCollector::new(hosts),
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.barrier.poison_wake();
    }

    fn check_poison(&self) {
        if self.poisoned.load(Ordering::Acquire) {
            panic!("cluster poisoned: a peer host panicked");
        }
    }
}

/// Per-host communicator handle. `send*` methods are thread-safe (pool
/// workers may send concurrently during parallel serialization); `recv*`
/// methods are intended for the host's coordinating thread.
pub struct Comm {
    host: HostId,
    fabric: Arc<Fabric>,
    /// Messages popped from a mailbox while looking for a specific source.
    pending: Mutex<Vec<std::collections::VecDeque<(HostId, Bytes)>>>,
    /// Index of the currently active accounting phase.
    phase: std::sync::atomic::AtomicUsize,
}

impl Comm {
    fn new(host: HostId, fabric: Arc<Fabric>) -> Self {
        Comm {
            host,
            fabric,
            pending: Mutex::new(vec![Default::default(); MAX_TAGS]),
            phase: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// This host's id (also its partition id).
    #[inline]
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Total number of hosts in the cluster.
    #[inline]
    pub fn num_hosts(&self) -> usize {
        self.fabric.hosts
    }

    /// Registers (or reuses) an accounting phase and makes it current. All
    /// subsequent traffic from this host is attributed to it.
    pub fn set_phase(&self, name: &str) {
        let idx = self.fabric.stats.phase_index(name);
        self.phase.store(idx, Ordering::Relaxed);
    }

    /// Sends `payload` to `dst` under `tag`.
    ///
    /// Self-sends are allowed (delivered through the same mailbox) but are
    /// *not* counted as network traffic, matching how a real host would keep
    /// local data local.
    pub fn send_bytes(&self, dst: HostId, tag: Tag, payload: Bytes) {
        assert!((tag.0 as usize) < MAX_TAGS, "tag out of range");
        assert!(dst < self.fabric.hosts, "destination host out of range");
        if dst != self.host {
            let phase = self.phase.load(Ordering::Relaxed);
            self.fabric
                .stats
                .record(phase, self.host, dst, payload.len() as u64);
        }
        self.fabric.mailboxes[dst][tag.0 as usize]
            .0
            .send((self.host, payload))
            .expect("mailbox closed");
    }

    fn mailbox(&self, tag: Tag) -> &Receiver<(HostId, Bytes)> {
        &self.fabric.mailboxes[self.host][tag.0 as usize].1
    }

    /// Receives the next message of `tag` from any source, blocking.
    pub fn recv_any(&self, tag: Tag) -> (HostId, Bytes) {
        {
            let mut pending = self.pending.lock();
            if let Some(m) = pending[tag.0 as usize].pop_front() {
                return m;
            }
        }
        loop {
            match self.mailbox(tag).recv_timeout(POISON_POLL) {
                Ok(m) => return m,
                Err(RecvTimeoutError::Timeout) => self.fabric.check_poison(),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("mailbox disconnected")
                }
            }
        }
    }

    /// Receives the next message of `tag` from `src` specifically, blocking.
    /// Messages from other sources that arrive first are buffered.
    pub fn recv_from(&self, src: HostId, tag: Tag) -> Bytes {
        {
            let mut pending = self.pending.lock();
            let q = &mut pending[tag.0 as usize];
            if let Some(pos) = q.iter().position(|(s, _)| *s == src) {
                return q.remove(pos).expect("position valid").1;
            }
        }
        loop {
            let m = loop {
                match self.mailbox(tag).recv_timeout(POISON_POLL) {
                    Ok(m) => break m,
                    Err(RecvTimeoutError::Timeout) => self.fabric.check_poison(),
                    Err(RecvTimeoutError::Disconnected) => panic!("mailbox disconnected"),
                }
            };
            if m.0 == src {
                return m.1;
            }
            self.pending.lock()[tag.0 as usize].push_back(m);
        }
    }

    /// Non-blocking receive of `tag` from any source.
    pub fn try_recv_any(&self, tag: Tag) -> Option<(HostId, Bytes)> {
        {
            let mut pending = self.pending.lock();
            if let Some(m) = pending[tag.0 as usize].pop_front() {
                return Some(m);
            }
        }
        self.fabric.check_poison();
        self.mailbox(tag).try_recv().ok()
    }

    /// Blocks until all hosts reach the barrier.
    pub fn barrier(&self) {
        self.fabric.barrier.wait(&self.fabric.poisoned);
    }

    /// Immutable access to the live statistics collector (e.g. to read
    /// bytes sent so far from inside a host).
    pub fn stats(&self) -> &StatsCollector {
        &self.fabric.stats
    }
}

/// Results of a cluster execution.
pub struct ClusterOutput<R> {
    /// Per-host return values, indexed by host id.
    pub results: Vec<R>,
    /// Snapshot of all communication statistics.
    pub stats: CommStats,
}

/// SPMD launcher for the simulated cluster.
pub struct Cluster;

impl Cluster {
    /// Runs `f` on `hosts` threads, one per host, and collects results.
    ///
    /// # Panics
    /// Propagates the first host panic after unwinding all hosts.
    pub fn run<R, F>(hosts: usize, f: F) -> ClusterOutput<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Sync,
    {
        assert!(hosts > 0, "cluster needs at least one host");
        let fabric = Arc::new(Fabric::new(hosts));
        let mut results: Vec<Option<R>> = (0..hosts).map(|_| None).collect();
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(hosts);
            for (h, slot) in results.iter_mut().enumerate() {
                let fabric = Arc::clone(&fabric);
                let f = &f;
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("host-{h}"))
                        .spawn_scoped(scope, move || {
                            let comm = Comm::new(h, Arc::clone(&fabric));
                            let out = std::panic::catch_unwind(
                                std::panic::AssertUnwindSafe(|| f(&comm)),
                            );
                            match out {
                                Ok(r) => {
                                    *slot = Some(r);
                                    Ok(())
                                }
                                Err(p) => {
                                    fabric.poison();
                                    Err(p)
                                }
                            }
                        })
                        .expect("failed to spawn host thread"),
                );
            }
            for handle in handles {
                match handle.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(p)) => {
                        if first_panic.is_none() {
                            first_panic = Some(p);
                        }
                    }
                    Err(p) => {
                        if first_panic.is_none() {
                            first_panic = Some(p);
                        }
                    }
                }
            }
        });

        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }

        ClusterOutput {
            results: results.into_iter().map(|r| r.expect("host produced no result")).collect(),
            stats: fabric.stats.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_exchange() {
        let out = Cluster::run(5, |comm| {
            let me = comm.host();
            let k = comm.num_hosts();
            let mut w = crate::WireWriter::new();
            w.put_u64(me as u64 * 100);
            comm.send_bytes((me + 1) % k, Tag(1), w.finish());
            let prev = (me + k - 1) % k;
            let data = comm.recv_from(prev, Tag(1));
            let mut r = crate::WireReader::new(data);
            r.get_u64().unwrap()
        });
        assert_eq!(out.results, vec![400, 0, 100, 200, 300]);
    }

    #[test]
    fn per_pair_fifo_order() {
        let out = Cluster::run(2, |comm| {
            if comm.host() == 0 {
                for i in 0..100u64 {
                    let mut w = crate::WireWriter::new();
                    w.put_u64(i);
                    comm.send_bytes(1, Tag(0), w.finish());
                }
                Vec::new()
            } else {
                (0..100)
                    .map(|_| {
                        let (_s, b) = comm.recv_any(Tag(0));
                        crate::WireReader::new(b).get_u64().unwrap()
                    })
                    .collect()
            }
        });
        assert_eq!(out.results[1], (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn tags_are_independent() {
        let out = Cluster::run(2, |comm| {
            if comm.host() == 0 {
                comm.send_bytes(1, Tag(2), Bytes::from_static(b"late-tag"));
                comm.send_bytes(1, Tag(3), Bytes::from_static(b"early-tag"));
                String::new()
            } else {
                // Read tag 3 first even though tag 2 arrived first.
                let (_s, b3) = comm.recv_any(Tag(3));
                let (_s, b2) = comm.recv_any(Tag(2));
                format!(
                    "{}/{}",
                    std::str::from_utf8(&b3).unwrap(),
                    std::str::from_utf8(&b2).unwrap()
                )
            }
        });
        assert_eq!(out.results[1], "early-tag/late-tag");
    }

    #[test]
    fn recv_from_buffers_other_sources() {
        let out = Cluster::run(3, |comm| {
            match comm.host() {
                0 | 1 => {
                    let mut w = crate::WireWriter::new();
                    w.put_u64(comm.host() as u64);
                    comm.send_bytes(2, Tag(0), w.finish());
                    0
                }
                _ => {
                    // Deliberately ask for host 1 first, then host 0.
                    let b1 = comm.recv_from(1, Tag(0));
                    let b0 = comm.recv_from(0, Tag(0));
                    let v1 = crate::WireReader::new(b1).get_u64().unwrap();
                    let v0 = crate::WireReader::new(b0).get_u64().unwrap();
                    (v1 * 10 + v0) as usize
                }
            }
        });
        assert_eq!(out.results[2], 10);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        Cluster::run(4, |comm| {
            for round in 1..=10 {
                counter.fetch_add(1, Ordering::SeqCst);
                comm.barrier();
                assert_eq!(counter.load(Ordering::SeqCst), round * 4);
                comm.barrier();
            }
        });
    }

    #[test]
    fn stats_count_bytes_per_phase() {
        let out = Cluster::run(2, |comm| {
            comm.set_phase("phase-a");
            if comm.host() == 0 {
                comm.send_bytes(1, Tag(0), Bytes::from(vec![0u8; 100]));
            } else {
                comm.recv_any(Tag(0));
            }
            comm.barrier();
            comm.set_phase("phase-b");
            if comm.host() == 1 {
                comm.send_bytes(0, Tag(0), Bytes::from(vec![0u8; 7]));
            } else {
                comm.recv_any(Tag(0));
            }
        });
        let a = out.stats.phase("phase-a").expect("phase-a recorded");
        assert_eq!(a.total_bytes(), 100);
        assert_eq!(a.bytes_between(0, 1), 100);
        assert_eq!(a.bytes_between(1, 0), 0);
        assert_eq!(a.total_messages(), 1);
        let b = out.stats.phase("phase-b").expect("phase-b recorded");
        assert_eq!(b.total_bytes(), 7);
    }

    #[test]
    fn self_sends_not_counted() {
        let out = Cluster::run(1, |comm| {
            comm.set_phase("only");
            comm.send_bytes(0, Tag(0), Bytes::from(vec![1u8; 64]));
            let (src, b) = comm.recv_any(Tag(0));
            (src, b.len())
        });
        assert_eq!(out.results[0], (0, 64));
        assert_eq!(out.stats.phase("only").unwrap().total_bytes(), 0);
    }

    #[test]
    fn host_panic_propagates_without_hanging() {
        let res = std::panic::catch_unwind(|| {
            Cluster::run(3, |comm| {
                if comm.host() == 1 {
                    panic!("deliberate failure on host 1");
                }
                // These hosts would otherwise block forever.
                comm.recv_any(Tag(0));
            });
        });
        assert!(res.is_err());
    }

    #[test]
    fn single_host_cluster() {
        let out = Cluster::run(1, |comm| {
            comm.barrier();
            comm.host()
        });
        assert_eq!(out.results, vec![0]);
    }
}
