//! The simulated cluster: SPMD launcher, per-host communicators, and the
//! shared "fabric" that routes messages between hosts.
//!
//! Hosts are OS threads. Each host `h` owns a [`Comm`] handle; `send` pushes
//! an [`Envelope`] (source, per-channel sequence number, sender phase, and
//! the [`Bytes`] payload) into the destination's per-tag mailbox (an
//! unbounded MPMC channel), and the various `recv` flavours pop from it
//! through a **resequencer**: envelopes are reordered back into sequence
//! order per `(src, tag)` and duplicates are discarded, so the application
//! always observes per-(src, dst, tag) FIFO delivery — even when a seeded
//! [`FaultPlan`] delays, reorders, duplicates, or drops-and-retries
//! messages underneath (see [`crate::fault`]).
//!
//! Receive-side accounting mirrors send-side accounting: when the
//! resequencer hands a message to the application it is recorded against
//! the *sender's* phase (carried in the envelope), which makes the
//! per-phase conservation invariant — bytes/messages sent == received —
//! checkable from a [`CommStats`] snapshot.
//!
//! ## Panic containment
//!
//! If any host panics, all blocked peers must not hang. The fabric keeps a
//! poison flag; blocking operations (`recv*`, `barrier`) poll it with a
//! timeout and panic with a descriptive message once poisoned, unwinding the
//! whole cluster. [`Cluster::run`] then propagates the original panic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex};

use crate::fault::{FaultPlan, FaultReport, FaultStats};
use crate::stats::{CommStats, StatsCollector};

/// Identifies a host (partition) in the simulated cluster.
pub type HostId = usize;

/// A small message-class discriminator, analogous to an MPI tag.
///
/// Tags below [`MAX_TAGS`] are valid; each (host, tag) pair has its own
/// FIFO mailbox so different protocol stages never interfere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u8);

/// Number of distinct tags supported by the fabric.
pub const MAX_TAGS: usize = 32;

/// How often blocked operations re-check the poison flag.
const POISON_POLL: Duration = Duration::from_millis(50);

/// One in-flight message: transport metadata plus the payload.
#[derive(Clone)]
struct Envelope {
    src: HostId,
    /// Position in the per-(src, dst, tag) send sequence.
    seq: u64,
    /// The sender's accounting phase at send time.
    phase: u32,
    payload: Bytes,
}

type Mailbox = (Sender<Envelope>, Receiver<Envelope>);

/// A poison-aware reusable barrier (generation counting).
struct FabricBarrier {
    state: Mutex<(usize, u64)>, // (arrived, generation)
    cv: Condvar,
    parties: usize,
}

impl FabricBarrier {
    fn new(parties: usize) -> Self {
        FabricBarrier {
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
            parties,
        }
    }

    fn wait(&self, poisoned: &AtomicBool) {
        let mut guard = self.state.lock();
        let gen = guard.1;
        guard.0 += 1;
        if guard.0 == self.parties {
            guard.0 = 0;
            guard.1 += 1;
            self.cv.notify_all();
            return;
        }
        while guard.1 == gen {
            self.cv.wait_for(&mut guard, POISON_POLL);
            if poisoned.load(Ordering::Acquire) {
                drop(guard);
                panic!("cluster poisoned: a peer host panicked while this host waited at a barrier");
            }
        }
    }

    /// Wakes all current waiters (used when poisoning).
    fn poison_wake(&self) {
        let _guard = self.state.lock();
        self.cv.notify_all();
    }
}

/// The seeded fault-injection layer attached to a fabric.
struct FaultLayer {
    plan: FaultPlan,
    stats: FaultStats,
    /// Messages held back for reordered release, per destination.
    holdback: Vec<Mutex<Vec<(Tag, Envelope)>>>,
}

/// Shared state between all host threads.
pub(crate) struct Fabric {
    hosts: usize,
    /// `mailboxes[dst][tag]` — MPMC channel of envelopes.
    mailboxes: Vec<Vec<Mailbox>>,
    /// `seqs[(src * hosts + dst) * MAX_TAGS + tag]` — next send sequence
    /// number for that channel.
    seqs: Vec<AtomicU64>,
    barrier: FabricBarrier,
    poisoned: AtomicBool,
    fault: Option<FaultLayer>,
    pub(crate) stats: StatsCollector,
}

impl Fabric {
    fn new(hosts: usize, fault: Option<FaultPlan>) -> Self {
        let mailboxes = (0..hosts)
            .map(|_| (0..MAX_TAGS).map(|_| unbounded()).collect())
            .collect();
        Fabric {
            hosts,
            mailboxes,
            seqs: (0..hosts * hosts * MAX_TAGS).map(|_| AtomicU64::new(0)).collect(),
            barrier: FabricBarrier::new(hosts),
            poisoned: AtomicBool::new(false),
            fault: fault.map(|plan| FaultLayer {
                plan,
                stats: FaultStats::default(),
                holdback: (0..hosts).map(|_| Mutex::new(Vec::new())).collect(),
            }),
            stats: StatsCollector::new(hosts),
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.barrier.poison_wake();
    }

    fn check_poison(&self) {
        if self.poisoned.load(Ordering::Acquire) {
            panic!("cluster poisoned: a peer host panicked");
        }
    }

    fn next_seq(&self, src: HostId, dst: HostId, tag: Tag) -> u64 {
        let cell = (src * self.hosts + dst) * MAX_TAGS + tag.0 as usize;
        self.seqs[cell].fetch_add(1, Ordering::Relaxed)
    }

    /// Pushes an envelope straight into the destination mailbox.
    fn deliver(&self, dst: HostId, tag: Tag, env: Envelope) {
        self.mailboxes[dst][tag.0 as usize]
            .0
            .send(env)
            .expect("mailbox closed");
    }

    /// Routes a remote send through the fault layer (if any).
    fn dispatch(&self, dst: HostId, tag: Tag, env: Envelope) {
        let Some(layer) = &self.fault else {
            self.deliver(dst, tag, env);
            return;
        };
        let d = layer.plan.decide(env.src, dst, tag.0, env.seq);
        if d.failed_attempts > 0 {
            // Dropped attempts are repaired by bounded retransmission at the
            // send site; delivery is guaranteed by the final attempt.
            layer
                .stats
                .dropped_attempts
                .fetch_add(d.failed_attempts as u64, Ordering::Relaxed);
        }
        if d.duplicate {
            layer.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            self.deliver(dst, tag, env.clone());
        }
        if d.delay {
            layer.stats.delayed.fetch_add(1, Ordering::Relaxed);
            let mut q = layer.holdback[dst].lock();
            q.push((tag, env));
            if q.len() > layer.plan.reorder_window {
                let drained: Vec<_> = q.drain(..).collect();
                drop(q);
                // Reverse order maximizes observable reordering; the
                // receive-side resequencer restores sequence order.
                for (t, e) in drained.into_iter().rev() {
                    self.deliver(dst, t, e);
                }
            }
        } else {
            self.deliver(dst, tag, env);
        }
    }

    /// Releases every held-back message destined for `dst`. Called from the
    /// receive paths and at barriers so a delayed message can never
    /// deadlock the protocol.
    fn flush_holdback(&self, dst: HostId) {
        let Some(layer) = &self.fault else { return };
        let drained: Vec<_> = {
            let mut q = layer.holdback[dst].lock();
            if q.is_empty() {
                return;
            }
            q.drain(..).collect()
        };
        for (t, e) in drained.into_iter().rev() {
            self.deliver(dst, t, e);
        }
    }
}

/// Receive-side state: the resequencer plus ready (application-visible)
/// messages, all per tag.
struct RecvState {
    /// Messages in delivery order, ready for the application.
    ready: Vec<std::collections::VecDeque<(HostId, Bytes)>>,
    /// `next[tag][src]` — the next expected sequence number.
    next: Vec<Vec<u64>>,
    /// `stash[tag][src]` — out-of-order envelopes awaiting predecessors.
    stash: Vec<Vec<BTreeMap<u64, (u32, Bytes)>>>,
}

impl RecvState {
    fn new(hosts: usize) -> Self {
        RecvState {
            ready: (0..MAX_TAGS).map(|_| Default::default()).collect(),
            next: (0..MAX_TAGS).map(|_| vec![0; hosts]).collect(),
            stash: (0..MAX_TAGS).map(|_| (0..hosts).map(|_| BTreeMap::new()).collect()).collect(),
        }
    }
}

/// Per-host communicator handle. `send*` methods are thread-safe (pool
/// workers may send concurrently during parallel serialization); `recv*`
/// methods are intended for the host's coordinating thread.
pub struct Comm {
    host: HostId,
    fabric: Arc<Fabric>,
    recv: Mutex<RecvState>,
    /// Index of the currently active accounting phase.
    phase: std::sync::atomic::AtomicUsize,
}

impl Comm {
    fn new(host: HostId, fabric: Arc<Fabric>) -> Self {
        let hosts = fabric.hosts;
        Comm {
            host,
            fabric,
            recv: Mutex::new(RecvState::new(hosts)),
            phase: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// This host's id (also its partition id).
    #[inline]
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Total number of hosts in the cluster.
    #[inline]
    pub fn num_hosts(&self) -> usize {
        self.fabric.hosts
    }

    /// Registers (or reuses) an accounting phase and makes it current. All
    /// subsequent traffic from this host is attributed to it.
    pub fn set_phase(&self, name: &str) {
        let idx = self.fabric.stats.phase_index(name);
        self.phase.store(idx, Ordering::Relaxed);
    }

    /// Sends `payload` to `dst` under `tag`.
    ///
    /// Self-sends are allowed (delivered through the same mailbox) but are
    /// *not* counted as network traffic, matching how a real host would keep
    /// local data local. Sends are accounted exactly once, at the
    /// application level — fault-layer duplicates and retransmissions do
    /// not inflate [`CommStats`].
    pub fn send_bytes(&self, dst: HostId, tag: Tag, payload: Bytes) {
        assert!((tag.0 as usize) < MAX_TAGS, "tag out of range");
        assert!(dst < self.fabric.hosts, "destination host out of range");
        let phase = self.phase.load(Ordering::Relaxed);
        if dst != self.host {
            self.fabric
                .stats
                .record(phase, self.host, dst, payload.len() as u64);
        }
        let env = Envelope {
            src: self.host,
            seq: self.fabric.next_seq(self.host, dst, tag),
            phase: phase as u32,
            payload,
        };
        cusp_obs::msg_send(
            dst as u32,
            tag.0,
            env.seq,
            env.payload.len() as u64,
            dst != self.host,
        );
        if dst == self.host {
            // Local data stays local: self-sends bypass the fault layer.
            self.fabric.deliver(dst, tag, env);
        } else {
            self.fabric.dispatch(dst, tag, env);
        }
    }

    fn mailbox(&self, tag: Tag) -> &Receiver<Envelope> {
        &self.fabric.mailboxes[self.host][tag.0 as usize].1
    }

    /// Runs one envelope through the resequencer: duplicates (sequence
    /// numbers already delivered) are dropped, out-of-order envelopes are
    /// stashed, and in-order messages — plus any stashed successors they
    /// unblock — move to the ready queue, recording receive-side stats
    /// against the sender's phase.
    fn ingest(&self, st: &mut RecvState, tag: Tag, env: Envelope) {
        let t = tag.0 as usize;
        let src = env.src;
        let next = st.next[t][src];
        if env.seq < next {
            return; // duplicate of an already-delivered message
        }
        if env.seq > next {
            st.stash[t][src].entry(env.seq).or_insert((env.phase, env.payload));
            return;
        }
        st.next[t][src] += 1;
        self.account_recv(env.phase, src, env.payload.len());
        cusp_obs::msg_recv(src as u32, tag.0, env.seq, env.payload.len() as u64);
        st.ready[t].push_back((src, env.payload));
        while let Some(entry) = st.stash[t][src].first_entry() {
            let seq = *entry.key();
            if seq != st.next[t][src] {
                break;
            }
            let (phase, payload) = entry.remove();
            st.next[t][src] += 1;
            self.account_recv(phase, src, payload.len());
            cusp_obs::msg_recv(src as u32, tag.0, seq, payload.len() as u64);
            st.ready[t].push_back((src, payload));
        }
    }

    fn account_recv(&self, phase: u32, src: HostId, len: usize) {
        if src != self.host {
            self.fabric
                .stats
                .record_recv(phase as usize, src, self.host, len as u64);
        }
    }

    /// Pulls every immediately available envelope of `tag` through the
    /// resequencer.
    fn drain_channel(&self, st: &mut RecvState, tag: Tag) {
        while let Ok(env) = self.mailbox(tag).try_recv() {
            self.ingest(st, tag, env);
        }
    }

    /// Receives the next message of `tag` from any source, blocking.
    pub fn recv_any(&self, tag: Tag) -> (HostId, Bytes) {
        loop {
            {
                let mut st = self.recv.lock();
                if let Some(m) = st.ready[tag.0 as usize].pop_front() {
                    return m;
                }
            }
            self.fabric.flush_holdback(self.host);
            match self.mailbox(tag).recv_timeout(POISON_POLL) {
                Ok(env) => {
                    let mut st = self.recv.lock();
                    self.ingest(&mut st, tag, env);
                    self.drain_channel(&mut st, tag);
                }
                Err(RecvTimeoutError::Timeout) => self.fabric.check_poison(),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("mailbox disconnected")
                }
            }
        }
    }

    /// Receives the next message of `tag` from `src` specifically, blocking.
    /// Messages from other sources that arrive first stay buffered.
    pub fn recv_from(&self, src: HostId, tag: Tag) -> Bytes {
        loop {
            {
                let mut st = self.recv.lock();
                let q = &mut st.ready[tag.0 as usize];
                if let Some(pos) = q.iter().position(|(s, _)| *s == src) {
                    return q.remove(pos).expect("position valid").1;
                }
            }
            self.fabric.flush_holdback(self.host);
            match self.mailbox(tag).recv_timeout(POISON_POLL) {
                Ok(env) => {
                    let mut st = self.recv.lock();
                    self.ingest(&mut st, tag, env);
                    self.drain_channel(&mut st, tag);
                }
                Err(RecvTimeoutError::Timeout) => self.fabric.check_poison(),
                Err(RecvTimeoutError::Disconnected) => panic!("mailbox disconnected"),
            }
        }
    }

    /// Non-blocking receive of `tag` from any source.
    pub fn try_recv_any(&self, tag: Tag) -> Option<(HostId, Bytes)> {
        self.fabric.check_poison();
        self.fabric.flush_holdback(self.host);
        let mut st = self.recv.lock();
        self.drain_channel(&mut st, tag);
        st.ready[tag.0 as usize].pop_front()
    }

    /// Blocks until all hosts reach the barrier. Any held-back (delayed)
    /// messages are released first so nothing can remain parked across a
    /// phase boundary.
    pub fn barrier(&self) {
        let _span = cusp_obs::span("barrier");
        for dst in 0..self.fabric.hosts {
            self.fabric.flush_holdback(dst);
        }
        self.fabric.barrier.wait(&self.fabric.poisoned);
    }

    /// Immutable access to the live statistics collector (e.g. to read
    /// bytes sent so far from inside a host).
    pub fn stats(&self) -> &StatsCollector {
        &self.fabric.stats
    }
}

/// Results of a cluster execution.
pub struct ClusterOutput<R> {
    /// Per-host return values, indexed by host id.
    pub results: Vec<R>,
    /// Snapshot of all communication statistics.
    pub stats: CommStats,
    /// Injected-fault counters, when the run had a [`FaultPlan`].
    pub faults: Option<FaultReport>,
    /// Drained event trace, when the run had a [`TraceConfig`].
    pub trace: Option<cusp_obs::Trace>,
}

/// Tracing configuration for a cluster run. When present in
/// [`ClusterOptions`], every host thread is attached to a fresh
/// [`cusp_obs::Recorder`] for the duration of the run (worker threads the
/// hosts spawn inherit the attachment), and the drained trace is returned
/// in [`ClusterOutput::trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Per-thread event-ring capacity; older events are overwritten (and
    /// counted as dropped) once a thread exceeds it.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { ring_capacity: cusp_obs::DEFAULT_RING_CAPACITY }
    }
}

/// Options for [`Cluster::run_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterOptions {
    /// Seeded fault injection; `None` runs a fault-free fabric.
    pub fault: Option<FaultPlan>,
    /// Event tracing; `None` leaves every recording call a single
    /// thread-local null check.
    pub trace: Option<TraceConfig>,
}

/// SPMD launcher for the simulated cluster.
pub struct Cluster;

impl Cluster {
    /// Runs `f` on `hosts` threads, one per host, and collects results.
    ///
    /// # Panics
    /// Propagates the first host panic after unwinding all hosts.
    pub fn run<R, F>(hosts: usize, f: F) -> ClusterOutput<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Sync,
    {
        Self::run_with(hosts, ClusterOptions::default(), f)
    }

    /// Like [`Cluster::run`], with explicit options (e.g. a [`FaultPlan`]).
    ///
    /// # Panics
    /// Propagates the first host panic after unwinding all hosts.
    pub fn run_with<R, F>(hosts: usize, opts: ClusterOptions, f: F) -> ClusterOutput<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Sync,
    {
        assert!(hosts > 0, "cluster needs at least one host");
        let fabric = Arc::new(Fabric::new(hosts, opts.fault));
        let recorder = opts
            .trace
            .map(|cfg| cusp_obs::Recorder::with_capacity(cfg.ring_capacity));
        let mut results: Vec<Option<R>> = (0..hosts).map(|_| None).collect();
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(hosts);
            for (h, slot) in results.iter_mut().enumerate() {
                let fabric = Arc::clone(&fabric);
                let recorder = recorder.clone();
                let f = &f;
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("host-{h}"))
                        .spawn_scoped(scope, move || {
                            let _trace_guard =
                                recorder.as_ref().map(|r| r.attach(h as u32, "main"));
                            let comm = Comm::new(h, Arc::clone(&fabric));
                            let out = std::panic::catch_unwind(
                                std::panic::AssertUnwindSafe(|| f(&comm)),
                            );
                            match out {
                                Ok(r) => {
                                    *slot = Some(r);
                                    Ok(())
                                }
                                Err(p) => {
                                    fabric.poison();
                                    Err(p)
                                }
                            }
                        })
                        .expect("failed to spawn host thread"),
                );
            }
            for handle in handles {
                match handle.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(p)) => {
                        if first_panic.is_none() {
                            first_panic = Some(p);
                        }
                    }
                    Err(p) => {
                        if first_panic.is_none() {
                            first_panic = Some(p);
                        }
                    }
                }
            }
        });

        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }

        ClusterOutput {
            results: results.into_iter().map(|r| r.expect("host produced no result")).collect(),
            stats: fabric.stats.snapshot(),
            faults: fabric.fault.as_ref().map(|l| l.stats.report()),
            // All host threads (and any pool workers they owned) have
            // joined, so the rings are quiescent.
            trace: recorder.map(|r| r.drain()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_exchange() {
        let out = Cluster::run(5, |comm| {
            let me = comm.host();
            let k = comm.num_hosts();
            let mut w = crate::WireWriter::new();
            w.put_u64(me as u64 * 100);
            comm.send_bytes((me + 1) % k, Tag(1), w.finish());
            let prev = (me + k - 1) % k;
            let data = comm.recv_from(prev, Tag(1));
            let mut r = crate::WireReader::new(data);
            r.get_u64().unwrap()
        });
        assert_eq!(out.results, vec![400, 0, 100, 200, 300]);
        assert!(out.faults.is_none());
    }

    #[test]
    fn per_pair_fifo_order() {
        let out = Cluster::run(2, |comm| {
            if comm.host() == 0 {
                for i in 0..100u64 {
                    let mut w = crate::WireWriter::new();
                    w.put_u64(i);
                    comm.send_bytes(1, Tag(0), w.finish());
                }
                Vec::new()
            } else {
                (0..100)
                    .map(|_| {
                        let (_s, b) = comm.recv_any(Tag(0));
                        crate::WireReader::new(b).get_u64().unwrap()
                    })
                    .collect()
            }
        });
        assert_eq!(out.results[1], (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn tags_are_independent() {
        let out = Cluster::run(2, |comm| {
            if comm.host() == 0 {
                comm.send_bytes(1, Tag(2), Bytes::from_static(b"late-tag"));
                comm.send_bytes(1, Tag(3), Bytes::from_static(b"early-tag"));
                String::new()
            } else {
                // Read tag 3 first even though tag 2 arrived first.
                let (_s, b3) = comm.recv_any(Tag(3));
                let (_s, b2) = comm.recv_any(Tag(2));
                format!(
                    "{}/{}",
                    std::str::from_utf8(&b3).unwrap(),
                    std::str::from_utf8(&b2).unwrap()
                )
            }
        });
        assert_eq!(out.results[1], "early-tag/late-tag");
    }

    #[test]
    fn recv_from_buffers_other_sources() {
        let out = Cluster::run(3, |comm| {
            match comm.host() {
                0 | 1 => {
                    let mut w = crate::WireWriter::new();
                    w.put_u64(comm.host() as u64);
                    comm.send_bytes(2, Tag(0), w.finish());
                    0
                }
                _ => {
                    // Deliberately ask for host 1 first, then host 0.
                    let b1 = comm.recv_from(1, Tag(0));
                    let b0 = comm.recv_from(0, Tag(0));
                    let v1 = crate::WireReader::new(b1).get_u64().unwrap();
                    let v0 = crate::WireReader::new(b0).get_u64().unwrap();
                    (v1 * 10 + v0) as usize
                }
            }
        });
        assert_eq!(out.results[2], 10);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        Cluster::run(4, |comm| {
            for round in 1..=10 {
                counter.fetch_add(1, Ordering::SeqCst);
                comm.barrier();
                assert_eq!(counter.load(Ordering::SeqCst), round * 4);
                comm.barrier();
            }
        });
    }

    #[test]
    fn stats_count_bytes_per_phase() {
        let out = Cluster::run(2, |comm| {
            comm.set_phase("phase-a");
            if comm.host() == 0 {
                comm.send_bytes(1, Tag(0), Bytes::from(vec![0u8; 100]));
            } else {
                comm.recv_any(Tag(0));
            }
            comm.barrier();
            comm.set_phase("phase-b");
            if comm.host() == 1 {
                comm.send_bytes(0, Tag(0), Bytes::from(vec![0u8; 7]));
            } else {
                comm.recv_any(Tag(0));
            }
        });
        let a = out.stats.phase("phase-a").expect("phase-a recorded");
        assert_eq!(a.total_bytes(), 100);
        assert_eq!(a.bytes_between(0, 1), 100);
        assert_eq!(a.bytes_between(1, 0), 0);
        assert_eq!(a.total_messages(), 1);
        let b = out.stats.phase("phase-b").expect("phase-b recorded");
        assert_eq!(b.total_bytes(), 7);
    }

    #[test]
    fn recv_side_accounting_matches_send_side() {
        let out = Cluster::run(3, |comm| {
            comm.set_phase("exchange");
            let me = comm.host();
            let k = comm.num_hosts();
            for peer in 0..k {
                if peer != me {
                    comm.send_bytes(peer, Tag(0), Bytes::from(vec![me as u8; 10 + me]));
                }
            }
            for _ in 0..k - 1 {
                comm.recv_any(Tag(0));
            }
        });
        let p = out.stats.phase("exchange").unwrap();
        for s in 0..3 {
            for d in 0..3 {
                assert_eq!(p.bytes_between(s, d), p.recv_bytes_between(s, d));
                assert_eq!(p.messages_between(s, d), p.recv_messages_between(s, d));
            }
        }
        assert!(p.unconserved_pairs().is_empty());
    }

    #[test]
    fn unconsumed_message_breaks_conservation() {
        let out = Cluster::run(2, |comm| {
            comm.set_phase("leaky");
            if comm.host() == 0 {
                comm.send_bytes(1, Tag(4), Bytes::from_static(b"never read"));
            }
            comm.barrier();
        });
        let p = out.stats.phase("leaky").unwrap();
        assert_eq!(p.unconserved_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn self_sends_not_counted() {
        let out = Cluster::run(1, |comm| {
            comm.set_phase("only");
            comm.send_bytes(0, Tag(0), Bytes::from(vec![1u8; 64]));
            let (src, b) = comm.recv_any(Tag(0));
            (src, b.len())
        });
        assert_eq!(out.results[0], (0, 64));
        assert_eq!(out.stats.phase("only").unwrap().total_bytes(), 0);
    }

    #[test]
    fn host_panic_propagates_without_hanging() {
        let res = std::panic::catch_unwind(|| {
            Cluster::run(3, |comm| {
                if comm.host() == 1 {
                    panic!("deliberate failure on host 1");
                }
                // These hosts would otherwise block forever.
                comm.recv_any(Tag(0));
            });
        });
        assert!(res.is_err());
    }

    #[test]
    fn traced_run_records_message_events() {
        use cusp_obs::EventKind;
        let opts = ClusterOptions {
            trace: Some(TraceConfig::default()),
            ..ClusterOptions::default()
        };
        let out = Cluster::run_with(2, opts, |comm| {
            if comm.host() == 0 {
                comm.send_bytes(1, Tag(3), Bytes::from(vec![9u8; 48]));
            } else {
                comm.recv_any(Tag(3));
            }
            comm.barrier();
        });
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.threads.len(), 2);
        let sends: Vec<_> = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MsgSend { .. }))
            .collect();
        assert_eq!(sends.len(), 1);
        assert_eq!(
            sends[0].kind,
            EventKind::MsgSend { dst: 1, tag: 3, seq: 0, bytes: 48, remote: true }
        );
        assert!(trace.events.iter().any(|e| e.host == 1
            && e.kind == EventKind::MsgRecv { src: 0, tag: 3, seq: 0, bytes: 48 }));
        // Both hosts recorded their barrier span.
        let barriers = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::SpanBegin { name: "barrier", arg: 0 })
            .count();
        assert_eq!(barriers, 2);
        // The export validates end to end.
        let json = cusp_obs::export_chrome_trace(&trace);
        let check = cusp_obs::validate_trace_json(&json).expect("valid trace json");
        assert_eq!(check.processes, 2);
        assert!(check.flow_pairs >= 1);
    }

    #[test]
    fn untraced_run_returns_no_trace() {
        let out = Cluster::run(2, |comm| {
            assert!(!cusp_obs::is_active());
            comm.barrier();
        });
        assert!(out.trace.is_none());
    }

    #[test]
    fn single_host_cluster() {
        let out = Cluster::run(1, |comm| {
            comm.barrier();
            comm.host()
        });
        assert_eq!(out.results, vec![0]);
    }
}
